"""QunitCollection: the database modeled as a flat document collection.

"Once qunits have been defined, we will model the database as a flat
collection of independent qunits... each qunit is treated as an independent
entity" (Sec. 2).  The collection owns the definitions, materializes
instances lazily (with caching), and builds the IR indexes the search
engine queries: one index over all instances, plus per-definition indexes
for two-stage retrieval.

Searchers handed out by :meth:`QunitCollection.searcher` and
:meth:`QunitCollection.definition_searcher` are cached per (definition,
scorer-parameters) pair, so their top-k fast-path machinery — index
snapshots, per-term score bounds, and LRU result caches (see
:mod:`repro.ir.retrieval`) — is shared across every query the engine runs,
including batches submitted through :meth:`QunitCollection.search_many`.
"""

from __future__ import annotations

from collections.abc import Iterable

from collections import OrderedDict

from repro.core.qunit import QunitDefinition, QunitInstance
from repro.errors import DerivationError
from repro.ir.analysis import Analyzer
from repro.ir.index import InvertedIndex
from repro.ir.retrieval import Searcher, SearchHit
from repro.ir.scoring import Scorer
from repro.relational.database import Database
from repro.utils.text import normalize

__all__ = ["QunitCollection"]


class QunitCollection:
    """Definitions + lazily materialized instances + IR indexes."""

    def __init__(self, database: Database,
                 definitions: Iterable[QunitDefinition],
                 max_instances_per_definition: int | None = None,
                 analyzer: Analyzer | None = None):
        self.database = database
        self.definitions: dict[str, QunitDefinition] = {}
        for definition in definitions:
            if definition.name in self.definitions:
                raise DerivationError(
                    f"duplicate qunit definition {definition.name!r}"
                )
            self.definitions[definition.name] = definition
        self.max_instances = max_instances_per_definition
        self.analyzer = analyzer or Analyzer()
        self._instances: dict[str, list[QunitInstance]] = {}
        self._instance_by_id: dict[str, QunitInstance] = {}
        self._global_index: InvertedIndex | None = None
        self._definition_indexes: dict[str, InvertedIndex] = {}
        # Searchers are cached so their LRU result caches and index
        # snapshots survive across queries (one searcher per
        # (definition, scorer-parameters) pair; None = the global index).
        # Bounded: identity-keyed scorers (see Scorer.cache_key) would
        # otherwise grow this without limit in long-running processes.
        self._searchers: "OrderedDict[tuple, Searcher]" = OrderedDict()

    # -- definitions ------------------------------------------------------------

    def definition(self, name: str) -> QunitDefinition:
        try:
            return self.definitions[name]
        except KeyError:
            raise DerivationError(
                f"unknown qunit definition {name!r} "
                f"(known: {sorted(self.definitions)})"
            ) from None

    def __len__(self) -> int:
        return len(self.definitions)

    def __contains__(self, name: str) -> bool:
        return name in self.definitions

    # -- instances ----------------------------------------------------------------

    def instances_of(self, name: str) -> list[QunitInstance]:
        """All (bounded) instances of one definition, cached."""
        if name not in self._instances:
            definition = self.definition(name)
            instances = [
                instance
                for instance in definition.instances(self.database, self.max_instances)
                if not instance.is_empty
            ]
            self._instances[name] = instances
            for instance in instances:
                self._instance_by_id[instance.instance_id] = instance
        return self._instances[name]

    def all_instances(self) -> list[QunitInstance]:
        result: list[QunitInstance] = []
        for name in sorted(self.definitions):
            result.extend(self.instances_of(name))
        return result

    def instance(self, instance_id: str) -> QunitInstance:
        """Look up a materialized instance by id (materializes its
        definition's instances if needed)."""
        if instance_id not in self._instance_by_id:
            definition_name = instance_id.split("::", 1)[0]
            if definition_name in self.definitions:
                self.instances_of(definition_name)
        try:
            return self._instance_by_id[instance_id]
        except KeyError:
            raise DerivationError(f"unknown qunit instance {instance_id!r}") from None

    def materialize(self, name: str, params: dict[str, object]) -> QunitInstance:
        """Materialize one specific binding on demand (and cache it)."""
        instance = self.definition(name).materialize(self.database, params)
        self._instance_by_id.setdefault(instance.instance_id, instance)
        return instance

    # -- indexes ----------------------------------------------------------------------

    def global_index(self) -> InvertedIndex:
        """One index over every instance of every definition."""
        if self._global_index is None:
            index = InvertedIndex(self.analyzer)
            for instance in self.all_instances():
                index.add(self._decorated_document(instance))
            self._global_index = index
        return self._global_index

    def definition_index(self, name: str) -> InvertedIndex:
        """An index over the instances of a single definition."""
        if name not in self._definition_indexes:
            index = InvertedIndex(self.analyzer)
            for instance in self.instances_of(name):
                index.add(self._decorated_document(instance))
            self._definition_indexes[name] = index
        return self._definition_indexes[name]

    def searcher(self, scorer: Scorer | None = None) -> Searcher:
        return self._cached_searcher(None, scorer)

    def definition_searcher(self, name: str, scorer: Scorer | None = None) -> Searcher:
        return self._cached_searcher(name, scorer)

    MAX_CACHED_SEARCHERS = 64

    def _cached_searcher(self, name: str | None, scorer: Scorer | None) -> Searcher:
        key = (name, scorer.cache_key() if scorer is not None else None)
        searcher = self._searchers.get(key)
        if searcher is None:
            index = (self.global_index() if name is None
                     else self.definition_index(name))
            searcher = Searcher(index, scorer)
            self._searchers[key] = searcher
            while len(self._searchers) > self.MAX_CACHED_SEARCHERS:
                self._searchers.popitem(last=False)
        else:
            self._searchers.move_to_end(key)
        return searcher

    def search_many(self, queries: Iterable[str], limit: int = 10,
                    scorer: Scorer | None = None) -> list[list[SearchHit]]:
        """Batched flat IR retrieval over every instance of every
        definition — the collection really is "a flat collection of
        independent qunits" to callers of this API.  One searcher (and
        hence one index snapshot and result cache) serves the whole batch.
        """
        return self.searcher(scorer).search_many(queries, limit)

    def _decorated_document(self, instance: QunitInstance):
        """Instance document with definition keywords folded into the title,
        so "cast" queries hit cast qunits even when no tuple says "cast"."""
        document = instance.as_document()
        keywords = " ".join(instance.definition.keywords)
        if not keywords:
            return document
        fields = dict(document.fields)
        fields["title"] = f"{fields['title']} {normalize(keywords)}"
        from repro.ir.documents import Document

        return Document.create(
            doc_id=document.doc_id,
            fields=fields,
            field_weights=dict(document.field_weights),
            metadata=dict(document.metadata),
        )

    # -- validation -----------------------------------------------------------------------

    def validate(self) -> list[str]:
        """Static checks on every definition; returns problem descriptions.

        Intended for users authoring their own qunit sets: catches binder
        columns missing from the schema, binders over non-searchable
        columns (instances would be unreachable by entity queries),
        unparseable conversion templates, and templates referencing fields
        the base expression cannot produce.
        """
        from repro.core.presentation import ConversionTemplate
        from repro.errors import ReproError

        problems: list[str] = []
        for name, definition in sorted(self.definitions.items()):
            for binder in definition.binders:
                try:
                    column = self.database.schema.table(binder.table).column(
                        binder.column)
                except ReproError as exc:
                    problems.append(f"{name}: binder {exc}")
                    continue
                from repro.relational.schema import ColumnType

                numeric = column.type in (ColumnType.INTEGER, ColumnType.FLOAT)
                if not column.searchable and not numeric:
                    # Text binders must be searchable for entity queries to
                    # bind them; numeric binders (years) bind through the
                    # segmenter's literal-number recognition instead.
                    problems.append(
                        f"{name}: binder {binder.qualified} is not a "
                        f"searchable column; entity queries cannot bind it"
                    )
            if definition.conversion is not None:
                try:
                    template = ConversionTemplate(definition.conversion)
                except ReproError as exc:
                    problems.append(f"{name}: conversion template: {exc}")
                    continue
                footprint = set(definition.tables())
                binder_params = {binder.param for binder in definition.binders}
                for variable in template.variables():
                    if "." in variable:
                        table = variable.split(".")[0]
                        if table not in footprint:
                            problems.append(
                                f"{name}: template references ${variable} "
                                f"but {table!r} is not in the base expression"
                            )
                    elif variable not in binder_params:
                        problems.append(
                            f"{name}: template references unbound "
                            f"parameter ${variable}"
                        )
            if not definition.keywords and definition.binders:
                problems.append(
                    f"{name}: no keywords; attribute queries can never "
                    f"commit to this definition"
                )
        return problems

    # -- priors ---------------------------------------------------------------------------

    def popularity_priors(self, table: str = "movie", column: str = "votes",
                          ) -> dict[str, float]:
        """Static per-instance priors from an entity-popularity column.

        For every materialized instance, the prior is ``1 + log10(1 + v)``
        where ``v`` is the largest value of ``table.column`` among the
        instance's tuples (1.0 when the instance never touches it).  Feed
        the result to :class:`~repro.ir.scoring.PriorWeightedScorer` to get
        popularity-aware ranking — the ObjectRank idea recast as a document
        prior inside the qunit paradigm.
        """
        import math

        self.database.schema.table(table).column(column)
        qualified = f"{table}.{column}"
        priors: dict[str, float] = {}
        for instance in self.all_instances():
            best = 0.0
            for row in instance.rows:
                value = row.get(qualified)
                if isinstance(value, (int, float)) and value > best:
                    best = float(value)
            priors[instance.instance_id] = 1.0 + math.log10(1.0 + best)
        return priors

    # -- statistics -----------------------------------------------------------------------

    def instance_count(self) -> int:
        return sum(len(self.instances_of(name)) for name in self.definitions)

    def describe(self) -> list[tuple[str, str, int]]:
        """(name, source, instance count) per definition, name-sorted."""
        return [
            (name, self.definitions[name].source, len(self.instances_of(name)))
            for name in sorted(self.definitions)
        ]

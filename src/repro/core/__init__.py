"""The qunits core: the paper's primary contribution.

A :class:`QunitDefinition` pairs a *base expression* (a SQL view with
``$parameters``) with a *conversion expression* (an XSL-like presentation
template).  Applying a definition to a database yields
:class:`QunitInstance` objects — one per parameter binding — which the
:class:`QunitCollection` exposes as a flat, independent document collection
for standard IR retrieval (see ``repro.core.search``).

Derivation strategies (expert, schema+data, query-log rollup, external
evidence) live in ``repro.core.derivation``.
"""

from repro.core.collection import QunitCollection
from repro.core.evolution import EpochReport, QunitEvolutionTracker
from repro.core.presentation import ConversionTemplate, render_default
from repro.core.qunit import ParamBinder, QunitDefinition, QunitInstance
from repro.core.utility import UtilityModel

__all__ = [
    "QunitDefinition",
    "QunitInstance",
    "ParamBinder",
    "QunitCollection",
    "ConversionTemplate",
    "render_default",
    "UtilityModel",
    "QunitEvolutionTracker",
    "EpochReport",
]

"""Typed persistence API for qunit collections: live generations on disk.

:class:`CollectionStore` is the one façade over a saved collection
directory, mirroring the typed request/response shape of
:mod:`repro.serve.api`: callers describe *what* they want with frozen
:class:`SaveOptions`/:class:`LoadOptions` dataclasses and get typed
results back (:class:`SaveReport`, a restored
:class:`~repro.core.collection.QunitCollection`).  The sprawling
keyword surface of the old ``QunitCollection`` wrappers still works
but is deprecated in its favor (one-release removal note on each).

Three things make a stored collection *live*:

**Delta journal.**  :meth:`CollectionStore.save` in ``auto`` mode
detects that the directory already holds a compatible generation and
appends only the new documents as checksummed delta records — one
``journal-<generation>.jrnl`` file per generation, shared by the global
and per-definition snapshots (the collection-level counterpart of
:class:`~repro.ir.persist.SnapshotJournal`, built on the same delta
record format).  A delta save is O(new documents), not a corpus
rewrite; the transaction commits via an atomic manifest swap, so a
crash mid-append is invisible (readers ignore journal bytes the
manifest never committed).  ``repro compact`` /
:meth:`CollectionStore.compact` folds the journal back into clean v3
bases.

**Lazy loads.**  :meth:`CollectionStore.load` with ``lazy=True`` (the
default) pins only the manifest plus each snapshot's cheap header —
including the per-definition term Bloom filters, so the query
pipeline's plan stage keeps skipping definitions that provably cannot
match *without* loading them.  A snapshot is mmap'd on first demand
(the execute stage building its searcher); untouched definitions never
cost a byte of postings.  The trade-off versus the eager pin: a lazy
collection reads files after ``load`` returns, so a concurrent full
re-save that prunes the generation can surface as a
:class:`~repro.errors.SnapshotError` on first demand (reload to
recover).  Delta saves and :class:`CollectionWriter` commits never
prune the current generation's bases, so the supported live-ingest flow
keeps lazy readers safe.

**Online ingestion.**  :meth:`CollectionStore.writer` hands back a
:class:`CollectionWriter` that stages new documents, builds the
next-generation snapshots off the serving path, appends one journal
transaction, and swaps the collection's in-memory generation under the
searcher-pool leases — in-flight batches finish against the searchers
(and generation) they pinned; the next acquire builds against the new
one.  See ``docs/PERSISTENCE.md`` for the byte-level journal spec and
the swap protocol.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.core.collection import (
    MANIFEST_MAGIC,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    SUPPORTED_MANIFEST_VERSIONS,
    QunitCollection,
    _SnapshotPruneRace,
)
from repro.core.qunit import QunitDefinition, QunitInstance
from repro.errors import SnapshotError
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import IndexSnapshot, Posting
from repro.ir.persist import (
    DocumentStore,
    append_collection_txn,
    build_delta_record,
    fold_delta_record,
    filter_delta_record,
    load_document_store,
    load_document_store_partition,
    load_snapshot_with_header,
    read_collection_journal,
    read_snapshot_doc_ids,
    read_snapshot_header,
    save_document_store,
    save_snapshot,
)
from repro.ir.shard import (
    PARALLELISM_MODES,
    ShardedTopK,
    TermBloomFilter,
    shard_id,
    shard_snapshot,
)
from repro.ir.wand import STRATEGIES
from repro.relational.database import Database

__all__ = [
    "JOURNAL_MANIFEST_VERSION",
    "SaveOptions",
    "LoadOptions",
    "SaveReport",
    "CollectionStore",
    "CollectionWriter",
]

#: Manifest format version written once a generation carries a journal
#: entry.  A journal-free full save keeps writing version 2 (the
#: ``generation`` and ``vectors`` fields are additive metadata an older
#: reader can ignore); a journal is *not* ignorable — ignoring it would
#: serve a stale prefix of the collection — so its presence bumps the
#: version and older readers refuse loudly.
JOURNAL_MANIFEST_VERSION = 3

_SAVE_MODES = ("auto", "full", "delta")


@dataclass(frozen=True)
class SaveOptions:
    """How :meth:`CollectionStore.save` should persist a collection.

    Attributes:
        vectors: embed every document once so snapshots carry vector
            extents for the ``"hybrid"`` strategy (the default; matches
            the old ``save(vectors=...)`` flag).
        mode: ``"auto"`` appends a delta journal transaction when the
            directory already holds a compatible generation (same
            database fingerprint, analyzer, definitions, and vector
            configuration; on-disk documents a subset of the
            collection's) and falls back to a full generation rewrite
            otherwise; ``"full"`` always rewrites; ``"delta"`` raises
            :class:`~repro.errors.SnapshotError` instead of falling
            back.
    """

    vectors: bool = True
    mode: str = "auto"

    def __post_init__(self):
        if not isinstance(self.vectors, bool):
            raise ValueError(
                f"vectors must be a bool, got {self.vectors!r}")
        if self.mode not in _SAVE_MODES:
            raise ValueError(
                f"mode must be one of {_SAVE_MODES}, got {self.mode!r}")

    def to_dict(self) -> dict:
        """Serializable form; defaults elided (round-trips via
        :meth:`from_dict`)."""
        data: dict = {}
        if self.vectors is not True:
            data["vectors"] = self.vectors
        if self.mode != "auto":
            data["mode"] = self.mode
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SaveOptions":
        """Build options from a dict, rejecting unknown fields."""
        if not isinstance(data, dict):
            raise ValueError(f"SaveOptions payload must be an object, "
                             f"got {type(data).__name__}")
        unknown = set(data) - {"vectors", "mode"}
        if unknown:
            raise ValueError(
                f"unknown SaveOptions field(s): {sorted(unknown)}")
        return cls(vectors=data.get("vectors", True),
                   mode=data.get("mode", "auto"))


@dataclass(frozen=True)
class LoadOptions:
    """How :meth:`CollectionStore.load` should restore a collection.

    Attributes:
        shards: sharded parallel scoring for the flat searcher; when the
            saved generation persisted the same shard count, the
            per-shard snapshot files (and Bloom filters) are restored
            instead of re-partitioning in memory.
        parallelism: shard executor mode (see :mod:`repro.ir.shard`).
        strategy: fast-path retrieval strategy for the restored
            searchers (see :mod:`repro.ir.wand`).
        lazy: pin only the manifest and per-snapshot headers at load
            time; snapshots mmap on first query demand (the default).
            ``False`` restores the old eager behavior: the whole
            generation is read up front and stays serviceable even if
            the directory is concurrently re-saved and pruned.
    """

    shards: int = 0
    parallelism: str = "serial"
    strategy: str = "auto"
    lazy: bool = True

    def __post_init__(self):
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) \
                or self.shards < 0:
            raise ValueError(
                f"shards must be a non-negative int, got {self.shards!r}")
        if self.parallelism not in PARALLELISM_MODES:
            raise ValueError(
                f"parallelism must be one of {PARALLELISM_MODES}, "
                f"got {self.parallelism!r}")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, "
                f"got {self.strategy!r}")
        if not isinstance(self.lazy, bool):
            raise ValueError(f"lazy must be a bool, got {self.lazy!r}")

    def to_dict(self) -> dict:
        """Serializable form; defaults elided (round-trips via
        :meth:`from_dict`)."""
        data: dict = {}
        if self.shards:
            data["shards"] = self.shards
        if self.parallelism != "serial":
            data["parallelism"] = self.parallelism
        if self.strategy != "auto":
            data["strategy"] = self.strategy
        if self.lazy is not True:
            data["lazy"] = self.lazy
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "LoadOptions":
        """Build options from a dict, rejecting unknown fields."""
        if not isinstance(data, dict):
            raise ValueError(f"LoadOptions payload must be an object, "
                             f"got {type(data).__name__}")
        unknown = set(data) - {"shards", "parallelism", "strategy", "lazy"}
        if unknown:
            raise ValueError(
                f"unknown LoadOptions field(s): {sorted(unknown)}")
        return cls(shards=data.get("shards", 0),
                   parallelism=data.get("parallelism", "serial"),
                   strategy=data.get("strategy", "auto"),
                   lazy=data.get("lazy", True))


@dataclass(frozen=True)
class SaveReport:
    """What one :meth:`CollectionStore.save` (or
    :meth:`CollectionWriter.commit`) actually wrote.

    Attributes:
        path: the generation directory.
        generation: the effective generation id — the base generation's
            hex id, suffixed ``+N`` after N journal transactions.
        mode: ``"full"`` (a fresh generation of files) or ``"delta"``
            (a journal transaction against the existing one).
        documents: documents in the global snapshot after the save.
        appended_documents: documents this save added (0 = the
            directory already matched the collection; nothing written).
        files_written: file names created or appended this save.
        journal_segments: committed journal delta segments now trailing
            the generation (0 after a full save).
    """

    path: str
    generation: str
    mode: str
    documents: int
    appended_documents: int
    files_written: tuple[str, ...] = ()
    journal_segments: int = 0

    def to_dict(self) -> dict:
        """Serializable form (what ``repro save`` prints as JSON)."""
        return {
            "path": self.path,
            "generation": self.generation,
            "mode": self.mode,
            "documents": self.documents,
            "appended_documents": self.appended_documents,
            "files_written": list(self.files_written),
            "journal_segments": self.journal_segments,
        }


def _advance_snapshot(base: IndexSnapshot, documents: list[Document],
                      analyzer: Analyzer) -> IndexSnapshot:
    """The next-generation snapshot: ``base`` plus ``documents``.

    Tokenization follows the same accumulation order as
    :meth:`~repro.ir.index.InvertedIndex.add` and merging the same rules
    as :func:`~repro.ir.persist.fold_delta_record`, so the result is
    float-identical to an index grown live and to a reader folding the
    matching journal records.  The base's postings materialize into
    plain dicts (a columnar base loses its lazy column map here — the
    in-memory cost of building a generation; the *disk* write stays
    O(new documents)).

    Raises:
        SnapshotError: on a duplicate doc_id or non-positive field
            weight.
    """
    merged_documents = dict(base._documents)
    doc_lengths = dict(base._doc_lengths)
    postings = dict(base._postings)
    doc_frequencies = dict(base._doc_frequencies)
    total_length = base.average_document_length * base.document_count
    minimum = base.min_document_length if base.document_count else 0.0
    version = base.version
    for document in documents:
        if document.doc_id in merged_documents:
            raise SnapshotError(
                f"document {document.doc_id!r} is already indexed; a "
                f"generation only ever adds documents")
        length = 0.0
        token_weights: dict[str, float] = {}
        for field_name, text in document.fields:
            weight = document.weight(field_name)
            if weight <= 0:
                raise SnapshotError(
                    f"document {document.doc_id!r} field {field_name!r} "
                    f"has non-positive weight {weight}")
            for token in analyzer.tokens(text):
                token_weights[token] = token_weights.get(token, 0.0) + weight
                length += weight
        version += 1
        merged_documents[document.doc_id] = document
        doc_lengths[document.doc_id] = length
        total_length += length
        for token, weighted_tf in token_weights.items():
            existing = list(postings.get(token, ()))
            existing.append(Posting(document.doc_id, weighted_tf))
            existing.sort(key=lambda posting: posting.doc_id)
            postings[token] = tuple(existing)
            doc_frequencies[token] = doc_frequencies.get(token, 0) + 1
        if length > 0 and (minimum <= 0 or length < minimum):
            minimum = length
    count = len(merged_documents)
    return IndexSnapshot(
        version=version,
        analyzer=analyzer,
        documents=merged_documents,
        postings=postings,
        doc_lengths=doc_lengths,
        doc_frequencies=doc_frequencies,
        document_count=count,
        average_document_length=(total_length / count) if count else 0.0,
        min_document_length=minimum if count else 0.0,
    )


def _fold_records(snapshot: IndexSnapshot, records, journal_path: Path,
                  ) -> IndexSnapshot:
    """Fold committed journal ``records`` into a loaded base snapshot.

    Materializes the base's mappings into plain dicts first (a columnar
    base loses its lazy column map — journal-bearing targets trade the
    zero-copy load for O(new docs) saves until ``compact`` folds the
    journal back into the base).
    """
    documents = dict(snapshot._documents)
    doc_lengths = dict(snapshot._doc_lengths)
    postings = dict(snapshot._postings)
    doc_frequencies = dict(snapshot._doc_frequencies)
    stats = {
        "index_version": snapshot.version,
        "document_count": snapshot.document_count,
        "average_document_length": snapshot.average_document_length,
        "min_document_length": snapshot.min_document_length,
    }
    for i, record in enumerate(records):
        fold_delta_record(
            record, documents, doc_lengths, postings, doc_frequencies,
            stats, path=journal_path,
            what=f"journal segment {i + 1} for target "
                 f"{record.get('target')!r}")
    return IndexSnapshot(
        version=stats["index_version"],
        analyzer=snapshot.analyzer,
        documents=documents,
        postings=postings,
        doc_lengths=doc_lengths,
        doc_frequencies=doc_frequencies,
        document_count=stats["document_count"],
        average_document_length=stats["average_document_length"],
        min_document_length=stats["min_document_length"],
    )


def _journal_counts(journal_entry: dict | None) -> dict:
    """The manifest journal entry's per-target committed segment counts
    as a ``{target_key: count}`` mapping (``None`` = global)."""
    if not journal_entry:
        return {}
    segments = journal_entry.get("segments", {})
    counts: dict = {}
    if segments.get("global"):
        counts[None] = segments["global"]
    for name, count in segments.get("definitions", {}).items():
        if count:
            counts[name] = count
    return counts


class CollectionStore:
    """Typed persistence façade over one saved-collection directory.

    One instance wraps one directory; every operation — :meth:`save`,
    :meth:`load`, :meth:`load_shard`, :meth:`writer`, :meth:`compact` —
    reads or advances the single generation the directory's manifest
    commits to.  See the module docstring for the live-collection
    model.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    # -- manifest ------------------------------------------------------------

    def manifest(self) -> dict:
        """The directory's parsed, magic/version-checked manifest.

        Raises:
            SnapshotError: when missing, unparseable, not a collection
                manifest, or a format version this build cannot read.
        """
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise SnapshotError(
                f"cannot read collection manifest "
                f"{str(manifest_path)!r}: {exc}") from exc
        except ValueError as exc:
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} is not valid "
                f"JSON ({exc})") from exc
        if manifest.get("magic") != MANIFEST_MAGIC:
            raise SnapshotError(
                f"{str(manifest_path)!r} is not a qunits collection manifest")
        if manifest.get("format_version") not in SUPPORTED_MANIFEST_VERSIONS:
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} has format "
                f"version {manifest.get('format_version')!r}; this build "
                f"reads versions {SUPPORTED_MANIFEST_VERSIONS}")
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        manifest_path = self.path / MANIFEST_NAME
        tmp_path = manifest_path.with_name(MANIFEST_NAME + ".tmp")
        tmp_path.write_text(
            json.dumps(manifest, indent=2, ensure_ascii=False) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp_path, manifest_path)

    def _read_journal(self, manifest: dict) -> dict:
        """Committed journal records grouped by target (empty when the
        manifest carries no journal)."""
        journal_entry = manifest.get("journal")
        if not journal_entry:
            return {}
        return read_collection_journal(
            self.path / journal_entry["file"],
            journal_entry["committed_bytes"],
            generation=manifest.get("generation"),
            expected_counts=_journal_counts(journal_entry),
        )

    @staticmethod
    def _effective_generation(manifest: dict) -> str | None:
        generation = manifest.get("generation")
        if generation is None:
            return None
        txns = (manifest.get("journal") or {}).get("txns", 0)
        return f"{generation}+{txns}" if txns else generation

    def generation(self) -> str | None:
        """The directory's current effective generation (``"<hex>"`` or
        ``"<hex>+N"`` when a journal holds N committed appends), or
        ``None`` when the directory has no readable manifest yet.

        This is the cheap probe serving workers poll to decide whether a
        broadcast generation swap actually moved the on-disk state they
        have open (:mod:`repro.serve.workers`): one manifest read, no
        snapshot loads.
        """
        try:
            return self._effective_generation(self.manifest())
        except SnapshotError:
            return None

    # -- save ----------------------------------------------------------------

    def save(self, collection: QunitCollection,
             options: SaveOptions | None = None) -> SaveReport:
        """Persist ``collection`` per ``options`` (see
        :class:`SaveOptions`): a journal append when the directory
        already holds a compatible generation, a full generation rewrite
        otherwise.

        Raises:
            SnapshotError: on unserializable documents, a broken
                existing generation, or ``mode="delta"`` against a
                directory no delta can extend.
        """
        options = options or SaveOptions()
        if options.mode in ("auto", "delta"):
            plan, reason = self._delta_plan(collection, options)
            if plan is not None:
                return self._delta_save(collection, *plan)
            if options.mode == "delta":
                raise SnapshotError(
                    f"cannot delta-save collection to {str(self.path)!r}: "
                    f"{reason}")
        return self._full_save(collection, options.vectors)

    def _delta_plan(self, collection: QunitCollection, options: SaveOptions):
        """Whether (and how) the on-disk generation can be extended by a
        journal transaction instead of rewritten.

        Returns ``((manifest, journal_records, snapshots, new_ids), None)``
        when eligible, else ``(None, reason)``.
        """
        if not (self.path / MANIFEST_NAME).exists():
            return None, "no saved generation at the path"
        try:
            manifest = self.manifest()
        except SnapshotError as exc:
            return None, str(exc)
        generation = manifest.get("generation")
        if not generation:
            return None, "the saved generation predates generation ids"
        snapshots_entry = manifest.get("snapshots", {})
        if manifest.get("docstore") is None or \
                "global" not in snapshots_entry:
            return None, "the saved generation has no shared document store"
        if bool(manifest.get("vectors")) != options.vectors:
            return None, "the vector configuration changed"
        fingerprint = QunitCollection._database_fingerprint(
            collection.database)
        if manifest.get("database") != fingerprint:
            return None, "the database fingerprint changed"
        if manifest.get("analyzer") != collection.analyzer.config():
            return None, "the analyzer configuration changed"
        if manifest.get("max_instances_per_definition") != \
                collection.max_instances:
            return None, "the instance cap changed"
        saved_definitions = {entry.get("name"): entry
                             for entry in manifest.get("definitions", [])}
        ours = {name: collection.definitions[name].to_dict()
                for name in collection.definitions}
        if saved_definitions != ours:
            return None, "the qunit definitions changed"
        try:
            journal_records = self._read_journal(manifest)
        except SnapshotError as exc:
            return None, str(exc)
        # Per-target diff: on-disk documents (base + committed journal)
        # must be a subset of the collection's; the difference is the
        # delta.  A target still lazily pinned with no live index is
        # untouched by definition — skip the diff entirely (this is what
        # keeps a delta save O(new documents + headers)).
        same_store = getattr(collection, "_store_path", None) is not None \
            and Path(collection._store_path).resolve() == self.path.resolve()
        targets: list[tuple[str | None, str]] = \
            [(None, snapshots_entry["global"])]
        targets.extend(sorted(snapshots_entry.get("definitions", {}).items()))
        snapshots: dict = {}
        new_ids: dict = {}
        global_ids: set | None = None
        for key, file_name in targets:
            if same_store and collection._pending_lazy(key):
                continue
            snapshot = collection._index_for(key).snapshot()
            try:
                disk_ids = set(read_snapshot_doc_ids(self.path / file_name))
            except SnapshotError as exc:
                return None, str(exc)
            for record in journal_records.get(key, ()):
                disk_ids.update(doc_record["id"]
                                for doc_record in record["docs"])
            memory_ids = set(snapshot._documents)
            missing = disk_ids - memory_ids
            if missing:
                return None, (
                    f"target {key or 'global'!r} on disk holds documents "
                    f"the collection does not (e.g. "
                    f"{sorted(missing)[0]!r})")
            added = sorted(memory_ids - disk_ids)
            if key is None:
                global_ids = memory_ids
            if added:
                snapshots[key] = snapshot
                new_ids[key] = added
        # The shared-store dedup invariant (every definition document
        # exists in the global snapshot) must keep holding after the
        # append, exactly as a full save enforces it up front.
        for key, added in new_ids.items():
            if key is None:
                continue
            if global_ids is None:
                global_ids = set(
                    read_snapshot_doc_ids(
                        self.path / snapshots_entry["global"]))
                for record in journal_records.get(None, ()):
                    global_ids.update(doc_record["id"]
                                      for doc_record in record["docs"])
            stray = [doc_id for doc_id in added if doc_id not in global_ids]
            if stray:
                raise SnapshotError(
                    f"definition {key!r} indexes documents missing from "
                    f"the global snapshot (e.g. {stray[0]!r}); cannot "
                    f"deduplicate against the shared document store")
        return (manifest, journal_records, snapshots, new_ids), None

    def _delta_save(self, collection: QunitCollection, manifest: dict,
                    journal_records: dict, snapshots: dict,
                    new_ids: dict) -> SaveReport:
        """Append one journal transaction covering ``new_ids`` and swap
        the manifest; O(new documents), no base rewrite, no prune."""
        generation = manifest["generation"]
        journal_entry = manifest.get("journal") or {
            "file": f"journal-{generation}.jrnl",
            "committed_bytes": 0,
            "segments": {"global": 0, "definitions": {}},
            "txns": 0,
        }
        counts = _journal_counts(journal_entry)
        documents_total = self._global_document_count(
            manifest, journal_records)
        if not new_ids:
            collection._store_path = self.path
            collection.generation = self._effective_generation(manifest)
            return SaveReport(
                path=str(self.path),
                generation=collection.generation or generation,
                mode="delta",
                documents=documents_total,
                appended_documents=0,
                files_written=(),
                journal_segments=sum(counts.values()),
            )
        ordered = sorted(new_ids, key=lambda key: (key is not None, key or ""))
        records = []
        for key in ordered:
            snapshot = snapshots[key]
            record = build_delta_record(
                collection.analyzer, snapshot._documents,
                snapshot._doc_lengths, snapshot.document_frequency,
                new_ids[key],
                seq=counts.get(key, 0) + 1,
                index_version=snapshot.version,
                document_count=snapshot.document_count,
                average_document_length=snapshot.average_document_length,
                min_document_length=snapshot.min_document_length,
            )
            record["target"] = key
            records.append(record)
        committed = append_collection_txn(
            self.path / journal_entry["file"], generation,
            journal_entry["committed_bytes"], records)
        segments = {
            "global": counts.get(None, 0) + (1 if None in new_ids else 0),
            "definitions": {
                name: counts.get(name, 0) + (1 if name in new_ids else 0)
                for name in sorted(
                    {key for key in (*counts, *new_ids)
                     if key is not None})
            },
        }
        new_manifest = {
            **manifest,
            "format_version": JOURNAL_MANIFEST_VERSION,
            "journal": {
                "file": journal_entry["file"],
                "committed_bytes": committed,
                "segments": segments,
                "txns": journal_entry.get("txns", 0) + 1,
            },
        }
        self._write_manifest(new_manifest)
        collection._store_path = self.path
        collection.generation = self._effective_generation(new_manifest)
        appended = len(new_ids.get(None, ()))
        return SaveReport(
            path=str(self.path),
            generation=collection.generation,
            mode="delta",
            documents=documents_total + appended,
            appended_documents=appended or max(
                len(ids) for ids in new_ids.values()),
            files_written=(journal_entry["file"], MANIFEST_NAME),
            journal_segments=segments["global"] + sum(
                segments["definitions"].values()),
        )

    def _global_document_count(self, manifest: dict,
                               journal_records: dict) -> int:
        """Documents in the committed global target, from the cheap
        header plus journal doc counts (no postings load)."""
        header = read_snapshot_header(
            self.path / manifest["snapshots"]["global"])
        count = header.get("document_count", 0)
        for record in journal_records.get(None, ()):
            count += len(record["docs"])
        return count

    def _full_save(self, collection: QunitCollection,
                   vectors: bool) -> SaveReport:
        """Write a fresh complete generation and prune the old one —
        the crash-consistent path :meth:`CollectionStore.save` always
        took (see its docstring for the layout)."""
        path = self.path
        path.mkdir(parents=True, exist_ok=True)
        generation = os.urandom(4).hex()
        global_snapshot = collection.global_snapshot()
        vector_index = None
        if vectors:
            from repro.ir.embed import HashingEmbedder
            from repro.ir.vector import VectorIndex

            # One embedding pass over the global corpus; each snapshot
            # file below persists the restriction to its own documents.
            vector_index = VectorIndex.build(HashingEmbedder(),
                                             global_snapshot._documents)
        store_name = f"docs-{generation}.store"
        save_document_store(DocumentStore.from_snapshot(global_snapshot),
                            path / store_name)
        global_name = f"global-{generation}.snap"
        save_snapshot(global_snapshot, path / global_name,
                      docstore=store_name, vectors=vector_index)
        snapshot_names: dict[str, str] = {}
        for name in sorted(collection.definitions):
            file_name = f"def-{name}-{generation}.snap"
            definition_snapshot = collection._index_for(name).snapshot()
            missing = [doc_id for doc_id in definition_snapshot._documents
                       if doc_id not in global_snapshot._documents]
            if missing:
                # Writing refs for these would produce a generation that
                # fails at load time with a dangling-reference error;
                # fail at save time with the real cause instead.
                raise SnapshotError(
                    f"definition {name!r} indexes documents missing from "
                    f"the global snapshot (e.g. {missing[0]!r}); cannot "
                    f"deduplicate against the shared document store"
                )
            # Each definition snapshot carries a term Bloom filter in its
            # header so a loaded collection's plan stage can skip
            # definition retrieval that provably cannot match (the
            # per-definition counterpart of the per-shard filters).
            definition_bloom = TermBloomFilter.build(
                definition_snapshot.terms())
            save_snapshot(definition_snapshot, path / file_name,
                          docstore=store_name,
                          bloom=definition_bloom.to_dict(),
                          vectors=vector_index)
            snapshot_names[name] = file_name
        shard_entry = None
        shard_names: list[str] = []
        if collection.shards >= 2:
            shard_list = shard_snapshot(global_snapshot, collection.shards)
            for i, shard in enumerate(shard_list):
                file_name = f"shard-{i}of{collection.shards}-{generation}.snap"
                bloom = TermBloomFilter.build(shard.terms())
                save_snapshot(shard, path / file_name, docstore=store_name,
                              shard={"index": i, "count": collection.shards},
                              bloom=bloom.to_dict(), vectors=vector_index)
                shard_names.append(file_name)
            shard_entry = {"count": collection.shards, "files": shard_names}
        manifest = {
            "magic": MANIFEST_MAGIC,
            "format_version": MANIFEST_VERSION,
            "generation": generation,
            "analyzer": collection.analyzer.config(),
            "database": QunitCollection._database_fingerprint(
                collection.database),
            "max_instances_per_definition": collection.max_instances,
            "definitions": [collection.definitions[name].to_dict()
                            for name in sorted(collection.definitions)],
            "docstore": store_name,
            "vectors": vectors,
            "snapshots": {"global": global_name,
                          "definitions": snapshot_names},
            "shards": shard_entry,
        }
        self._write_manifest(manifest)
        referenced = {store_name, global_name, *snapshot_names.values(),
                      *shard_names}
        for stale in (*path.glob("*.snap"), *path.glob("*.store"),
                      *path.glob("*.jrnl")):
            if stale.name not in referenced:
                stale.unlink(missing_ok=True)
        collection._store_path = self.path
        collection.generation = generation
        return SaveReport(
            path=str(path),
            generation=generation,
            mode="full",
            documents=global_snapshot.document_count,
            appended_documents=global_snapshot.document_count,
            files_written=(store_name, global_name,
                           *snapshot_names.values(), *shard_names,
                           MANIFEST_NAME),
            journal_segments=0,
        )

    # -- load ----------------------------------------------------------------

    def load(self, database: Database,
             options: LoadOptions | None = None) -> QunitCollection:
        """Restore the directory's collection (see :class:`LoadOptions`).

        With ``lazy`` (the default) only the manifest, the committed
        journal, and each snapshot's header — per-definition Bloom
        filters included — are pinned; a snapshot is mmap'd on first
        query demand and counted in ``collection.lazy_loads``.  With
        ``lazy=False`` every referenced snapshot is read eagerly and a
        load racing a concurrent re-save's prune is retried from the
        fresh manifest; a lazy load can instead surface the race as a
        :class:`~repro.errors.SnapshotError` on first demand.

        Raises:
            SnapshotError: on missing/corrupt manifests, journals, or
                snapshots, format-version mismatches, analyzer
                disagreements, or a database fingerprint mismatch.
        """
        options = options or LoadOptions()
        attempts = 3
        for attempt in range(attempts):
            try:
                return self._load_once(database, options)
            except _SnapshotPruneRace:
                # Lost the race with a concurrent re-save's prune; the
                # fresh manifest references a complete generation.  Any
                # other failure (missing manifest, checksum, version,
                # fingerprint, analyzer mismatch) is final.
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable")

    def _load_once(self, database: Database,
                   options: LoadOptions) -> QunitCollection:
        path = self.path
        manifest = self.manifest()
        manifest_path = path / MANIFEST_NAME
        saved_fingerprint = manifest.get("database")
        if saved_fingerprint is not None:
            actual = QunitCollection._database_fingerprint(database)
            if actual != saved_fingerprint:
                raise SnapshotError(
                    f"collection at {str(path)!r} was derived from database "
                    f"{saved_fingerprint.get('name')!r} with row counts "
                    f"{saved_fingerprint.get('row_counts')}, but the given "
                    f"database is {actual['name']!r} with "
                    f"{actual['row_counts']}; snapshot instances would not "
                    f"materialize against it (same scale/seed required)"
                )
        definitions_data = manifest.get("definitions")
        if not isinstance(definitions_data, list):
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} has no "
                f"definitions list"
            )
        try:
            definitions = [QunitDefinition.from_dict(data)
                           for data in definitions_data]
        except (KeyError, TypeError) as exc:
            raise SnapshotError(
                f"collection manifest {str(manifest_path)!r} has a "
                f"malformed definition entry ({exc!r})"
            ) from exc
        journal_records = QunitCollection._race_guarded(
            lambda: self._read_journal(manifest))
        journal_path = path / (manifest.get("journal") or {}).get("file", "")
        collection = QunitCollection(
            database,
            definitions,
            max_instances_per_definition=manifest.get(
                "max_instances_per_definition"),
            analyzer=Analyzer.from_config(manifest.get("analyzer", {})),
            shards=options.shards,
            parallelism=options.parallelism,
            strategy=options.strategy,
        )
        collection._store_path = path
        collection.generation = self._effective_generation(manifest)

        # The shared document store loads once, on first need: at load
        # time when eager, on the first snapshot demand when lazy.
        store_name = manifest.get("docstore")
        store_cache: list = []

        def shared_store():
            if not store_cache:
                store_cache.append(
                    load_document_store(path / store_name)
                    if store_name is not None else None)
            return store_cache[0]

        def load_target(key: str | None, file_name: str):
            snapshot, header = load_snapshot_with_header(
                path / file_name, store=shared_store())
            if snapshot.analyzer != collection.analyzer:
                raise SnapshotError(
                    f"snapshot {file_name!r} was built with analyzer "
                    f"{snapshot.analyzer!r}, but the collection manifest "
                    f"says {collection.analyzer!r}; refusing to mix "
                    f"tokenizations"
                )
            records = journal_records.get(key, ())
            if records:
                snapshot = _fold_records(snapshot, records, journal_path)
            # Definition snapshots persist a term Bloom filter in their
            # header; it describes the *base* vocabulary only, so any
            # advance past the header's index_version (a snapshot-level
            # delta tail, or journal records folded above) discards it —
            # pruning on a filter that never saw the new terms would
            # drop real answers.  definition_bloom rebuilds on demand.
            bloom = None
            bloom_data = header.get("bloom")
            if key is not None and bloom_data and \
                    header.get("index_version") == snapshot.version:
                bloom = TermBloomFilter.from_dict(bloom_data)
            return snapshot, bloom

        snapshots_entry = manifest.get("snapshots", {})
        entries: list[tuple[str | None, str]] = []
        if "global" in snapshots_entry:
            entries.append((None, snapshots_entry["global"]))
        entries.extend(snapshots_entry.get("definitions", {}).items())
        for key, file_name in entries:
            if options.lazy:
                # Pin only the cheap header now: it validates the
                # analyzer up front and carries the Bloom filter the
                # plan stage prunes with — no postings, no documents.
                header = QunitCollection._race_guarded(
                    lambda file_name=file_name: read_snapshot_header(
                        path / file_name))
                header_analyzer = Analyzer.from_config(
                    header.get("analyzer", {}))
                if header_analyzer != collection.analyzer:
                    raise SnapshotError(
                        f"snapshot {file_name!r} was built with analyzer "
                        f"{header_analyzer!r}, but the collection manifest "
                        f"says {collection.analyzer!r}; refusing to mix "
                        f"tokenizations"
                    )
                collection._lazy_loaders[key] = (
                    lambda key=key, file_name=file_name:
                    load_target(key, file_name))
                # The header Bloom filter stands in for the un-loaded
                # snapshot's — but only while nothing has advanced past
                # the base it describes (collection saves always write
                # clean bases, so only journal records can).
                bloom_data = header.get("bloom")
                if key is not None and bloom_data and \
                        not journal_records.get(key):
                    collection._header_blooms[key] = \
                        TermBloomFilter.from_dict(bloom_data)
            else:
                snapshot, bloom = QunitCollection._race_guarded(
                    lambda key=key, file_name=file_name:
                    load_target(key, file_name))
                collection._loaded_snapshots[key] = snapshot
                if bloom is not None:
                    collection._definition_blooms[key] = (
                        snapshot.version, bloom)

        shard_entry = manifest.get("shards")
        if options.shards >= 2 and shard_entry and \
                shard_entry.get("count") == options.shards:
            shard_files = list(shard_entry.get("files", []))
            count = options.shards

            def load_sharded():
                shard_snapshots: list[IndexSnapshot] = []
                blooms: list[TermBloomFilter | None] = []
                global_records = journal_records.get(None, ())
                for i, file_name in enumerate(shard_files):
                    shard_obj, header = load_snapshot_with_header(
                        path / file_name, store=shared_store())
                    records = [
                        filter_delta_record(
                            record,
                            lambda doc_id, i=i: shard_id(doc_id,
                                                         count) == i)
                        for record in global_records
                    ]
                    if records:
                        shard_obj = _fold_records(shard_obj, records,
                                                  journal_path)
                    # Same staleness rule as the definition filters: a
                    # persisted Bloom only describes the base
                    # vocabulary, so a delta-advanced shard discards it
                    # (from_shards rebuilds from the shard vocabulary).
                    bloom_data = header.get("bloom")
                    fresh = header.get("index_version") == shard_obj.version
                    blooms.append(TermBloomFilter.from_dict(bloom_data)
                                  if bloom_data and fresh else None)
                    shard_snapshots.append(shard_obj)
                if len(shard_snapshots) != count:
                    return None
                restored = list(blooms) if all(blooms) else None
                return ShardedTopK.from_shards(
                    shard_snapshots, parallelism=options.parallelism,
                    blooms=restored)

            if options.lazy:
                collection._lazy_shard_loader = load_sharded
            else:
                collection._loaded_sharded = QunitCollection._race_guarded(
                    load_sharded)
        return collection

    # -- shard workers -------------------------------------------------------

    def load_shard(self, shard_index: int,
                   ) -> tuple[IndexSnapshot, TermBloomFilter | None]:
        """Load exactly one persisted shard partition of the flat index.

        The multi-process-server entry point: a worker serving partition
        ``shard_index`` reads the manifest, its own shard snapshot, only
        its partition's documents from the shared store, and the
        committed journal's global records narrowed to its partition —
        O(partition + journal), never O(collection).

        Returns:
            ``(snapshot, bloom)``: the shard's self-contained snapshot
            (collection-wide statistics included, so scoring is
            float-identical to the unsharded path) and its term Bloom
            filter (``None`` when the persisted filter is stale — the
            file predates Bloom persistence, carries delta segments, or
            the journal advanced the partition past it).

        Raises:
            SnapshotError: if the directory has no persisted shards, the
                index is out of range, or any file fails verification.
        """
        path = self.path
        manifest = self.manifest()
        shard_entry = manifest.get("shards")
        if not shard_entry or not shard_entry.get("files"):
            raise SnapshotError(
                f"collection at {str(path)!r} has no persisted shard "
                f"snapshots (save with shards >= 2 configured)"
            )
        files = shard_entry["files"]
        if not 0 <= shard_index < len(files):
            raise SnapshotError(
                f"shard index {shard_index} out of range (collection has "
                f"{len(files)} shards)"
            )
        file_name = files[shard_index]
        store = None
        if manifest.get("docstore"):
            # Which documents this partition needs is written in the
            # shard file's own ref records; fetch exactly those from the
            # store via its header offset index.  Journal documents are
            # inline in their records and never in the store.
            wanted = read_snapshot_doc_ids(path / file_name)
            store = load_document_store_partition(
                path / manifest["docstore"], wanted)
        snapshot, header = load_snapshot_with_header(path / file_name,
                                                     store=store)
        journal_records = self._read_journal(manifest)
        count = shard_entry.get("count", len(files))
        records = [
            filter_delta_record(
                record,
                lambda doc_id: shard_id(doc_id, count) == shard_index)
            for record in journal_records.get(None, ())
        ]
        if records:
            journal_path = path / manifest["journal"]["file"]
            snapshot = _fold_records(snapshot, records, journal_path)
        # A persisted Bloom filter describes the base snapshot only;
        # snapshot-level deltas or journal records may have added
        # vocabulary it has never seen, so an advanced shard hands back
        # no filter (routing on a stale one could skip real postings).
        bloom_data = header.get("bloom")
        fresh = header.get("index_version") == snapshot.version
        bloom = TermBloomFilter.from_dict(bloom_data) \
            if bloom_data and fresh else None
        return snapshot, bloom

    # -- compaction ----------------------------------------------------------

    def compact(self, vectors: bool | None = None) -> int:
        """Fold the committed journal into clean v3 bases.

        Loads each journaled target (base plus its records), rewrites
        the directory as a fresh journal-free full generation — shared
        document store, per-target snapshots with refreshed Bloom
        filters, re-partitioned shard files when the old generation had
        them — and prunes the old files.  No database is needed: the
        snapshots are self-contained.  Returns the number of journal
        segments folded (0 = no journal; nothing rewritten).

        Args:
            vectors: re-embed the corpus so the new bases carry vector
                extents; defaults to whatever the old generation
                recorded (journal documents never carry vectors, so
                compaction is also what restores hybrid retrieval over
                ingested documents).

        Raises:
            SnapshotError: if any file fails verification.
        """
        manifest = self.manifest()
        journal_entry = manifest.get("journal")
        if not journal_entry:
            return 0
        if vectors is None:
            vectors = bool(manifest.get("vectors"))
        path = self.path
        journal_records = self._read_journal(manifest)
        folded = sum(len(records) for records in journal_records.values())
        journal_path = path / journal_entry["file"]
        store = None
        if manifest.get("docstore"):
            store = load_document_store(path / manifest["docstore"])
        snapshots_entry = manifest.get("snapshots", {})

        def folded_target(key: str | None, file_name: str) -> IndexSnapshot:
            snapshot, _header = load_snapshot_with_header(
                path / file_name, store=store)
            records = journal_records.get(key, ())
            return _fold_records(snapshot, records, journal_path) \
                if records else snapshot

        global_snapshot = folded_target(None, snapshots_entry["global"])
        definition_snapshots = {
            name: folded_target(name, file_name)
            for name, file_name
            in sorted(snapshots_entry.get("definitions", {}).items())
        }
        generation = os.urandom(4).hex()
        vector_index = None
        if vectors:
            from repro.ir.embed import HashingEmbedder
            from repro.ir.vector import VectorIndex

            vector_index = VectorIndex.build(HashingEmbedder(),
                                             global_snapshot._documents)
        store_name = f"docs-{generation}.store"
        save_document_store(DocumentStore.from_snapshot(global_snapshot),
                            path / store_name)
        global_name = f"global-{generation}.snap"
        save_snapshot(global_snapshot, path / global_name,
                      docstore=store_name, vectors=vector_index)
        snapshot_names: dict[str, str] = {}
        for name, snapshot in definition_snapshots.items():
            file_name = f"def-{name}-{generation}.snap"
            bloom = TermBloomFilter.build(snapshot.terms())
            save_snapshot(snapshot, path / file_name, docstore=store_name,
                          bloom=bloom.to_dict(), vectors=vector_index)
            snapshot_names[name] = file_name
        shard_entry = manifest.get("shards")
        new_shard_entry = None
        shard_names: list[str] = []
        if shard_entry and shard_entry.get("count", 0) >= 2:
            count = shard_entry["count"]
            for i, shard in enumerate(shard_snapshot(global_snapshot, count)):
                file_name = f"shard-{i}of{count}-{generation}.snap"
                bloom = TermBloomFilter.build(shard.terms())
                save_snapshot(shard, path / file_name, docstore=store_name,
                              shard={"index": i, "count": count},
                              bloom=bloom.to_dict(), vectors=vector_index)
                shard_names.append(file_name)
            new_shard_entry = {"count": count, "files": shard_names}
        new_manifest = {
            **manifest,
            "format_version": MANIFEST_VERSION,
            "generation": generation,
            "docstore": store_name,
            "vectors": vectors,
            "snapshots": {"global": global_name,
                          "definitions": snapshot_names},
            "shards": new_shard_entry,
        }
        new_manifest.pop("journal", None)
        self._write_manifest(new_manifest)
        referenced = {store_name, global_name, *snapshot_names.values(),
                      *shard_names}
        for stale in (*path.glob("*.snap"), *path.glob("*.store"),
                      *path.glob("*.jrnl")):
            if stale.name not in referenced:
                stale.unlink(missing_ok=True)
        return folded

    # -- online ingestion ----------------------------------------------------

    def writer(self, collection: QunitCollection) -> "CollectionWriter":
        """A :class:`CollectionWriter` staging documents into
        ``collection`` with this store as the durable backing."""
        return CollectionWriter(self, collection)


class CollectionWriter:
    """Online ingestion: stage documents, commit a generation swap.

    The writer decouples the three phases of adding documents to a live
    collection.  :meth:`stage`/:meth:`stage_instance` only record the
    documents (cheap, no index work).  :meth:`commit` then (1) builds
    the next-generation snapshots off the serving path — reads keep
    hitting the current generation throughout, (2) makes the addition
    durable as one journal transaction (O(new documents); a full save
    of the *pre-commit* state first if the directory has none), and
    (3) swaps the collection's in-memory generation atomically under
    the searcher-pool leases: every pooled searcher is retired, so
    in-flight batches finish against the searchers (and Bloom/bound
    caches) they pinned while the next acquire builds fresh against the
    new snapshots; version-stamped Bloom caches and subscribed result
    caches are invalidated in the same step.  :meth:`commit_async` runs
    the same commit on a background thread.

    Commits are serialized per writer (a lock); readers never block.
    """

    def __init__(self, store: CollectionStore, collection: QunitCollection):
        self.store = store
        self.collection = collection
        self._staged: list[tuple[str, Document]] = []
        self._instances: list[QunitInstance] = []
        self._lock = threading.Lock()

    @property
    def pending(self) -> int:
        """Documents staged but not yet committed."""
        with self._lock:
            return len(self._staged)

    def stage(self, definition: str, document: Document) -> None:
        """Stage one document for ``definition`` (validated to exist);
        the document joins both the definition's snapshot and the global
        one at the next :meth:`commit`.

        Raises:
            DerivationError: for unknown definition names.
        """
        self.collection.definition(definition)
        with self._lock:
            self._staged.append((definition, document))

    def stage_instance(self, instance: QunitInstance) -> None:
        """Stage one qunit instance: its decorated document (same
        decoration as derivation-time indexing) is staged for its
        definition, and the instance registers with the collection at
        commit time so answers render without a database round-trip.

        Raises:
            DerivationError: if the instance's definition is unknown.
        """
        name = instance.definition.name
        self.collection.definition(name)
        document = self.collection._decorated_document(instance)
        with self._lock:
            self._staged.append((name, document))
            self._instances.append(instance)

    def commit(self) -> SaveReport:
        """Build, persist, and swap in the next generation (see the
        class docstring); returns the delta :class:`SaveReport`.
        An empty stage commits nothing and reports 0 appended.

        Raises:
            SnapshotError: on duplicate doc_ids, unserializable
                documents, or a broken on-disk generation.  The staged
                documents are consumed only by a successful commit.
        """
        with self._lock:
            staged = list(self._staged)
            instances = list(self._instances)
        collection = self.collection
        if not staged:
            return SaveReport(
                path=str(self.store.path),
                generation=collection.generation or "",
                mode="delta",
                documents=collection.global_snapshot().document_count,
                appended_documents=0)
        # Durability first: a directory with no generation gets a full
        # save of the pre-commit state, so the journal transaction below
        # always has a base to extend.
        if not (self.store.path / MANIFEST_NAME).exists():
            self.store.save(collection, SaveOptions(mode="full"))
        # Phase 1 — build the next generation off the serving path.
        # The old snapshots keep serving every read; nothing below
        # mutates them.
        new_ids = [document.doc_id for _name, document in staged]
        by_definition: dict[str, list[Document]] = {}
        for name, document in staged:
            by_definition.setdefault(name, []).append(document)
        new_snapshots: dict[str | None, IndexSnapshot] = {}
        global_base = collection._index_for(None).snapshot()
        new_snapshots[None] = _advance_snapshot(
            global_base, [document for _name, document in staged],
            collection.analyzer)
        for name, documents in sorted(by_definition.items()):
            base = collection._index_for(name).snapshot()
            new_snapshots[name] = _advance_snapshot(
                base, documents, collection.analyzer)
        # Phase 2 — durable journal transaction + atomic manifest swap.
        manifest = self.store.manifest()
        journal_records = self.store._read_journal(manifest)
        ids_by_target: dict[str | None, list[str]] = {None: new_ids}
        for name, documents in by_definition.items():
            ids_by_target[name] = [document.doc_id
                                   for document in documents]
        report = self.store._delta_save(
            collection, manifest, journal_records,
            dict(new_snapshots), ids_by_target)
        # Phase 3 — swap the in-memory generation under the pool leases.
        collection._swap_generation(new_snapshots, report.generation)
        for instance in instances:
            collection._instance_by_id.setdefault(
                instance.instance_id, instance)
        with self._lock:
            del self._staged[:len(staged)]
            del self._instances[:len(instances)]
        return report

    def commit_async(self):
        """Run :meth:`commit` on a background thread; returns a
        :class:`concurrent.futures.Future` resolving to its
        :class:`SaveReport` (or raising its error).  Reads keep serving
        the old generation until the commit's swap lands."""
        from concurrent.futures import Future

        future: Future = Future()

        def run():
            try:
                future.set_result(self.commit())
            except BaseException as exc:  # surface, never swallow
                future.set_exception(exc)

        thread = threading.Thread(target=run, name="collection-writer",
                                  daemon=True)
        thread.start()
        return future

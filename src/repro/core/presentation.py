"""Conversion expressions: the presentation half of a qunit definition.

The paper writes conversion expressions in "XSL-like markup"::

    <cast movie="$x">
      <foreach:tuple>
        <person>$person.name</person>
      </foreach:tuple>
    </cast>

The template language supported here:

* ``$name`` — a query parameter (from the qunit binding);
* ``$table.column`` — a field of the current tuple (inside ``foreach``) or
  of the first tuple (outside);
* ``<foreach:tuple> ... </foreach:tuple>`` — repeat the enclosed fragment
  once per result tuple (deduplicated, order-preserving);
* everything else is literal markup.

Rendering yields the marked-up string; :meth:`ConversionTemplate.render_text`
strips tags for IR indexing and rater consumption.
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import TemplateError

__all__ = ["ConversionTemplate", "render_default"]

_FOREACH_OPEN = "<foreach:tuple>"
_FOREACH_CLOSE = "</foreach:tuple>"
_VAR = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)")
_TAG = re.compile(r"<[^>]*>")


@dataclass(frozen=True)
class _Piece:
    """A template piece: literal text, a variable, or a foreach body."""

    kind: str          # 'text' | 'var' | 'foreach'
    value: str = ""
    body: tuple["_Piece", ...] = ()


class ConversionTemplate:
    """A parsed conversion expression, reusable across instances."""

    def __init__(self, source: str):
        self.source = source
        self._pieces = _parse(source)

    def render(self, params: Mapping[str, object],
               rows: Sequence[Mapping[str, object]]) -> str:
        """Render the marked-up presentation for one qunit instance."""
        out: list[str] = []
        _render_pieces(self._pieces, params, rows, out, current_row=None)
        return "".join(out)

    def render_text(self, params: Mapping[str, object],
                    rows: Sequence[Mapping[str, object]]) -> str:
        """Tag-stripped text rendering (whitespace-folded)."""
        markup = self.render(params, rows)
        text = _TAG.sub(" ", markup)
        return " ".join(text.split())

    def variables(self) -> set[str]:
        """All ``$var`` names appearing anywhere in the template."""
        names: set[str] = set()

        def collect(pieces: tuple[_Piece, ...]) -> None:
            for piece in pieces:
                if piece.kind == "var":
                    names.add(piece.value)
                elif piece.kind == "foreach":
                    collect(piece.body)

        collect(self._pieces)
        return names


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def _parse(source: str) -> tuple[_Piece, ...]:
    pieces, index = _parse_until(source, 0, closing=None)
    if index != len(source):
        raise TemplateError(
            f"unexpected {_FOREACH_CLOSE} at position {index} in template"
        )
    return pieces


def _parse_until(source: str, index: int, closing: str | None) -> tuple[tuple[_Piece, ...], int]:
    pieces: list[_Piece] = []
    text_start = index
    while index < len(source):
        if source.startswith(_FOREACH_OPEN, index):
            _flush_text(source, text_start, index, pieces)
            body, index = _parse_until(source, index + len(_FOREACH_OPEN),
                                       closing=_FOREACH_CLOSE)
            pieces.append(_Piece("foreach", body=body))
            text_start = index
            continue
        if source.startswith(_FOREACH_CLOSE, index):
            if closing != _FOREACH_CLOSE:
                return tuple(pieces), index
            _flush_text(source, text_start, index, pieces)
            return tuple(pieces), index + len(_FOREACH_CLOSE)
        match = _VAR.match(source, index)
        if match:
            _flush_text(source, text_start, index, pieces)
            pieces.append(_Piece("var", match.group(1)))
            index = match.end()
            text_start = index
            continue
        index += 1
    if closing is not None:
        raise TemplateError(f"unterminated {_FOREACH_OPEN} in template")
    _flush_text(source, text_start, index, pieces)
    return tuple(pieces), index


def _flush_text(source: str, start: int, end: int, pieces: list[_Piece]) -> None:
    if end > start:
        pieces.append(_Piece("text", source[start:end]))


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _render_pieces(pieces: tuple[_Piece, ...], params: Mapping[str, object],
                   rows: Sequence[Mapping[str, object]], out: list[str],
                   current_row: Mapping[str, object] | None) -> None:
    for piece in pieces:
        if piece.kind == "text":
            out.append(piece.value)
        elif piece.kind == "var":
            out.append(_resolve(piece.value, params, rows, current_row))
        else:  # foreach
            if current_row is not None:
                raise TemplateError("nested <foreach:tuple> is not supported")
            seen: set[str] = set()
            for row in rows:
                fragment: list[str] = []
                _render_pieces(piece.body, params, rows, fragment, current_row=row)
                rendered = "".join(fragment)
                if rendered in seen:
                    continue  # cross-product joins repeat tuples; dedup them
                seen.add(rendered)
                out.append(rendered)


def _resolve(name: str, params: Mapping[str, object],
             rows: Sequence[Mapping[str, object]],
             current_row: Mapping[str, object] | None) -> str:
    if "." in name:
        row = current_row if current_row is not None else (rows[0] if rows else None)
        if row is None:
            return ""
        if name not in row:
            raise TemplateError(
                f"template references ${name} but tuples have "
                f"{sorted(row)}"
            )
        value = row[name]
    else:
        if name not in params:
            raise TemplateError(f"template references unbound parameter ${name}")
        value = params[name]
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


# ---------------------------------------------------------------------------
# Default rendering (definitions without a conversion expression)
# ---------------------------------------------------------------------------

def render_default(title: str, params: Mapping[str, object],
                   rows: Sequence[Mapping[str, object]]) -> str:
    """A plain paragraph: title, bindings, then deduplicated column values.

    This mirrors the paper's methodology of converting all results "by hand
    into a paragraph in a simplified natural English" — a levelling format
    that carries content without presentation tricks.
    """
    parts: list[str] = [title]
    for name, value in sorted(params.items()):
        parts.append(f"{name}: {value}.")
    grouped: dict[str, list[str]] = {}
    for row in rows:
        for qualified, value in row.items():
            if value is None:
                continue
            table, _, column = qualified.partition(".")
            if column == "id" or column.endswith("_id"):
                continue
            text = "yes" if isinstance(value, bool) else str(value)
            bucket = grouped.setdefault(qualified, [])
            if text not in bucket:
                bucket.append(text)
    for qualified in sorted(grouped):
        label = qualified.replace(".", " ").replace("_", " ")
        values = ", ".join(grouped[qualified])
        parts.append(f"{label}: {values}.")
    return " ".join(parts)

"""Expert (manual) qunit identification.

"One possibility is for the database creator to identify qunits manually at
the time of database creation.  Since the subject matter expert is likely
to have the best knowledge of the data... such expert human qunit
identification is likely to be superior to anything that automated
techniques can provide." (Sec. 4)

The paper's "Human" system took the page types of imdb.com as an
expert-determined qunit set (title page, full credits, name page,
filmography, awards, ...).  This module hand-writes that same set against
our 15-table schema.  One definition — ``movie_full_credits`` — uses the
paper's own Sec. 2 example conversion expression.
"""

from __future__ import annotations

from repro.core.qunit import ParamBinder, QunitDefinition

__all__ = ["imdb_expert_qunits"]

_MOVIE = (ParamBinder("x", "movie", "title"),)
_PERSON = (ParamBinder("x", "person", "name"),)


def imdb_expert_qunits() -> list[QunitDefinition]:
    """The hand-curated qunit set mirroring imdb.com page types."""
    defs = [
        QunitDefinition(
            name="movie_main_page",
            description="The movie's title page: facts, genres, plot, top cast.",
            base_sql=(
                'SELECT * FROM movie, movie_genre, genre, movie_info, info_type, '
                'cast, person, role_type '
                'WHERE movie_genre.movie_id = movie.id '
                'AND movie_genre.genre_id = genre.id '
                'AND movie_info.movie_id = movie.id '
                'AND movie_info.info_type_id = info_type.id '
                "AND info_type.name IN ('plot', 'tagline') "
                'AND cast.movie_id = movie.id '
                'AND cast.person_id = person.id '
                'AND cast.role_id = role_type.id '
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("movie", "summary", "profile", "plot", "genre",
                      "tagline", "rating", "about"),
            utility=0.95,
            source="expert",
        ),
        QunitDefinition(
            name="movie_full_credits",
            description="Full cast and crew of one movie (the paper's Sec. 2 example).",
            base_sql=(
                'SELECT * FROM person, cast, movie, role_type '
                'WHERE cast.movie_id = movie.id '
                'AND cast.person_id = person.id '
                'AND cast.role_id = role_type.id '
                'AND movie.title = "$x"'
            ),
            conversion=(
                '<cast movie="$x">'
                '<foreach:tuple>'
                '<person role="$role_type.role" character="$cast.character_name">'
                "$person.name"
                "</person>"
                "</foreach:tuple>"
                "</cast>"
            ),
            binders=_MOVIE,
            keywords=("cast", "credits", "actors", "starring", "crew"),
            utility=0.8,
            source="expert",
        ),
        QunitDefinition(
            name="person_main_page",
            description="A person's profile page: filmography with roles.",
            base_sql=(
                'SELECT * FROM person, cast, movie, role_type '
                'WHERE cast.person_id = person.id '
                'AND cast.movie_id = movie.id '
                'AND cast.role_id = role_type.id '
                'AND person.name = "$x"'
            ),
            binders=_PERSON,
            keywords=("person", "profile", "actor", "filmography", "movies",
                      "roles", "about"),
            utility=0.9,
            source="expert",
        ),
        QunitDefinition(
            name="person_filmography",
            description="Just the movies a person appears in.",
            base_sql=(
                'SELECT person.name, movie.title, movie.release_year '
                'FROM person, cast, movie '
                'WHERE cast.person_id = person.id '
                'AND cast.movie_id = movie.id '
                'AND person.name = "$x"'
            ),
            conversion=(
                '<filmography person="$x">'
                "<foreach:tuple>"
                "<movie year=\"$movie.release_year\">$movie.title</movie>"
                "</foreach:tuple>"
                "</filmography>"
            ),
            binders=_PERSON,
            keywords=("filmography", "movies", "films", "movie"),
            utility=0.7,
            source="expert",
        ),
        QunitDefinition(
            name="movie_awards",
            description="Awards and nominations of one movie.",
            base_sql=(
                'SELECT * FROM movie, award '
                'WHERE award.movie_id = movie.id '
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("award", "awards", "oscar", "won", "nominations"),
            utility=0.55,
            source="expert",
        ),
        QunitDefinition(
            name="person_awards",
            description="Awards and nominations of one person.",
            base_sql=(
                'SELECT * FROM person, award '
                'WHERE award.person_id = person.id '
                'AND person.name = "$x"'
            ),
            binders=_PERSON,
            keywords=("award", "awards", "oscar", "won", "nominations"),
            utility=0.5,
            source="expert",
        ),
        QunitDefinition(
            name="movie_box_office",
            description="Box-office figures of one movie.",
            base_sql=(
                'SELECT * FROM movie, movie_info, info_type '
                'WHERE movie_info.movie_id = movie.id '
                'AND movie_info.info_type_id = info_type.id '
                "AND info_type.name = 'box office' "
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("box office", "gross", "revenue", "earnings"),
            utility=0.55,
            source="expert",
        ),
        QunitDefinition(
            name="movie_soundtrack",
            description="Soundtrack listing of one movie.",
            base_sql=(
                'SELECT * FROM movie, movie_info, info_type '
                'WHERE movie_info.movie_id = movie.id '
                'AND movie_info.info_type_id = info_type.id '
                "AND info_type.name = 'soundtrack' "
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("soundtrack", "ost", "music", "songs", "score"),
            utility=0.5,
            source="expert",
        ),
        QunitDefinition(
            name="movie_plot",
            description="The plot synopsis of one movie.",
            base_sql=(
                'SELECT * FROM movie, movie_info, info_type '
                'WHERE movie_info.movie_id = movie.id '
                'AND movie_info.info_type_id = info_type.id '
                "AND info_type.name = 'plot' "
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("plot", "synopsis", "story"),
            utility=0.6,
            source="expert",
        ),
        QunitDefinition(
            name="movie_trivia",
            description="Trivia about one movie.",
            base_sql=(
                'SELECT * FROM movie, movie_info, info_type '
                'WHERE movie_info.movie_id = movie.id '
                'AND movie_info.info_type_id = info_type.id '
                "AND info_type.name IN ('trivia', 'quotes') "
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("trivia", "quotes", "facts"),
            utility=0.5,
            source="expert",
        ),
        QunitDefinition(
            name="movie_locations",
            description="Filming locations of one movie.",
            base_sql=(
                'SELECT * FROM movie, movie_location, location '
                'WHERE movie_location.movie_id = movie.id '
                'AND movie_location.location_id = location.id '
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("location", "locations", "filmed", "where", "shot"),
            utility=0.5,
            source="expert",
        ),
        QunitDefinition(
            name="movies_by_year",
            description="Movies released in one year.",
            base_sql=(
                'SELECT movie.title, movie.release_year, movie.rating '
                'FROM movie WHERE movie.release_year = "$x"'
            ),
            binders=(ParamBinder("x", "movie", "release_year"),),
            keywords=("year", "released", "period", "movies"),
            utility=0.5,
            source="expert",
        ),
        QunitDefinition(
            name="genre_movies",
            description="Movies of one genre.",
            base_sql=(
                'SELECT genre.name, movie.title, movie.release_year, movie.rating '
                'FROM genre, movie_genre, movie '
                'WHERE movie_genre.genre_id = genre.id '
                'AND movie_genre.movie_id = movie.id '
                'AND genre.name = "$x"'
            ),
            binders=(ParamBinder("x", "genre", "name"),),
            keywords=("genre", "movies", "films", "list"),
            utility=0.5,
            source="expert",
        ),
        QunitDefinition(
            name="top_charts",
            description="The top-rated movies chart.",
            base_sql=(
                'SELECT movie.title, movie.release_year, movie.rating '
                'FROM movie ORDER BY movie.rating DESC LIMIT 25'
            ),
            keywords=("top", "chart", "charts", "best", "ranking",
                      "highest", "rated"),
            utility=0.6,
            source="expert",
        ),
        QunitDefinition(
            name="coactors",
            description="People who appeared in a movie with this person.",
            base_sql=(
                'SELECT p2.name, movie.title FROM person p1, cast c1, movie, '
                'cast c2, person p2 '
                'WHERE c1.person_id = p1.id '
                'AND c1.movie_id = movie.id '
                'AND c2.movie_id = movie.id '
                'AND c2.person_id = p2.id '
                'AND p1.name = "$x" '
                'AND NOT p2.name = "$x"'
            ),
            binders=_PERSON,
            keywords=("coactors", "costars", "connections", "worked",
                      "together", "cast"),
            utility=0.45,
            source="expert",
        ),
        QunitDefinition(
            name="person_biography",
            description="Biography of one person.",
            base_sql=(
                'SELECT * FROM person, person_info, info_type '
                'WHERE person_info.person_id = person.id '
                'AND person_info.info_type_id = info_type.id '
                "AND info_type.name = 'biography' "
                'AND person.name = "$x"'
            ),
            binders=_PERSON,
            keywords=("biography", "bio", "life", "born"),
            utility=0.55,
            source="expert",
        ),
        QunitDefinition(
            name="movie_alternate_titles",
            description="Alternative (aka) titles of one movie.",
            base_sql=(
                'SELECT * FROM movie, aka_title '
                'WHERE aka_title.movie_id = movie.id '
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("aka", "alternative", "titles", "known"),
            utility=0.35,
            source="expert",
        ),
        QunitDefinition(
            name="movie_companies",
            description="Production and distribution companies of one movie.",
            base_sql=(
                'SELECT * FROM movie, movie_company, company '
                'WHERE movie_company.movie_id = movie.id '
                'AND movie_company.company_id = company.id '
                'AND movie.title = "$x"'
            ),
            binders=_MOVIE,
            keywords=("studio", "company", "production", "distributor"),
            utility=0.35,
            source="expert",
        ),
    ]
    return defs

"""External-evidence qunit derivation (Sec. 4.3).

"By considering each piece of evidence as a qunit instance, the goal is to
learn qunit definitions. ... We then compute 'signatures' for each web
page, utilizing the DOM tree and frequency of each occurrence. ... By
aggregating the type signatures over a collection of pages, we can infer
the appropriate qunit definition."

The pipeline here:

1. **recognize** — each page's text nodes are scanned with the database
   segmenter; entity mentions yield ``table.column`` elements, headings
   yield attribute signals ("Plot" → ``movie_info:plot``);
2. **signature** — per page: occurrence counts per element, split into
   *label* elements (count ≤ label_threshold — the paper's
   ``(person.name:1)``) and *list* elements (the ``(movie.name:40)``);
3. **cluster** — pages group by their label (anchor) element; single-list
   pages ("Full cast of X") form their own fragment clusters;
4. **aggregate** — elements appearing in enough of a cluster's pages make
   it into the derived definition's join; frequent headings contribute
   info-type filters and keywords.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.derivation.joins import build_join_sql
from repro.core.qunit import ParamBinder, QunitDefinition
from repro.core.search.segmentation import QuerySegmenter, SchemaVocabulary
from repro.errors import DerivationError
from repro.graph.schema_graph import SchemaGraph
from repro.relational.database import Database
from repro.xmlview.tree import XmlNode

__all__ = ["ExternalEvidenceDeriver", "PageSignature"]

Element = tuple[str, str]  # (table, column)


@dataclass(frozen=True)
class PageSignature:
    """The type signature of one page."""

    label: Element | None                      # the anchor entity element
    list_elements: frozenset[Element]          # repeated entity elements
    headings: frozenset[tuple[str, str | None]]  # (table, info_type) signals
    counts: tuple[tuple[Element, int], ...]    # raw occurrence counts

    def count_of(self, element: Element) -> int:
        for candidate, count in self.counts:
            if candidate == element:
                return count
        return 0


class ExternalEvidenceDeriver:
    """Learns qunit definitions from a corpus of evidence pages."""

    def __init__(self, database: Database,
                 vocabulary: SchemaVocabulary | None = None,
                 label_threshold: int = 2,
                 list_threshold: int = 3,
                 min_cluster_pages: int = 3,
                 element_page_fraction: float = 0.25):
        if label_threshold < 1 or list_threshold <= label_threshold:
            raise DerivationError(
                f"need list_threshold > label_threshold >= 1, got "
                f"{list_threshold} / {label_threshold}"
            )
        self.database = database
        self.segmenter = QuerySegmenter(database, vocabulary)
        self.schema_graph = SchemaGraph(database.schema)
        self.label_threshold = label_threshold
        self.list_threshold = list_threshold
        self.min_cluster_pages = min_cluster_pages
        self.element_page_fraction = element_page_fraction

    # -- signatures ---------------------------------------------------------------

    def signature(self, page: XmlNode) -> PageSignature:
        """Compute the page's type signature by entity recognition."""
        counts: Counter = Counter()
        headings: set[tuple[str, str | None]] = set()
        first_seen: dict[Element, int] = {}
        order = 0
        for node in page.walk():
            if not node.text:
                continue
            segmented = self.segmenter.segment(node.text)
            for segment in segmented.entities():
                assert segment.table is not None and segment.column is not None
                element = (segment.table, segment.column)
                counts[element] += 1
                first_seen.setdefault(element, order)
                order += 1
            for segment in segmented.attributes():
                ref = segment.attribute
                assert ref is not None
                if ref.table is not None and not ref.aggregate:
                    headings.add((ref.table, ref.info_type))

        label: Element | None = None
        # Label: earliest-seen low-count entity element over a non-dimension
        # table (a page is "about" the thing its heading names once).
        dimension_tables = self.segmenter.vocabulary.dimension_tables
        for element in sorted(first_seen, key=lambda e: first_seen[e]):
            if counts[element] <= self.label_threshold and element[0] not in dimension_tables:
                label = element
                break
        list_elements = frozenset(
            element for element, count in counts.items()
            if count >= self.list_threshold and element != label
            and element[0] not in dimension_tables
        )
        return PageSignature(
            label=label,
            list_elements=list_elements,
            headings=frozenset(headings),
            counts=tuple(sorted(counts.items())),
        )

    # -- derivation -----------------------------------------------------------------

    def derive(self, pages: list[XmlNode]) -> list[QunitDefinition]:
        signatures = [self.signature(page) for page in pages]
        clusters = self._cluster(signatures)
        definitions: list[QunitDefinition] = []
        for key, members in sorted(clusters.items(), key=lambda kv: kv[0]):
            if len(members) < self.min_cluster_pages:
                continue
            definition = self._definition_for_cluster(key, members, len(pages))
            if definition is not None:
                definitions.append(definition)
        if not definitions:
            raise DerivationError(
                "external-evidence derivation produced no definitions; "
                "too few pages or clusters below support"
            )
        return definitions

    def _cluster(self, signatures: list[PageSignature],
                 ) -> dict[tuple, list[PageSignature]]:
        """Profile clusters by anchor; fragment clusters for single-list pages."""
        clusters: dict[tuple, list[PageSignature]] = {}
        for signature in signatures:
            if signature.label is None:
                continue
            # Single-list pages ("Full cast of X" - one dominant repeated
            # element, possibly with a sidecar like character names, and at
            # most one heading) cluster as fragments keyed by the dominant
            # element; everything else is a profile page of its anchor.
            if 1 <= len(signature.list_elements) <= 2 and len(signature.headings) <= 1:
                dominant = self._dominant_element(signature)
                key = ("fragment", signature.label, dominant)
            else:
                key = ("profile", signature.label)
            clusters.setdefault(key, []).append(signature)
        return clusters

    def _dominant_element(self, signature: PageSignature) -> Element:
        """The list element a single-list page is 'about': entity tables
        beat junction payloads, then higher occurrence counts."""
        def rank(element: Element) -> tuple[int, int, str, str]:
            table, column = element
            junction_rank = 1 if self.schema_graph.is_junction(table) else 0
            return (junction_rank, -signature.count_of(element), table, column)

        return min(signature.list_elements, key=rank)

    def _definition_for_cluster(self, key: tuple,
                                members: list[PageSignature],
                                corpus_size: int) -> QunitDefinition | None:
        kind = key[0]
        anchor_table, anchor_column = key[1]
        support = len(members)

        if kind == "fragment":
            list_table, _list_column = key[2]
            tables = [list_table]
            info_types: list[str] = []
            name = f"{anchor_table}_{anchor_column}_{list_table}_evidence"
        else:
            element_pages: Counter = Counter()
            heading_pages: Counter = Counter()
            for signature in members:
                for element in signature.list_elements:
                    element_pages[element] += 1
                for heading in signature.headings:
                    heading_pages[heading] += 1
            cutoff = max(1, int(self.element_page_fraction * support))
            tables = []
            for (table, _column), count in element_pages.most_common():
                if count >= cutoff and table not in tables and table != anchor_table:
                    tables.append(table)
            info_types = []
            for (table, info_type), count in heading_pages.most_common():
                if count < cutoff:
                    continue
                if table not in tables and table != anchor_table:
                    tables.append(table)
                if info_type and info_type not in info_types:
                    info_types.append(info_type)
            name = f"{anchor_table}_{anchor_column}_evidence_profile"

        extra_where: list[str] = []
        if info_types:
            quoted = ", ".join(f"'{value}'" for value in sorted(info_types))
            extra_where.append(f"info_type.name IN ({quoted})")
            if "info_type" not in tables:
                tables.append("info_type")
        try:
            sql = build_join_sql(self.schema_graph, anchor_table, tables,
                                 binder_column=anchor_column,
                                 extra_where=extra_where)
        except DerivationError:
            return None
        keywords = [anchor_table] + tables + info_types
        return QunitDefinition(
            name=name,
            description=(
                f"Evidence-derived ({kind}) qunit anchored on "
                f"{anchor_table}.{anchor_column}, learned from {support} "
                f"of {corpus_size} pages."
            ),
            base_sql=sql,
            binders=(ParamBinder("x", anchor_table, anchor_column),),
            keywords=tuple(dict.fromkeys(keywords)),
            utility=min(1.0, 0.4 + support / (support + 20.0)),
            source="external",
        )

"""Query-log rollup derivation (Sec. 4.2).

"We use a query rollup strategy for query logs, inspired by the observation
that keyword queries are inherently underspecified, and hence the qunit
definition for an under-specified query is an aggregation of the qunit
definitions of its specializations."

The algorithm, as the paper sketches it:

1. sample the database for entities and look them up in the log — here,
   every log query is segmented against the database, which is the same
   thing run in the profitable direction;
2. map each recognized entity onto the schema and record, per anchor
   schema element (e.g. ``person.name``), how often each other schema
   element co-occurs with it, weighted by query frequency — the
   "annotated set of schema links";
3. for each anchor, emit (a) a **rollup** definition joining the anchor to
   its top co-occurring elements "in that order", and (b) one **fragment**
   definition per strong individual link (the popular plan fragments).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.derivation.joins import build_join_sql
from repro.core.qunit import ParamBinder, QunitDefinition
from repro.core.search.segmentation import QuerySegmenter, SchemaVocabulary
from repro.errors import DerivationError
from repro.graph.schema_graph import SchemaGraph
from repro.relational.database import Database

__all__ = ["QueryLogDeriver", "SchemaLink"]


@dataclass(frozen=True)
class SchemaLink:
    """One co-occurrence target: a table, optionally narrowed to an info
    type ("movie_info about 'plot'") for the info fact tables."""

    table: str
    info_type: str | None = None

    def label(self) -> str:
        if self.info_type:
            return f"{self.table}:{self.info_type.replace(' ', '_')}"
        return self.table


class QueryLogDeriver:
    """Derives qunit definitions from (query, frequency) log entries."""

    def __init__(self, database: Database,
                 vocabulary: SchemaVocabulary | None = None,
                 min_anchor_support: int = 5,
                 min_fragment_support: int = 3,
                 max_rollup_links: int = 3):
        self.database = database
        self.segmenter = QuerySegmenter(database, vocabulary)
        self.schema_graph = SchemaGraph(database.schema)
        self.min_anchor_support = min_anchor_support
        self.min_fragment_support = min_fragment_support
        self.max_rollup_links = max_rollup_links

    # -- analysis -------------------------------------------------------------------

    def schema_links(self, entries: list[tuple[str, int]],
                     ) -> dict[tuple[str, str], Counter]:
        """The annotated link structure: anchor (table, column) ->
        Counter of co-occurring :class:`SchemaLink`, frequency-weighted."""
        links: dict[tuple[str, str], Counter] = {}
        for query, frequency in entries:
            segmented = self.segmenter.segment(query)
            anchors = segmented.instance_entities()
            if not anchors:
                continue
            targets = self._link_targets(segmented)
            for anchor in anchors:
                assert anchor.table is not None and anchor.column is not None
                key = (anchor.table, anchor.column)
                counter = links.setdefault(key, Counter())
                counter["__support__"] += frequency
                for target in targets:
                    if target.table == anchor.table and target.info_type is None:
                        continue  # self-reference carries no join signal
                    counter[target] += frequency
                # Co-occurring instance entities of other tables also link.
                for other in anchors:
                    if other is anchor or other.table == anchor.table:
                        continue
                    counter[SchemaLink(other.table)] += frequency
        return links

    def _link_targets(self, segmented) -> list[SchemaLink]:
        targets: list[SchemaLink] = []
        for segment in segmented.attributes():
            ref = segment.attribute
            assert ref is not None
            if ref.aggregate or ref.table is None:
                continue
            targets.append(SchemaLink(ref.table, ref.info_type))
        for segment in segmented.dimension_entities():
            assert segment.table is not None
            targets.append(SchemaLink(segment.table))
        return targets

    # -- derivation --------------------------------------------------------------------

    def derive(self, entries: list[tuple[str, int]]) -> list[QunitDefinition]:
        """Rollup + fragment definitions for every supported anchor."""
        links = self.schema_links(entries)
        definitions: list[QunitDefinition] = []
        for (table, column), counter in sorted(links.items()):
            support = counter["__support__"]
            if support < self.min_anchor_support:
                continue
            ranked = [
                (link, weight) for link, weight in counter.most_common()
                if link != "__support__"
            ]
            rollup = self._rollup_definition(table, column, ranked, support)
            if rollup is not None:
                definitions.append(rollup)
            for link, weight in ranked:
                if weight < self.min_fragment_support:
                    continue
                fragment = self._fragment_definition(table, column, link, weight,
                                                     support)
                if fragment is not None:
                    definitions.append(fragment)
        if not definitions:
            raise DerivationError(
                "query-log rollup produced no definitions; is the log empty "
                "or below the support thresholds?"
            )
        return definitions

    def _rollup_definition(self, table: str, column: str,
                           ranked: list[tuple[SchemaLink, int]],
                           support: int) -> QunitDefinition | None:
        top = ranked[: self.max_rollup_links]
        tables = []
        info_types = []
        keywords = [table]
        for link, _weight in top:
            if link.table not in tables:
                tables.append(link.table)
            if link.info_type:
                info_types.append(link.info_type)
                keywords.append(link.info_type)
            keywords.append(link.table)
        extra_where = self._info_filter(tables, info_types)
        if extra_where and "info_type" not in tables:
            tables.append("info_type")  # the filter references info_type.name
        try:
            sql = build_join_sql(self.schema_graph, table, tables,
                                 binder_column=column, extra_where=extra_where)
        except DerivationError:
            return None
        return QunitDefinition(
            name=f"{table}_{column}_rollup",
            description=(
                f"Rollup qunit for underspecified {table}.{column} queries; "
                f"aggregates the top specializations "
                f"{[link.label() for link, _ in top]} (log support {support})."
            ),
            base_sql=sql,
            binders=(ParamBinder("x", table, column),),
            keywords=tuple(dict.fromkeys(keywords)),
            utility=min(1.0, 0.5 + support / (support + 50.0)),
            source="query_log",
        )

    def _fragment_definition(self, table: str, column: str, link: SchemaLink,
                             weight: int, support: int) -> QunitDefinition | None:
        extra_where = self._info_filter([link.table],
                                        [link.info_type] if link.info_type else [])
        join_tables = [link.table]
        if extra_where:
            join_tables.append("info_type")  # the filter references info_type.name
        try:
            sql = build_join_sql(self.schema_graph, table, join_tables,
                                 binder_column=column, extra_where=extra_where)
        except DerivationError:
            return None
        keywords = [table, link.table]
        if link.info_type:
            keywords.append(link.info_type)
        return QunitDefinition(
            name=f"{table}_{column}_{link.label().replace(':', '_')}",
            description=(
                f"Log-derived fragment: {table}.{column} with {link.label()} "
                f"(link weight {weight}/{support})."
            ),
            base_sql=sql,
            binders=(ParamBinder("x", table, column),),
            keywords=tuple(dict.fromkeys(keywords)),
            utility=min(1.0, weight / (support + 1.0) + 0.2),
            source="query_log",
        )

    def _info_filter(self, tables: list[str], info_types: list[str]) -> list[str]:
        """WHERE clauses narrowing info fact tables to the seen info types."""
        if not info_types:
            return []
        unique = sorted(set(info_types))
        quoted = ", ".join(f"'{value}'" for value in unique)
        if any(table in ("movie_info", "person_info") for table in tables):
            return [f"info_type.name IN ({quoted})"]
        return []

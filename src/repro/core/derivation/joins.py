"""Shared helper: generate join SQL from a set of tables to connect.

Both automated derivers (schema+data and query-log rollup) need to turn
"anchor table plus these neighbor tables" into a base expression.  This
module walks the schema graph, collects the junctions needed to connect
the tables, and emits the FROM/WHERE clauses.
"""

from __future__ import annotations

from repro.errors import DerivationError
from repro.graph.schema_graph import SchemaGraph

__all__ = ["build_join_sql"]


def build_join_sql(schema_graph: SchemaGraph, anchor: str, others: list[str],
                   binder_column: str | None = None,
                   param: str = "x",
                   extra_where: list[str] | None = None) -> str:
    """SELECT * over the join of ``anchor`` with ``others``.

    ``binder_column`` adds ``anchor.binder_column = "$param"``.
    ``extra_where`` clauses are appended verbatim (AND-combined).
    Raises :class:`DerivationError` when a table cannot be connected.
    """
    from repro.errors import PlanError

    try:
        tables = schema_graph.join_plan(
            [anchor] + [t for t in others if t != anchor]
        )
    except PlanError as exc:
        raise DerivationError(str(exc)) from exc
    if anchor not in tables:
        raise DerivationError(f"anchor {anchor!r} missing from join plan")

    conditions: list[str] = []
    connected = [tables[0]]
    for table in tables[1:]:
        condition = _condition_to_any(schema_graph, table, connected)
        if condition is None:
            raise DerivationError(
                f"cannot connect table {table!r} to {connected} via foreign keys"
            )
        conditions.append(condition)
        connected.append(table)

    where_parts = list(conditions)
    if binder_column is not None:
        where_parts.append(f'{anchor}.{binder_column} = "${param}"')
    where_parts.extend(extra_where or [])

    sql = f"SELECT * FROM {', '.join(tables)}"
    if where_parts:
        sql += f" WHERE {' AND '.join(where_parts)}"
    return sql


def _condition_to_any(schema_graph: SchemaGraph, table: str,
                      connected: list[str]) -> str | None:
    for anchor in connected:
        fks = schema_graph.edges_between(table, anchor)
        if not fks:
            continue
        fk = fks[0]
        # Determine direction: fk lives on one of the two tables.
        if schema_graph.schema.table(table).foreign_key_for(fk.column) is fk:
            return f"{table}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
        return f"{anchor}.{fk.column} = {fk.ref_table}.{fk.ref_column}"
    return None

"""Qunit derivation strategies (Sec. 4 of the paper).

Four ways to obtain qunit definitions for a database:

* :func:`~repro.core.derivation.expert.imdb_expert_qunits` — manual expert
  identification ("likely to be superior to anything automated"), mirroring
  the page types of imdb.com exactly as the paper's "Human" system did;
* :class:`~repro.core.derivation.schema_data.SchemaDataDeriver` — Sec. 4.1:
  top-k1 entities by queriability, each expanded with its top-k2 neighbors;
* :class:`~repro.core.derivation.query_log.QueryLogDeriver` — Sec. 4.2:
  query rollup over an entity-annotated search log;
* :class:`~repro.core.derivation.external.ExternalEvidenceDeriver` —
  Sec. 4.3: type signatures mined from published pages.
"""

from repro.core.derivation.expert import imdb_expert_qunits
from repro.core.derivation.external import ExternalEvidenceDeriver
from repro.core.derivation.forms import FormBasedDeriver
from repro.core.derivation.query_log import QueryLogDeriver
from repro.core.derivation.schema_data import SchemaDataDeriver

__all__ = [
    "imdb_expert_qunits",
    "SchemaDataDeriver",
    "QueryLogDeriver",
    "ExternalEvidenceDeriver",
    "FormBasedDeriver",
]

"""Forms-based qunit derivation.

Sec. 4 of the paper: "If a forms-based database interface has been
designed, the set of possible returned results constitute a good
human-specified set of qunits."  The paper's [15]/[16] (Jayapandian &
Jagadish) show forms themselves can be generated automatically from
queriability.  Composing the two ideas gives a fifth derivation source:

1. **generate forms** the way the form-generation papers do — one form per
   highly queriable entity, whose input field is the entity's most
   selective searchable attribute and whose *result section* shows the
   entity plus its most queriable related entities (one form per relation,
   since a form's result table is a single join path, not a star join);
2. **read each form's result shape off as a qunit definition** — the form's
   input field becomes the binder, the result section the base expression.

The practical difference from :class:`SchemaDataDeriver` is granularity:
forms yield one *narrow* qunit per (entity, relation) pair — mirroring how
form interfaces dedicate a page to each task — instead of one wide
profile join, so form-derived sets behave like a poor man's expert set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.derivation.joins import build_join_sql
from repro.core.derivation.schema_data import SchemaDataDeriver
from repro.core.qunit import ParamBinder, QunitDefinition
from repro.errors import DerivationError
from repro.relational.database import Database

__all__ = ["GeneratedForm", "FormBasedDeriver"]


@dataclass(frozen=True)
class GeneratedForm:
    """One auto-generated form: input field + result section."""

    name: str
    entity: str
    input_column: str
    result_tables: tuple[str, ...]

    def describe(self) -> str:
        results = ", ".join(self.result_tables) or self.entity
        return (f"form {self.name!r}: search {self.entity} by "
                f"{self.input_column}; results show {results}")


class FormBasedDeriver:
    """Generates forms from queriability, then qunits from the forms."""

    def __init__(self, database: Database, k1: int = 4,
                 relations_per_entity: int = 3):
        if k1 <= 0 or relations_per_entity < 0:
            raise DerivationError(
                f"k1 must be > 0 and relations_per_entity >= 0, got "
                f"{k1}/{relations_per_entity}"
            )
        self.database = database
        self.k1 = k1
        self.relations_per_entity = relations_per_entity
        # Reuse the queriability machinery (anchors, binder choice,
        # participation-weighted neighbors) from the schema+data deriver.
        self._schema_data = SchemaDataDeriver(database, k1=k1,
                                              k2=relations_per_entity)

    # -- forms ----------------------------------------------------------------------

    def generate_forms(self) -> list[GeneratedForm]:
        """The forms a Jayapandian-style generator would emit."""
        forms: list[GeneratedForm] = []
        for entity in self._schema_data._anchor_entities():
            anchor = entity.table
            input_column = self._schema_data._binder_column(anchor)
            if input_column is None:
                continue
            # The entity's own detail form.
            forms.append(GeneratedForm(
                name=f"{anchor}_detail_form",
                entity=anchor,
                input_column=input_column,
                result_tables=(),
            ))
            # One relation form per strong neighbor.
            neighbors = self._schema_data.ranked_neighbors(anchor)
            for neighbor, score in neighbors[: self.relations_per_entity]:
                if score <= 0:
                    continue
                forms.append(GeneratedForm(
                    name=f"{anchor}_{neighbor}_form",
                    entity=anchor,
                    input_column=input_column,
                    result_tables=(neighbor,),
                ))
        if not forms:
            raise DerivationError(
                "form generation produced nothing; does the schema have "
                "searchable entity tables?"
            )
        return forms

    # -- qunits ------------------------------------------------------------------------

    def derive(self) -> list[QunitDefinition]:
        """One qunit definition per generated form."""
        definitions: list[QunitDefinition] = []
        for form in self.generate_forms():
            definition = self._definition_for_form(form)
            if definition is not None:
                definitions.append(definition)
        if not definitions:
            raise DerivationError("no form yielded an executable qunit")
        return definitions

    def _definition_for_form(self, form: GeneratedForm) -> QunitDefinition | None:
        try:
            sql = build_join_sql(
                self._schema_data.queriability.schema_graph,
                form.entity, list(form.result_tables),
                binder_column=form.input_column,
            )
        except DerivationError:
            return None
        keywords = [form.entity, *form.result_tables]
        return QunitDefinition(
            name=f"{form.name}_qunit",
            description=f"Derived from generated form: {form.describe()}",
            base_sql=sql,
            binders=(ParamBinder("x", form.entity, form.input_column),),
            keywords=tuple(dict.fromkeys(keywords)),
            source="forms",
        )

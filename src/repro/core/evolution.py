"""Qunit evolution over time (the paper's Sec. 7 future work).

"We expect to deal with qunit evolution over time as user interests mutate
during the life of a database system."

This module implements that: a :class:`QunitEvolutionTracker` consumes the
query log in epochs (say, one per month), re-derives rollup qunits per
epoch, and reports how the qunit set drifts — definitions appearing,
disappearing, and changing utility as demand moves.  Utilities are smoothed
exponentially so a single noisy epoch doesn't thrash the collection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.derivation.query_log import QueryLogDeriver
from repro.core.qunit import QunitDefinition
from repro.core.utility import UtilityModel
from repro.datasets.querylog.analysis import QueryLogAnalyzer
from repro.errors import DerivationError
from repro.relational.database import Database

__all__ = ["EpochReport", "QunitEvolutionTracker"]


@dataclass(frozen=True)
class EpochReport:
    """What changed in one epoch."""

    epoch: int
    added: tuple[str, ...]
    removed: tuple[str, ...]
    utilities: tuple[tuple[str, float], ...]

    def utility_of(self, name: str) -> float:
        for definition_name, utility in self.utilities:
            if definition_name == name:
                return utility
        raise KeyError(f"no definition {name!r} in epoch {self.epoch}")

    @property
    def churn(self) -> int:
        return len(self.added) + len(self.removed)


class QunitEvolutionTracker:
    """Maintains an evolving qunit set across query-log epochs."""

    def __init__(self, database: Database, smoothing: float = 0.5,
                 drop_below: float = 0.05,
                 deriver: QueryLogDeriver | None = None):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if drop_below < 0:
            raise ValueError("drop_below must be non-negative")
        self.database = database
        self.smoothing = smoothing
        self.drop_below = drop_below
        self.deriver = deriver or QueryLogDeriver(database)
        self.utility_model = UtilityModel(database)
        self.analyzer = QueryLogAnalyzer(database)
        self._definitions: dict[str, QunitDefinition] = {}
        self._utilities: dict[str, float] = {}
        self._epoch = 0
        self.reports: list[EpochReport] = []

    # -- state ---------------------------------------------------------------------

    @property
    def definitions(self) -> list[QunitDefinition]:
        """The current qunit set, utility-ordered (best first)."""
        ranked = sorted(self._definitions.values(),
                        key=lambda d: (-self._utilities[d.name], d.name))
        return [d.with_utility(self._utilities[d.name]) for d in ranked]

    def utility(self, name: str) -> float:
        return self._utilities[name]

    # -- evolution -------------------------------------------------------------------

    def observe_epoch(self, entries: list[tuple[str, int]]) -> EpochReport:
        """Fold one epoch of (query, frequency) demand into the qunit set."""
        self._epoch += 1
        try:
            derived = self.deriver.derive(entries)
        except DerivationError:
            derived = []
        template_frequencies: dict[str, int] = {}
        for query, frequency in entries:
            template = self.analyzer.template(query)
            template_frequencies[template] = (
                template_frequencies.get(template, 0) + frequency
            )

        fresh_utilities = {
            definition.name: self.utility_model.score(definition,
                                                      template_frequencies)
            for definition in derived
        }
        fresh_definitions = {definition.name: definition
                             for definition in derived}

        added: list[str] = []
        removed: list[str] = []

        # New definitions enter at their fresh utility.
        for name, definition in fresh_definitions.items():
            if name not in self._definitions:
                added.append(name)
                self._definitions[name] = definition
                self._utilities[name] = fresh_utilities[name]

        # Existing definitions smooth toward the epoch's demand; absent
        # definitions decay toward zero at the same rate.
        for name in list(self._definitions):
            target = fresh_utilities.get(name, 0.0)
            previous = self._utilities[name]
            updated = ((1.0 - self.smoothing) * previous
                       + self.smoothing * target)
            self._utilities[name] = updated
            if updated < self.drop_below:
                removed.append(name)
                del self._definitions[name]
                del self._utilities[name]

        report = EpochReport(
            epoch=self._epoch,
            added=tuple(sorted(added)),
            removed=tuple(sorted(removed)),
            utilities=tuple(sorted(self._utilities.items())),
        )
        self.reports.append(report)
        return report

    # -- analysis ---------------------------------------------------------------------

    def trajectory(self, name: str) -> list[float]:
        """The utility of one definition across all observed epochs
        (0.0 where it did not exist)."""
        values = []
        for report in self.reports:
            try:
                values.append(report.utility_of(name))
            except KeyError:
                values.append(0.0)
        return values

    def total_churn(self) -> int:
        return sum(report.churn for report in self.reports)

"""Qunit utility: "the importance of a qunit to a user query, in the
context of the overall intuitive organization of the database" (Sec. 2).

The paper approximates this subjective quantity with objective surrogates.
We combine two:

* **structural utility** — how queriable the definition's schema footprint
  is (mean entity queriability of its tables, junctions excluded);
* **demand utility** — the frequency-weighted fraction of a query log
  whose typed template this definition covers (available only when a log
  is supplied).

`UtilityModel.assign` returns copies of the definitions with their
``utility`` field populated; search uses utility to break ties between
definitions that match a query equally well.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.qunit import QunitDefinition
from repro.graph.queriability import QueriabilityModel
from repro.relational.database import Database
from repro.utils.text import normalize

__all__ = ["UtilityModel"]


class UtilityModel:
    """Scores qunit definitions for one database (and optional query log)."""

    def __init__(self, database: Database, structural_weight: float = 0.5):
        if not 0.0 <= structural_weight <= 1.0:
            raise ValueError(
                f"structural_weight must be in [0, 1], got {structural_weight}"
            )
        self.database = database
        self.structural_weight = structural_weight
        self.queriability = QueriabilityModel(database)

    # -- components -------------------------------------------------------------

    def structural_utility(self, definition: QunitDefinition) -> float:
        """Mean entity queriability over the definition's non-junction tables."""
        tables = [
            table for table in definition.tables()
            if not self.queriability.schema_graph.is_junction(table)
        ]
        if not tables:
            return 0.0
        scores = [self.queriability.entity(table).score for table in tables]
        return sum(scores) / len(scores)

    def demand_utility(self, definition: QunitDefinition,
                       template_frequencies: dict[str, int]) -> float:
        """Share of log demand whose template terms this definition covers.

        ``template_frequencies`` maps typed templates (e.g.
        ``"[movie.title] cast"``) to their log frequency; a definition
        covers a template when every non-entity term of the template
        appears in the definition's schema vocabulary.
        """
        if not template_frequencies:
            return 0.0
        covered = 0
        total = 0
        vocabulary = definition.schema_terms()
        definition_tables = set(definition.tables())
        for template, frequency in template_frequencies.items():
            total += frequency
            placeholders = [term for term in template.split()
                            if term.startswith("[") and term.endswith("]")]
            structural = [term for term in template.split()
                          if not (term.startswith("[") and term.endswith("]"))]
            entity_tables = {
                term[1:-1].split(".")[0] for term in placeholders
                if "." in term
            }
            if structural:
                tokens = [token for term in structural
                          for token in normalize(term).split()]
                words_known = tokens and all(token in vocabulary
                                             for token in tokens)
                if words_known and entity_tables <= definition_tables:
                    covered += frequency
            elif entity_tables and entity_tables <= definition_tables:
                # A bare-entity template is demand for the entity's profile:
                # credit definitions anchored on that entity table.
                covered += frequency
        return covered / total if total else 0.0

    # -- combined ------------------------------------------------------------------

    def score(self, definition: QunitDefinition,
              template_frequencies: dict[str, int] | None = None) -> float:
        structural = self.structural_utility(definition)
        if not template_frequencies:
            return structural
        demand = self.demand_utility(definition, template_frequencies)
        w = self.structural_weight
        return w * structural + (1.0 - w) * demand

    def assign(self, definitions: Iterable[QunitDefinition],
               template_frequencies: dict[str, int] | None = None,
               ) -> list[QunitDefinition]:
        """Return definitions with ``utility`` populated, best first."""
        scored = [
            definition.with_utility(self.score(definition, template_frequencies))
            for definition in definitions
        ]
        scored.sort(key=lambda d: (-d.utility, d.name))
        return scored

"""The qunit search engine: segmentation → matching → IR ranking.

This is Figure 1 of the paper end to end: the typed query selects qunit
definitions; instances of the winning definitions are ranked (fully-bound
matches materialize directly; partially-bound ones fall back to BM25 over
the definition's instance documents); and whenever structural matching
leaves the result list short — including producing nothing at all — plain
IR retrieval over the whole flat instance collection backfills the
remainder — the database is, after all, "nothing more than a collection of
independent qunits" to the front end.

Retrieval inside the pipeline rides the top-k fast path (see
:mod:`repro.ir.topk`): the collection hands the engine cached searchers
whose snapshots, score bounds, and LRU result caches persist across
queries and across :meth:`QunitSearchEngine.search_many` batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.answer import Answer
from repro.core.collection import QunitCollection
from repro.core.search.matcher import DefinitionMatch, QunitMatcher
from repro.core.search.segmentation import (
    QuerySegmenter,
    SchemaVocabulary,
    SegmentedQuery,
)
from repro.ir.scoring import Bm25Scorer, Scorer

__all__ = ["QunitSearchEngine", "SearchExplanation"]


@dataclass(frozen=True)
class SearchExplanation:
    """Pipeline trace for one query (used by examples and debugging)."""

    query: str
    template: str
    query_class: str
    candidates: tuple[tuple[str, float], ...]   # (definition, match score)
    answers: tuple[str, ...]                    # instance ids, ranked


class QunitSearchEngine:
    """Search over one qunit collection.

    ``flavor`` names the derivation behind the collection ("expert",
    "schema_data", ...) and brands the answers' ``system`` field so the
    evaluation harness can compare engines side by side.
    """

    MIN_MATCH_SCORE = 0.15

    def __init__(self, collection: QunitCollection, flavor: str = "qunits",
                 vocabulary: SchemaVocabulary | None = None,
                 scorer: Scorer | None = None):
        self.collection = collection
        self.database = collection.database
        self.flavor = flavor
        self.segmenter = QuerySegmenter(self.database, vocabulary)
        self.matcher = QunitMatcher(self.database)
        self.scorer = scorer or Bm25Scorer()

    @property
    def system_name(self) -> str:
        return f"qunits-{self.flavor}" if self.flavor != "qunits" else "qunits"

    # -- public API ---------------------------------------------------------------

    def search(self, query: str, limit: int = 5) -> list[Answer]:
        answers, _explanation = self._run(query, limit)
        return answers

    def search_many(self, queries: list[str], limit: int = 5) -> list[list[Answer]]:
        """Answer a batch of queries, in input order.

        The batch shares the collection's cached searchers, so index
        snapshots, per-term score bounds, and result caches built for one
        query are reused by the rest — markedly cheaper than constructing
        the pipeline per query when queries overlap in vocabulary.
        """
        return [self.search(query, limit) for query in queries]

    def best(self, query: str) -> Answer:
        answers = self.search(query, limit=1)
        return answers[0] if answers else Answer.empty(self.system_name)

    def save(self, path) -> None:
        """Persist the engine's derived collection (definitions + index
        snapshots) to a directory; see :meth:`QunitCollection.save`."""
        self.collection.save(path)

    @classmethod
    def load(cls, database, path, flavor: str = "qunits",
             vocabulary: SchemaVocabulary | None = None,
             scorer: Scorer | None = None, shards: int = 0,
             parallelism: str = "thread",
             strategy: str = "auto") -> "QunitSearchEngine":
        """An engine over a collection restored from :meth:`save` output.

        Cold start skips derivation, materialization, and indexing; the
        loaded snapshots serve retrieval directly, optionally sharded
        (``shards``/``parallelism`` — see :mod:`repro.ir.shard`) and under
        any retrieval strategy (``strategy`` — see :mod:`repro.ir.wand`).
        """
        collection = QunitCollection.load(database, path, shards=shards,
                                          parallelism=parallelism,
                                          strategy=strategy)
        return cls(collection, flavor=flavor, vocabulary=vocabulary,
                   scorer=scorer)

    def explain(self, query: str, limit: int = 5) -> SearchExplanation:
        _answers, explanation = self._run(query, limit)
        return explanation

    def search_with_explanation(
            self, query: str, limit: int = 5,
    ) -> tuple[list[Answer], SearchExplanation]:
        """Answers and the pipeline trace in one pass (the CLI's path —
        running :meth:`search` and :meth:`explain` separately would pay
        for segmentation, matching, and ranking twice)."""
        return self._run(query, limit)

    def segment(self, query: str) -> SegmentedQuery:
        return self.segmenter.segment(query)

    # -- pipeline -----------------------------------------------------------------

    def _run(self, query: str, limit: int) -> tuple[list[Answer], SearchExplanation]:
        segmented = self.segmenter.segment(query)
        definitions = list(self.collection.definitions.values())
        matches = self.matcher.match(segmented, definitions)

        answers: list[Answer] = []
        seen_instances: set[str] = set()
        for match in matches:
            if len(answers) >= limit:
                break
            if match.score < self.MIN_MATCH_SCORE:
                break
            answers.extend(
                self._answers_for_match(match, query, limit - len(answers),
                                        seen_instances)
            )

        # Structural matches may under-fill the result list (few instances,
        # heavy dedup); backfill the remainder from flat IR retrieval so a
        # query with one fully-bound match still returns `limit` answers.
        if len(answers) < limit:
            answers.extend(
                self._fallback(query, limit - len(answers), seen_instances)
            )

        # Mixed text + structure (the paper's Sec. 7 extension): free-text
        # residue that the structural pipeline could not type re-ranks the
        # candidate answers by how well their *content* covers it.
        answers = self._apply_freetext_rerank(segmented, answers, limit)

        explanation = SearchExplanation(
            query=query,
            template=segmented.template(),
            query_class=segmented.query_class(),
            candidates=tuple(
                (match.definition.name, round(match.score, 4))
                for match in matches[:5]
            ),
            answers=tuple(
                str(answer.meta("instance_id", "")) for answer in answers
            ),
        )
        return answers, explanation

    def _answers_for_match(self, match: DefinitionMatch, query: str,
                           budget: int, seen: set[str]) -> list[Answer]:
        if budget <= 0:
            return []
        definition = match.definition
        if match.fully_bound:
            instance = self.collection.materialize(
                definition.name, match.bound_params
            )
            if instance.is_empty or instance.instance_id in seen:
                return []
            seen.add(instance.instance_id)
            return [self._brand(instance.to_answer(score=match.score), instance)]
        # Partially bound: rank this definition's instances by IR score.
        searcher = self.collection.definition_searcher(definition.name, self.scorer)
        answers: list[Answer] = []
        for hit in self._fresh_hits(searcher, query, budget, seen):
            seen.add(hit.doc_id)
            instance = self.collection.instance(hit.doc_id)
            combined = match.score * (1.0 - 1.0 / (2.0 + hit.score))
            answers.append(self._brand(instance.to_answer(score=combined), instance))
        return answers

    def _fresh_hits(self, searcher, query: str, budget: int, seen: set[str]):
        """The top ``budget`` hits whose ids are not in ``seen``.

        Fetches with headroom and keeps widening geometrically until the
        budget is met or the index is exhausted, so a pile-up of
        already-seen documents at the top of the ranking can never starve
        lower-ranked fresh hits out of the result list.
        """
        if budget <= 0:
            return []
        fetch = budget + len(seen)
        while True:
            hits = searcher.search(query, limit=fetch)
            fresh = [hit for hit in hits if hit.doc_id not in seen]
            if len(fresh) >= budget or len(hits) < fetch:
                return fresh[:budget]
            fetch *= 2

    def _apply_freetext_rerank(self, segmented: SegmentedQuery,
                               answers: list[Answer],
                               limit: int) -> list[Answer]:
        free_terms: list[str] = []
        for segment in segmented.freetext():
            for token in segment.tokens:
                free_terms.extend(self.collection.analyzer.tokens(token))
        if not free_terms or not answers:
            return answers
        from dataclasses import replace

        unique_terms = set(free_terms)
        adjusted: list[Answer] = []
        for answer in answers:
            text_terms = set(self.collection.analyzer.tokens(answer.text))
            coverage = len(unique_terms & text_terms) / len(unique_terms)
            adjusted.append(replace(
                answer, score=answer.score * (0.55 + 0.45 * coverage)))
        adjusted.sort(key=lambda a: (-a.score, str(a.meta("instance_id", ""))))
        return adjusted[:limit]

    def _fallback(self, query: str, limit: int, seen: set[str]) -> list[Answer]:
        """Flat IR retrieval over all instances (no/partial structural match)."""
        searcher = self.collection.searcher(self.scorer)
        answers: list[Answer] = []
        for hit in self._fresh_hits(searcher, query, limit, seen):
            seen.add(hit.doc_id)
            instance = self.collection.instance(hit.doc_id)
            answers.append(self._brand(instance.to_answer(score=hit.score), instance))
        return answers

    def _brand(self, answer: Answer, instance) -> Answer:
        from dataclasses import replace

        provenance = answer.provenance + (("instance_id", instance.instance_id),)
        return replace(answer, system=self.system_name, provenance=provenance)

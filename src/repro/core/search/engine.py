"""The qunit search engine: a façade over the staged query pipeline.

This is Figure 1 of the paper end to end: the typed query selects qunit
definitions; instances of the winning definitions are ranked (fully-bound
matches materialize directly; partially-bound ones fall back to BM25 over
the definition's instance documents); and whenever structural matching
leaves the result list short — including producing nothing at all — plain
IR retrieval over the whole flat instance collection backfills the
remainder — the database is, after all, "nothing more than a collection of
independent qunits" to the front end.

Since the staged-pipeline refactor the engine itself is thin: every query
— single or batch — runs through one :class:`~repro.serve.pipeline.
QueryPipeline` (segment → match → plan → execute → assemble, see
:mod:`repro.serve`).  Batches are served batch-natively: N queries are
segmented and matched together, and their retrieval calls are grouped per
target index so the sharded executors receive real batches
(:meth:`~repro.ir.retrieval.Searcher.search_many` /
:meth:`~repro.ir.shard.ShardedTopK.topk_many`) instead of per-query
dispatches.  :meth:`QunitSearchEngine.search_many` is answer- and
order-identical to mapping :meth:`QunitSearchEngine.search`
(property-tested in ``tests/test_property_based.py``); it is just faster.

Retrieval inside the pipeline rides the top-k fast path (see
:mod:`repro.ir.topk`): the collection hands the pipeline pooled searchers
(:class:`~repro.serve.pool.SearcherPool`) whose snapshots, score bounds,
and LRU result caches persist across queries and batches.  Engine knobs —
the match threshold, the backfill budget, and the optional result-cache /
admission middleware — live in :class:`~repro.serve.pipeline.EngineConfig`.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

from repro.answer import Answer
from repro.core.collection import QunitCollection
from repro.core.search.matcher import QunitMatcher
from repro.core.search.segmentation import (
    QuerySegmenter,
    SchemaVocabulary,
    SegmentedQuery,
)
from repro.ir.scoring import Bm25Scorer, Scorer
from repro.serve.api import SearchRequest, SearchResponse
from repro.serve.explain import SearchExplanation, StageTiming
from repro.serve.pipeline import EngineConfig, QueryContext, QueryPipeline

__all__ = ["QunitSearchEngine", "SearchRequest", "SearchResponse",
           "SearchExplanation", "StageTiming", "EngineConfig"]


class QunitSearchEngine:
    """Search over one qunit collection.

    ``flavor`` names the derivation behind the collection ("expert",
    "schema_data", ...) and brands the answers' ``system`` field so the
    evaluation harness can compare engines side by side.  ``config``
    tunes the serving pipeline (:class:`~repro.serve.pipeline.
    EngineConfig`); when omitted, the defaults reproduce the historical
    behavior — in particular a match threshold of
    :attr:`MIN_MATCH_SCORE` and backfill up to the result limit.
    """

    #: Default match threshold.  Read ONCE at construction into the
    #: engine's ``EngineConfig`` — subclasses may override the class
    #: attribute, but changing it on a live instance no longer affects
    #: queries (the pre-pipeline engine read it per query); configure a
    #: custom threshold via ``EngineConfig(min_match_score=...)``.
    MIN_MATCH_SCORE = 0.15

    def __init__(self, collection: QunitCollection, flavor: str = "qunits",
                 vocabulary: SchemaVocabulary | None = None,
                 scorer: Scorer | None = None,
                 config: EngineConfig | None = None):
        self.collection = collection
        self.database = collection.database
        self.flavor = flavor
        self.segmenter = QuerySegmenter(self.database, vocabulary)
        self.matcher = QunitMatcher(self.database)
        self.scorer = scorer or Bm25Scorer()
        self.config = config if config is not None else \
            EngineConfig(min_match_score=self.MIN_MATCH_SCORE)
        self.pipeline = QueryPipeline(
            collection=collection, segmenter=self.segmenter,
            matcher=self.matcher, scorer=self.scorer, config=self.config,
            system_name=self.system_name)

    @property
    def system_name(self) -> str:
        return f"qunits-{self.flavor}" if self.flavor != "qunits" else "qunits"

    # -- public API ---------------------------------------------------------------

    def execute(self, requests: Sequence[SearchRequest],
                ) -> list[SearchResponse]:
        """Serve a batch of typed requests — THE core entry point.

        The whole batch runs through the staged pipeline together:
        segmented together, matched together, and with retrieval calls
        grouped per target index so sharded executors see one task per
        shard per round instead of per query.  Each request keeps its
        own result limit and client id; responses come back in input
        order, answer-identical to serving each request alone
        (property-tested in ``tests/test_property_based.py``).

        The historical ``search``/``search_many``/
        ``search_with_explanation``/``search_many_with_explanations``
        methods are thin deprecated wrappers over this; the HTTP front
        end (:mod:`repro.serve.server`) and the CLI speak
        :class:`~repro.serve.api.SearchRequest` /
        :class:`~repro.serve.api.SearchResponse` natively.
        """
        contexts = [QueryContext(query=request.query, limit=request.limit,
                                 client_id=request.client_id,
                                 strategy=request.strategy)
                    for request in requests]
        finished = self.pipeline.run_contexts(contexts)
        responses = []
        for request, ctx in zip(requests, finished):
            explanation = ctx.explanation if request.explain else None
            timings = (ctx.explanation.stages
                       if ctx.explanation is not None else ())
            responses.append(SearchResponse(
                query=ctx.query, answers=tuple(ctx.answers),
                explanation=explanation, timings=timings,
                cached=ctx.served_from_cache, admitted=ctx.admitted,
                client_id=ctx.client_id))
        return responses

    def best(self, query: str) -> Answer:
        response = self.execute([SearchRequest(query=query, limit=1)])[0]
        return response.answers[0] if response.answers \
            else Answer.empty(self.system_name)

    # -- deprecated wrappers over execute() ---------------------------------------

    @staticmethod
    def _warn_deprecated(name: str) -> None:
        """One hard deprecation warning per legacy entry point."""
        warnings.warn(
            f"QunitSearchEngine.{name}() is deprecated; build "
            f"SearchRequest objects and call execute() instead",
            DeprecationWarning, stacklevel=3)

    def search(self, query: str, limit: int = 5) -> list[Answer]:
        """Deprecated — use :meth:`execute` with a
        :class:`~repro.serve.api.SearchRequest`."""
        self._warn_deprecated("search")
        return list(self.execute(
            [SearchRequest(query=query, limit=limit)])[0].answers)

    def search_many(self, queries: list[str], limit: int = 5) -> list[list[Answer]]:
        """Deprecated — use :meth:`execute` with a batch of
        :class:`~repro.serve.api.SearchRequest` objects (the batch
        semantics are identical: one pipeline run, grouped retrieval).
        """
        self._warn_deprecated("search_many")
        requests = [SearchRequest(query=query, limit=limit)
                    for query in queries]
        return [list(response.answers)
                for response in self.execute(requests)]

    def search_many_with_explanations(
            self, queries: list[str], limit: int = 5,
    ) -> list[tuple[list[Answer], SearchExplanation]]:
        """Deprecated — use :meth:`execute` with ``explain=True``
        requests; responses carry answers and the trace together."""
        self._warn_deprecated("search_many_with_explanations")
        requests = [SearchRequest(query=query, limit=limit, explain=True)
                    for query in queries]
        return [(list(response.answers), response.explanation)
                for response in self.execute(requests)]

    def save(self, path) -> None:
        """Persist the engine's derived collection (definitions + index
        snapshots) to a directory; see
        :meth:`~repro.core.store.CollectionStore.save` (a delta-journal
        append when ``path`` already holds a compatible generation)."""
        from repro.core.store import CollectionStore

        CollectionStore(path).save(self.collection)

    @classmethod
    def load(cls, database, path, flavor: str = "qunits",
             vocabulary: SchemaVocabulary | None = None,
             scorer: Scorer | None = None, shards: int = 0,
             parallelism: str = "serial",
             strategy: str = "auto",
             config: EngineConfig | None = None) -> "QunitSearchEngine":
        """An engine over a collection restored from :meth:`save` output.

        Cold start skips derivation, materialization, and indexing — and
        pins only the manifest plus snapshot headers up front
        (:class:`~repro.core.store.LoadOptions` with the default lazy
        pin): each snapshot mmaps on first query demand, so start-up
        cost no longer scales with definitions the traffic never
        touches.  Retrieval is optionally sharded
        (``shards``/``parallelism`` — see :mod:`repro.ir.shard`) and
        runs under any strategy (``strategy`` — see
        :mod:`repro.ir.wand`).
        """
        from repro.core.store import CollectionStore, LoadOptions

        collection = CollectionStore(path).load(database, LoadOptions(
            shards=shards, parallelism=parallelism, strategy=strategy))
        return cls(collection, flavor=flavor, vocabulary=vocabulary,
                   scorer=scorer, config=config)

    def explain(self, query: str, limit: int = 5) -> SearchExplanation:
        """The pipeline trace for one query (see :meth:`execute` with
        ``explain=True`` for answers and trace in one pass)."""
        return self.execute([SearchRequest(query=query, limit=limit,
                                           explain=True)])[0].explanation

    def search_with_explanation(
            self, query: str, limit: int = 5,
    ) -> tuple[list[Answer], SearchExplanation]:
        """Deprecated — use :meth:`execute` with an ``explain=True``
        request; the response carries answers and trace together."""
        self._warn_deprecated("search_with_explanation")
        response = self.execute([SearchRequest(query=query, limit=limit,
                                               explain=True)])[0]
        return list(response.answers), response.explanation

    def segment(self, query: str) -> SegmentedQuery:
        return self.segmenter.segment(query)

"""Matching typed queries to qunit definitions.

Implements the definition-selection half of Sec. 3: a segmented query like
``[movie.title] cast`` "has a very high overlap with the qunit definition
that involves a join between movie.name and cast".  Overlap is scored from
four ingredients:

* **signal recall** — how many of the query's schema signals (attribute
  words and dimension-entity values) the definition's footprint covers;
* **binding** — whether the query's instance entities bind the
  definition's parameters (an entity segment over ``person.name`` binds a
  ``$x`` declared on ``person.name``);
* **specificity** — definitions carrying many tables the query never asked
  for are slightly penalized (the "too much information" failure);
* **prior utility** — the Sec. 2 utility surrogate, dominant only for
  underspecified queries, where the paper wants the entity's rollup/profile
  qunit to win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.qunit import QunitDefinition
from repro.core.search.segmentation import Segment, SegmentedQuery
from repro.graph.schema_graph import SchemaGraph
from repro.relational.database import Database
from repro.utils.text import normalize

__all__ = ["DefinitionMatch", "QunitMatcher"]


@dataclass(frozen=True)
class DefinitionMatch:
    """A candidate definition with its match score and parameter bindings."""

    definition: QunitDefinition
    score: float
    bindings: tuple[tuple[str, object], ...]
    matched_signals: int
    total_signals: int

    @property
    def bound_params(self) -> dict[str, object]:
        return dict(self.bindings)

    @property
    def fully_bound(self) -> bool:
        return len(self.bindings) == len(self.definition.binders)


class QunitMatcher:
    """Scores every definition against a segmented query."""

    def __init__(self, database: Database):
        self.database = database
        self.schema_graph = SchemaGraph(database.schema)
        self._dimension_values: dict[str, frozenset[str]] = {}

    def match(self, query: SegmentedQuery,
              definitions: list[QunitDefinition],
              limit: int | None = None) -> list[DefinitionMatch]:
        """Ranked candidate definitions (best first, deterministic ties)."""
        matches = [self._score(query, definition) for definition in definitions]
        matches.sort(key=lambda m: (-m.score, m.definition.name))
        return matches[:limit] if limit is not None else matches

    def match_many(self, queries: list[SegmentedQuery],
                   definitions: list[QunitDefinition],
                   limit: int | None = None) -> list[list[DefinitionMatch]]:
        """Ranked candidates for a batch of typed queries, in input order.

        The batch entry point the staged query pipeline drives
        (:class:`~repro.serve.stages.MatchStage`): the matcher's
        dimension-value cache warms on the first query of a batch and
        serves every later one.
        """
        return [self.match(query, definitions, limit) for query in queries]

    # -- scoring -------------------------------------------------------------------

    def _score(self, query: SegmentedQuery,
               definition: QunitDefinition) -> DefinitionMatch:
        footprint = set(definition.tables())

        signals_present = bool(query.attributes() or query.dimension_entities())
        if not signals_present and not query.instance_entities():
            # Pure free text: nothing structural to match; retrieval falls
            # through to the flat IR index over all instances.
            return DefinitionMatch(definition=definition, score=0.0,
                                   bindings=(), matched_signals=0,
                                   total_signals=0)

        bindings = self._bind(query, definition)
        binder_count = len(definition.binders)
        if binder_count:
            binding_score = len(bindings) / binder_count
        else:
            # Parameter-free definitions bind trivially but only deserve
            # credit when the query has no instance entity to bind.
            binding_score = 1.0 if not query.instance_entities() else 0.3

        signals = query.attributes() + query.dimension_entities()
        weights = [
            self._signal_weight(signal, definition, footprint)
            for signal in signals
        ]
        matched = sum(1 for weight in weights if weight > 0.5)
        total_signals = len(signals)

        signaled_tables = self._signaled_tables(query, definition)
        extra = [
            table for table in footprint
            if table not in signaled_tables
            and not self.schema_graph.is_junction(table)
        ]
        specificity = 1.0 / (1.0 + len(extra))
        utility = max(0.0, min(1.0, definition.utility))

        if total_signals:
            recall = sum(weights) / total_signals
            score = (0.55 * recall + 0.25 * binding_score
                     + 0.10 * specificity + 0.10 * utility)
        else:
            score = 0.5 * binding_score + 0.5 * utility

        return DefinitionMatch(
            definition=definition,
            score=score,
            bindings=tuple(sorted(bindings.items())),
            matched_signals=matched,
            total_signals=total_signals,
        )

    def _bind(self, query: SegmentedQuery,
              definition: QunitDefinition) -> dict[str, object]:
        """Bind definition parameters from the query's entity segments."""
        bindings: dict[str, object] = {}
        used: set[int] = set()
        for binder in definition.binders:
            for index, segment in enumerate(query.entities()):
                if index in used:
                    continue
                if segment.table == binder.table and segment.column == binder.column:
                    bindings[binder.param] = segment.value
                    used.add(index)
                    break
        return bindings

    def _signal_weight(self, signal: Segment, definition: QunitDefinition,
                       footprint: set[str]) -> float:
        """How strongly one schema signal endorses a definition.

        1.0 — the definition *commits* to the signal via its **declared**
        keywords or a binder; 0.6 — the signal's table is merely joined
        into the footprint; low/0 — absent, or committed to a *different*
        value of the same dimension ("plot" qunit for a "box office" query).
        """
        keyword_text = normalize(" | ".join(definition.keywords))
        keywords = set(keyword_text.split())
        if signal.kind == "attribute":
            ref = signal.attribute
            assert ref is not None
            if ref.aggregate:
                markers = ("top", "chart", "charts", "ranking", "best", "highest")
                return 1.0 if any(m in keywords for m in markers) else 0.0
            if ref.table is None or ref.table not in footprint:
                return 0.0
            if ref.info_type is not None:
                # Info-typed signals need the definition to commit to that
                # info kind (derivers record it in keywords).
                return 1.0 if normalize(ref.info_type) in keyword_text else 0.2
            name_tokens = normalize(ref.name.replace(".", " ")).split()
            committed = any(token in keywords for token in name_tokens)
            return 1.0 if committed else 0.6
        # Dimension-entity value ("comedy", "actor", "box office").
        assert signal.table is not None
        if any(binder.table == signal.table and binder.column == signal.column
               for binder in definition.binders):
            return 1.0  # the value binds a parameter (e.g. genre pages)
        if signal.table not in footprint:
            return 0.0
        committed_values = self._committed(definition, signal.table, keyword_text)
        if committed_values is None:
            return 0.6  # joined in, no specific commitment
        value = normalize(str(signal.value))
        return 1.0 if value in committed_values else 0.1

    def _committed(self, definition: QunitDefinition, dimension_table: str,
                   keyword_text: str) -> frozenset[str] | None:
        """Values of a dimension table that the definition's keywords name.

        None = the definition names no value of this dimension (no
        commitment); otherwise the named subset.
        """
        values = self._dimension_value_set(dimension_table)
        mentioned = frozenset(v for v in values if v and v in keyword_text)
        return mentioned or None

    def _dimension_value_set(self, table_name: str) -> frozenset[str]:
        if table_name not in self._dimension_values:
            table = self.database.table(table_name)
            collected: set[str] = set()
            for column in table.schema.searchable_columns():
                for value in table.column_values(column.name):
                    if isinstance(value, str):
                        collected.add(normalize(value))
            self._dimension_values[table_name] = frozenset(collected)
        return self._dimension_values[table_name]

    def _signaled_tables(self, query: SegmentedQuery,
                         definition: QunitDefinition) -> set[str]:
        """Tables the query explicitly asks about (signals + bound anchors)."""
        tables: set[str] = set()
        for segment in query.entities():
            if segment.table:
                tables.add(segment.table)
        for segment in query.attributes():
            ref = segment.attribute
            if ref is not None and ref.table is not None:
                tables.add(ref.table)
                if ref.info_type is not None:
                    tables.add("info_type")
        for binder in definition.binders:
            tables.add(binder.table)
        # info tables come with their type dimension
        if "movie_info" in tables or "person_info" in tables:
            tables.add("info_type")
        return tables

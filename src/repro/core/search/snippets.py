"""Result snippets: the best query-focused window of an answer's text.

The paper's intro asks what the "snippets from a database search result"
should even be.  Under the qunit model the answer has a natural form: the
instance's rendered text is a document, so document snippeting applies
directly.  This module extracts the contiguous window with the densest
coverage of query terms, breaking ties toward the earliest window, and
highlights the matched terms.
"""

from __future__ import annotations

from repro.ir.analysis import Analyzer

__all__ = ["SnippetExtractor"]


class SnippetExtractor:
    """Extracts fixed-width word windows scored by query-term coverage."""

    def __init__(self, window: int = 24, analyzer: Analyzer | None = None,
                 highlight: str = "**"):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.analyzer = analyzer or Analyzer()
        self.highlight = highlight

    def snippet(self, text: str, query: str) -> str:
        """The best window of ``text`` for ``query`` (whole text if short).

        Matching is stem-aware (the analyzer's pipeline), highlighting
        marks the original word forms.  Ellipses mark truncation.
        """
        words = text.split()
        if not words:
            return ""
        query_terms = set(self.analyzer.tokens(query))

        def matches(word: str) -> bool:
            tokens = self.analyzer.tokens(word)
            return bool(tokens) and tokens[0] in query_terms

        flags = [matches(word) for word in words]
        if len(words) <= self.window:
            start, end = 0, len(words)
        else:
            # Distinct-term coverage per window, then raw hit count.
            best_start = 0
            best_key: tuple[int, int] = (-1, -1)
            for start in range(0, len(words) - self.window + 1):
                window_words = words[start:start + self.window]
                window_flags = flags[start:start + self.window]
                distinct = len({
                    self.analyzer.tokens(word)[0]
                    for word, flag in zip(window_words, window_flags)
                    if flag
                })
                hits = sum(window_flags)
                key = (distinct, hits)
                if key > best_key:
                    best_key = key
                    best_start = start
            start, end = best_start, best_start + self.window

        rendered = [
            f"{self.highlight}{word}{self.highlight}" if flag else word
            for word, flag in zip(words[start:end], flags[start:end])
        ]
        prefix = "... " if start > 0 else ""
        suffix = " ..." if end < len(words) else ""
        return prefix + " ".join(rendered) + suffix

    def coverage(self, text: str, query: str) -> float:
        """Fraction of distinct query terms present anywhere in the text."""
        query_terms = set(self.analyzer.tokens(query))
        if not query_terms:
            return 0.0
        text_terms = set(self.analyzer.tokens(text))
        return len(query_terms & text_terms) / len(query_terms)

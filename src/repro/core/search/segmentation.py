"""Query segmentation: typing keyword queries against the database.

Implements the paper's first search step: "Queries are first processed to
identify entities using standard query segmentation techniques" — here, a
greedy longest-overlap matcher against (a) the full values of searchable
columns (entities) and (b) a schema vocabulary of table/column names and
domain synonyms (attributes).  The output is a typed template such as
``[movie.title] cast`` for "star wars cast" — the representation both the
query-log analysis (Sec. 5.2) and qunit matching (Sec. 3) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.database import Database
from repro.utils.text import normalize

__all__ = [
    "AttributeRef",
    "Segment",
    "SegmentedQuery",
    "SchemaVocabulary",
    "QuerySegmenter",
    "movie_domain_vocabulary",
]

_AGGREGATE_MARKERS = frozenset({
    "highest", "lowest", "most", "best", "top", "worst", "largest",
    "biggest", "number", "count", "average",
})

_YEAR_RANGE = (1888, 2030)  # first film to a sane future bound


@dataclass(frozen=True)
class AttributeRef:
    """A schema element a query word can denote.

    ``name`` is the canonical label used in templates.  ``table``/``column``
    locate the element when it exists in the schema; ``info_type`` narrows
    ``movie_info``/``person_info`` to one info kind ("plot", "box office").
    ``aggregate`` marks complex-query markers ("highest", "top").  Elements
    with no schema mapping (``table=None``) type the query but cannot be
    answered from the database (the paper's "posters" column in Table 1).
    """

    name: str
    table: str | None = None
    column: str | None = None
    info_type: str | None = None
    aggregate: bool = False


@dataclass(frozen=True)
class Segment:
    """One typed span of the query."""

    kind: str                      # 'entity' | 'attribute' | 'freetext'
    tokens: tuple[str, ...]
    table: str | None = None       # entity: matched table
    column: str | None = None      # entity: matched column
    value: object | None = None    # entity: the matched value
    attribute: AttributeRef | None = None

    @property
    def text(self) -> str:
        return " ".join(self.tokens)

    @property
    def is_aggregate(self) -> bool:
        return self.attribute is not None and self.attribute.aggregate

    def placeholder(self) -> str:
        """Template rendering of the segment."""
        if self.kind == "entity":
            return f"[{self.table}.{self.column}]"
        if self.kind == "attribute":
            assert self.attribute is not None
            return self.attribute.name
        return "[freetext]"


@dataclass(frozen=True)
class SegmentedQuery:
    """A fully segmented query plus its typed template."""

    raw: str
    segments: tuple[Segment, ...]
    dimension_tables: frozenset[str] = frozenset()

    def template(self) -> str:
        parts: list[str] = []
        for segment in self.segments:
            placeholder = segment.placeholder()
            if placeholder == "[freetext]" and parts and parts[-1] == "[freetext]":
                continue  # collapse adjacent free text
            parts.append(placeholder)
        return " ".join(parts)

    # -- segment accessors ------------------------------------------------------

    def entities(self) -> list[Segment]:
        return [s for s in self.segments if s.kind == "entity"]

    def instance_entities(self) -> list[Segment]:
        """Entity segments over non-dimension tables (people, movies...)."""
        return [s for s in self.entities() if s.table not in self.dimension_tables]

    def dimension_entities(self) -> list[Segment]:
        """Entity segments over dimension tables (genre, role_type, ...)."""
        return [s for s in self.entities() if s.table in self.dimension_tables]

    def attributes(self) -> list[Segment]:
        return [s for s in self.segments if s.kind == "attribute"]

    def freetext(self) -> list[Segment]:
        return [s for s in self.segments if s.kind == "freetext"]

    # -- classification (Sec. 5.2 categories) --------------------------------------

    def query_class(self) -> str:
        """One of single_entity / entity_attribute / multi_entity /
        complex / attribute_only / freetext."""
        if any(s.is_aggregate for s in self.segments):
            return "complex"
        instance = self.instance_entities()
        schema_signals = self.attributes() + self.dimension_entities()
        if len(instance) >= 2:
            return "multi_entity"
        if len(instance) == 1 and not schema_signals and not self.freetext():
            return "single_entity"
        if len(instance) == 1 and schema_signals:
            return "entity_attribute"
        if len(instance) == 1:
            return "entity_freetext"
        if schema_signals:
            return "attribute_only"
        return "freetext"

    @property
    def is_underspecified(self) -> bool:
        """Single bare entity: could be specialized with more predicates."""
        return self.query_class() == "single_entity"


class SchemaVocabulary:
    """Phrase → :class:`AttributeRef` lookup for schema words and synonyms.

    Automatically includes every table name and every value-column name;
    domain synonym maps (see :func:`movie_domain_vocabulary`) extend it.
    """

    def __init__(self, database: Database,
                 synonyms: dict[str, AttributeRef] | None = None,
                 dimension_tables: frozenset[str] = frozenset()):
        self.database = database
        self.dimension_tables = dimension_tables
        self._refs: dict[str, AttributeRef] = {}
        self._max_phrase = 1
        for table in database.schema.tables:
            self._add(table.name, AttributeRef(name=table.name, table=table.name))
            for column in table.value_columns():
                ref = AttributeRef(name=f"{table.name}.{column.name}",
                                   table=table.name, column=column.name)
                self._add(column.name, ref)
        for marker in _AGGREGATE_MARKERS:
            self._add(marker, AttributeRef(name=f"[agg:{marker}]", aggregate=True))
        for phrase, ref in (synonyms or {}).items():
            self._add(phrase, ref)

    def _add(self, phrase: str, ref: AttributeRef) -> None:
        key = normalize(phrase).replace("_", " ")
        if not key:
            return
        self._refs[key] = ref
        self._max_phrase = max(self._max_phrase, len(key.split()))

    def lookup(self, tokens: tuple[str, ...]) -> AttributeRef | None:
        return self._refs.get(" ".join(tokens))

    @property
    def max_phrase_length(self) -> int:
        return self._max_phrase


def movie_domain_vocabulary(database: Database) -> SchemaVocabulary:
    """The schema vocabulary for the IMDb schema with domain synonyms.

    These synonyms encode how searchers say schema things ("ost" for
    soundtrack — straight from the paper's Table 1 query types).
    """
    a = AttributeRef
    synonyms = {
        "movies": a("movie", table="movie"),
        "film": a("movie", table="movie"),
        "films": a("movie", table="movie"),
        "starring": a("cast", table="cast"),
        "credits": a("cast", table="cast"),
        "costars": a("cast", table="cast"),
        "filmography": a("filmography", table="cast"),
        "year": a("movie.release_year", table="movie", column="release_year"),
        "rated": a("movie.rating", table="movie", column="rating"),
        "awards": a("award", table="award"),
        "oscars": a("award", table="award"),
        "oscar": a("award", table="award"),
        "locations": a("location", table="location"),
        "filmed": a("location", table="location"),
        "genres": a("genre", table="genre"),
        "studio": a("company", table="company"),
        "studios": a("company", table="company"),
        "plot": a("plot", table="movie_info", info_type="plot"),
        "synopsis": a("plot", table="movie_info", info_type="plot"),
        "story": a("plot", table="movie_info", info_type="plot"),
        "soundtrack": a("soundtrack", table="movie_info", info_type="soundtrack"),
        "ost": a("soundtrack", table="movie_info", info_type="soundtrack"),
        "songs": a("soundtrack", table="movie_info", info_type="soundtrack"),
        "box office": a("box office", table="movie_info", info_type="box office"),
        "gross": a("box office", table="movie_info", info_type="box office"),
        "revenue": a("box office", table="movie_info", info_type="box office"),
        "trivia": a("trivia", table="movie_info", info_type="trivia"),
        "quotes": a("quotes", table="movie_info", info_type="quotes"),
        "tagline": a("tagline", table="movie_info", info_type="tagline"),
        "runtime": a("runtime", table="movie_info", info_type="runtime"),
        "biography": a("biography", table="person_info", info_type="biography"),
        "bio": a("biography", table="person_info", info_type="biography"),
        # Typeable but unanswerable from this schema (Table 1 has them):
        "posters": a("posters"),
        "poster": a("posters"),
        "recommendations": a("recommendations"),
        "similar": a("recommendations"),
        "charts": a("charts", aggregate=True),
    }
    return SchemaVocabulary(
        database, synonyms,
        dimension_tables=frozenset({"genre", "role_type", "info_type"}),
    )


class QuerySegmenter:
    """Greedy longest-overlap segmentation against DB values + schema words.

    At each position the segmenter prefers, in order: the longest full-value
    entity match (via the database text index), the longest schema-word
    match, a literal year, then free text.  Longer matches always beat
    shorter ones; at equal length entities beat attributes — except for
    single tokens that are exact schema words, where structure wins
    (the paper: "the unmatched portion of the query (cast) is still
    relevant to the schema structure").
    """

    MAX_ENTITY_PHRASE = 5

    def __init__(self, database: Database,
                 vocabulary: SchemaVocabulary | None = None):
        self.database = database
        self.vocabulary = vocabulary or movie_domain_vocabulary(database)
        self._text_index = database.text_index()
        self._schema_graph = None  # built lazily for disambiguation

    def segment_many(self, queries: list[str]) -> list[SegmentedQuery]:
        """Segment a batch of queries, in input order.

        The batch entry point the staged query pipeline drives
        (:class:`~repro.serve.stages.SegmentStage`): one segmenter —
        and hence one lazily built schema graph and one database text
        index — serves the whole batch.
        """
        return [self.segment(query) for query in queries]

    def segment(self, query: str) -> SegmentedQuery:
        tokens = normalize(query).split()
        segments: list[Segment] = []
        position = 0
        pending_freetext: list[str] = []

        def flush_freetext() -> None:
            if pending_freetext:
                segments.append(Segment("freetext", tuple(pending_freetext)))
                pending_freetext.clear()

        while position < len(tokens):
            entity = self._match_entity(tokens, position)
            attribute = self._match_attribute(tokens, position)

            entity_len = len(entity[0]) if entity else 0
            attribute_len = len(attribute[0]) if attribute else 0

            if entity and entity_len >= attribute_len and not (
                attribute_len == entity_len == 1 and self._is_pure_schema_word(tokens[position])
            ):
                span, table, column, value = entity
                flush_freetext()
                segments.append(Segment("entity", span, table=table,
                                        column=column, value=value))
                position += len(span)
                continue
            if attribute:
                span, ref = attribute
                flush_freetext()
                segments.append(Segment("attribute", span, attribute=ref))
                position += len(span)
                continue
            year = self._match_year(tokens[position])
            if year is not None:
                flush_freetext()
                segments.append(Segment("entity", (tokens[position],),
                                        table="movie", column="release_year",
                                        value=year))
                position += 1
                continue
            partial = self._match_partial_entity(tokens, position)
            if partial:
                span, table, column, value = partial
                flush_freetext()
                segments.append(Segment("entity", span, table=table,
                                        column=column, value=value))
                position += len(span)
                continue
            pending_freetext.append(tokens[position])
            position += 1
        flush_freetext()
        return SegmentedQuery(
            raw=query,
            segments=tuple(segments),
            dimension_tables=self.vocabulary.dimension_tables,
        )

    # -- matchers -----------------------------------------------------------------

    def _match_entity(self, tokens: list[str], position: int,
                      ) -> tuple[tuple[str, ...], str, str, object] | None:
        longest = min(self.MAX_ENTITY_PHRASE, len(tokens) - position)
        for length in range(longest, 0, -1):
            span = tuple(tokens[position:position + length])
            phrase = " ".join(span)
            locations = self._text_index.rows_with_phrase(phrase)
            if not locations:
                continue
            table, column, row_id = self._preferred_location(locations)
            value = self.database.table(table).row(row_id)[column]
            return span, table, column, value
        return None

    def _preferred_location(self, locations: set[tuple[str, str, int]],
                            ) -> tuple[str, str, int]:
        """Disambiguate a phrase matching several columns.

        Preference order: entity tables before junction tables ("the
        terminator" is the movie title, not the character name on a cast
        tuple), then short name/title-like columns before long text.
        """
        from repro.graph.schema_graph import SchemaGraph

        if self._schema_graph is None:
            self._schema_graph = SchemaGraph(self.database.schema)
        schema_graph = self._schema_graph

        def sort_key(location: tuple[str, str, int]) -> tuple[int, int, str, str, int]:
            table, column, row_id = location
            stats = self.database.statistics.column(table, column)
            junction_rank = 1 if schema_graph.is_junction(table) else 0
            return (junction_rank, int(stats.avg_text_length), table, column, row_id)

        return min(locations, key=sort_key)

    def _match_partial_entity(self, tokens: list[str], position: int,
                              ) -> tuple[tuple[str, ...], str, str, object] | None:
        """Sub-phrase entity match: "terminator" resolves to the stored
        value "The Terminator" when no full-value match exists.

        Only short name/title-like columns participate (long text columns
        would match everything), and stopword-led spans are skipped.  Among
        candidate values the shortest (fewest extra tokens) wins.
        """
        from repro.ir.analysis import STOPWORDS

        longest = min(self.MAX_ENTITY_PHRASE, len(tokens) - position)
        for length in range(longest, 0, -1):
            span = tuple(tokens[position:position + length])
            if all(token in STOPWORDS or len(token) < 3 for token in span):
                continue
            phrase = " ".join(span)
            from repro.graph.schema_graph import SchemaGraph

            if self._schema_graph is None:
                self._schema_graph = SchemaGraph(self.database.schema)
            best: tuple[int, int, str, str, int, object] | None = None
            for table, column, row_id in self._text_index.rows_with_token(span[0]):
                stats = self.database.statistics.column(table, column)
                if stats.avg_text_length > 40:
                    continue  # plot-like text; not an entity name
                value = self.database.table(table).row(row_id)[column]
                if not isinstance(value, str):
                    continue
                norm_value = normalize(value)
                if f" {phrase} " not in f" {norm_value} ":
                    continue
                extra = len(norm_value.split()) - length
                junction_rank = 1 if self._schema_graph.is_junction(table) else 0
                key = (extra, junction_rank, table, column, row_id, value)
                if best is None or key[:5] < best[:5]:
                    best = key
            if best is not None:
                table, column, value = best[2], best[3], best[5]
                return span, table, column, value
        return None

    def _match_attribute(self, tokens: list[str], position: int,
                         ) -> tuple[tuple[str, ...], AttributeRef] | None:
        longest = min(self.vocabulary.max_phrase_length, len(tokens) - position)
        for length in range(longest, 0, -1):
            span = tuple(tokens[position:position + length])
            ref = self.vocabulary.lookup(span)
            if ref is not None:
                return span, ref
        return None

    def _is_pure_schema_word(self, token: str) -> bool:
        ref = self.vocabulary.lookup((token,))
        return ref is not None

    @staticmethod
    def _match_year(token: str) -> int | None:
        if len(token) == 4 and token.isdigit():
            year = int(token)
            if _YEAR_RANGE[0] <= year <= _YEAR_RANGE[1]:
                return year
        return None

"""Qunit-based search (Sec. 3 of the paper).

The pipeline: a keyword query is **segmented** into entity / attribute /
free-text segments against the database's own vocabulary ("queries are
first processed to identify entities using standard query segmentation
techniques"); the segmented, *typed* query is **matched** against qunit
definitions; finally, instances of the winning definitions are ranked with
**standard IR scoring** and returned as answers.
"""

from repro.core.search.engine import (
    QunitSearchEngine,
    SearchRequest,
    SearchResponse,
)
from repro.core.search.matcher import DefinitionMatch, QunitMatcher
from repro.core.search.segmentation import (
    AttributeRef,
    QuerySegmenter,
    SchemaVocabulary,
    Segment,
    SegmentedQuery,
    movie_domain_vocabulary,
)
from repro.core.search.snippets import SnippetExtractor

__all__ = [
    "QunitSearchEngine",
    "SearchRequest",
    "SearchResponse",
    "QunitMatcher",
    "DefinitionMatch",
    "QuerySegmenter",
    "SegmentedQuery",
    "Segment",
    "AttributeRef",
    "SchemaVocabulary",
    "movie_domain_vocabulary",
    "SnippetExtractor",
]

"""Authoring your own qunit set — the library-adoption walkthrough.

Shows the full authoring loop a downstream user follows: write qunit
definitions in the paper's ``SELECT ... RETURN <template>`` syntax,
validate them against the schema, inspect utility scores, and search.

Run:  python examples/custom_qunits.py
"""

from repro import (
    QunitCollection,
    QunitDefinition,
    QunitSearchEngine,
    UtilityModel,
    generate_imdb,
)
from repro.core.qunit import ParamBinder
from repro.core.search import SnippetExtractor


def build_my_qunits() -> list[QunitDefinition]:
    """A tiny custom set: a director page and a decade chart."""
    director_page = QunitDefinition.from_combined_sql(
        "director_page",
        '''SELECT * FROM person, cast, movie, role_type
           WHERE cast.person_id = person.id
             AND cast.movie_id = movie.id
             AND cast.role_id = role_type.id
             AND role_type.role = 'director'
             AND person.name = "$x"
           RETURN <director name="$x">
                    <foreach:tuple>
                      <movie year="$movie.release_year">$movie.title</movie>
                    </foreach:tuple>
                  </director>''',
        binders=(ParamBinder("x", "person", "name"),),
        keywords=("director", "directed", "movies"),
        description="Movies a person directed.",
    )
    seventies_chart = QunitDefinition(
        name="seventies_chart",
        base_sql=("SELECT movie.title, movie.release_year, movie.rating "
                  "FROM movie WHERE movie.release_year >= 1970 "
                  "AND movie.release_year <= 1979 "
                  "ORDER BY movie.rating DESC LIMIT 10"),
        keywords=("seventies", "70s", "top", "best", "chart"),
        description="The best-rated movies of the 1970s.",
    )
    return [director_page, seventies_chart]


def main() -> None:
    db = generate_imdb(scale=0.3)
    definitions = build_my_qunits()

    collection = QunitCollection(db, definitions,
                                 max_instances_per_definition=100)

    # 1. Validate before shipping: schema references, templates, binders.
    problems = collection.validate()
    print("validation:", "clean" if not problems else problems)

    # 2. Inspect what the definitions yield.
    for name, source, count in collection.describe():
        print(f"  {name:18s} ({source}): {count} instances")

    # 3. Utility scoring ranks the set for ambiguous queries.
    for definition in UtilityModel(db).assign(definitions):
        print(f"  utility {definition.utility:.3f}  {definition.name}")

    # 4. Search.
    engine = QunitSearchEngine(collection, flavor="custom")
    extractor = SnippetExtractor(window=16)
    for query in ("best movies of the seventies",):
        answer = engine.best(query)
        print(f"\nquery: {query!r}")
        print(f"  qunit  : {answer.meta('definition')}")
        print(f"  snippet: {extractor.snippet(answer.text, query)}")

    # A director query: find someone who directed in this synthetic world.
    director_row = None
    directors = collection.instances_of("director_page")
    if directors:
        director_row = directors[0]
        name = director_row.params["x"]
        answer = engine.best(f"{name} movies")
        print(f"\nquery: '{name} movies'")
        print(f"  qunit  : {answer.meta('definition')}")
        print(f"  markup : {director_row.markup()[:100]}...")


if __name__ == "__main__":
    main()

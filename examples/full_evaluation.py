"""The full Sec. 5 evaluation: Table 1, Table 2, Sec. 5.2 and Figure 3.

Rebuilds the paper's entire experimental section on the synthetic
substrates and prints every artifact side by side with the paper's
reported numbers.  Takes ~10 seconds.

Run:  python examples/full_evaluation.py
"""

from repro.eval import ResultQualityExperiment, UserStudySimulator
from repro.eval.figures import render_sec52_statistics, render_table1, render_table2


def main() -> None:
    # Table 1 — the five-user information-need study.
    print("=" * 72)
    result = UserStudySimulator(seed=31).run()
    print(render_table1(result))

    # Table 2 — the relevance scale used by the rater panel.
    print()
    print("=" * 72)
    print(render_table2())

    # Figure 3 + Sec. 5.2 — the result-quality experiment.
    print()
    print("=" * 72)
    experiment = ResultQualityExperiment(scale=0.3, seed=7, n_raters=20,
                                         n_queries=25)
    experiment.setup()
    stats = experiment.analyzer.statistics(experiment.log)
    print(render_sec52_statistics(stats))

    print()
    print("=" * 72)
    report = experiment.run()
    print(report.render())

    print("\nordering check (paper: baselines << derived qunits < Human < max):")
    print("  " + "  <  ".join(report.ordering()))


if __name__ == "__main__":
    main()

"""Query-log analysis: reproducing the Sec. 5.2 measurements.

Generates the synthetic web log, measures the statistics the paper reports
(single-entity / entity-attribute / multi-entity / complex mix,
movie-relatedness), extracts the typed templates and builds the 28-query
movie querylog benchmark.

Run:  python examples/querylog_analysis.py
"""

from repro import QueryLogAnalyzer, QueryLogGenerator, generate_imdb
from repro.eval.figures import render_sec52_statistics


def main() -> None:
    db = generate_imdb(scale=0.3)
    generator = QueryLogGenerator(db)
    log = generator.generate(generator.recommended_unique())

    print(f"database : {db}")
    print(f"query log: {log.unique_queries} distinct, {log.total_queries} total, "
          f"{log.n_users} users\n")

    print("head of the log (most frequent queries):")
    for query, frequency in log.top(8):
        print(f"  {frequency:4d}x  {query}")

    analyzer = QueryLogAnalyzer(db)
    stats = analyzer.statistics(log)
    print()
    print(render_sec52_statistics(stats))

    print("\ntyped templates (top 10 by volume):")
    frequencies = analyzer.template_frequencies(log)
    ranked = sorted(frequencies.items(), key=lambda kv: -kv[1])[:10]
    for template, volume in ranked:
        print(f"  {volume:5d}  {template}")

    print("\nthe movie querylog benchmark (top 14 templates x 2 queries):")
    for item in analyzer.benchmark_workload(log):
        print(f"  {item.template:42s} | {item.query}")


if __name__ == "__main__":
    main()

"""Quickstart: the paper's Figure 1 pipeline, end to end.

Builds the synthetic IMDb database, loads the expert qunit set, and walks
the query "star wars cast" through segmentation, qunit matching and
instance materialization — then shows a few more query shapes.

Run:  python examples/quickstart.py
"""

from repro import QunitCollection, QunitSearchEngine, generate_imdb, imdb_expert_qunits


def main() -> None:
    print("=" * 72)
    print("Qunits quickstart — reproducing Figure 1 of the paper")
    print("=" * 72)

    # 1. The structured database (stand-in for the IMDb dump).
    db = generate_imdb(scale=0.3)
    print(f"\ndatabase: {db}")

    # 2. The database, conceptually, as a collection of independent qunits.
    collection = QunitCollection(db, imdb_expert_qunits(),
                                 max_instances_per_definition=100)
    print(f"qunit definitions: {len(collection)}")
    for name, source, instances in collection.describe()[:6]:
        print(f"  {name:28s} ({source}, {instances} instances)")
    print("  ...")

    # 3. The search engine: segmentation -> matching -> IR ranking.
    engine = QunitSearchEngine(collection, flavor="expert")

    query = "star wars cast"
    print(f"\nquery: {query!r}")
    explanation = engine.explain(query)
    print(f"  typed query   : {explanation.template}")
    print(f"  query class   : {explanation.query_class}")
    candidates = ", ".join(
        f"{name} ({score:.2f}{', rejected' if rejected else ''})"
        for name, score, rejected in explanation.candidates[:3])
    print(f"  top candidates: {candidates}")

    answer = engine.best(query)
    print(f"  chosen qunit  : {answer.meta('definition')}")
    print(f"  answer        : {answer.text[:70]}...")

    # The conversion expression (the paper's Sec. 2 example) renders the
    # instance as nested markup:
    instance = collection.instance("movie_full_credits::star_wars")
    print(f"\nconversion-expression output:\n  {instance.markup()[:120]}...")

    # 4. More query shapes.
    print("\nmore queries:")
    for query in ("george clooney",           # underspecified single entity
                  "george clooney movies",    # entity + attribute
                  "the terminator box office",
                  "best movies",              # aggregate / charts
                  "angelina jolie tomb raider"):  # multi-entity
        answer = engine.best(query)
        definition = answer.meta("definition", "(ir fallback)")
        print(f"  {query:32s} -> {definition}")

    print("\ndone.")


if __name__ == "__main__":
    main()

"""Compare the paper's four qunit-derivation strategies (Sec. 4).

Derives qunit definitions from (a) expert knowledge, (b) schema + data
queriability, (c) query-log rollup, and (d) external evidence — then shows
what each strategy produces for the same database and how the resulting
engines answer the same query.

Run:  python examples/derive_qunits.py
"""

from repro import (
    ExternalEvidenceDeriver,
    QueryLogAnalyzer,
    QueryLogDeriver,
    QueryLogGenerator,
    QunitCollection,
    QunitSearchEngine,
    SchemaDataDeriver,
    UtilityModel,
    generate_imdb,
    generate_wiki_corpus,
    imdb_expert_qunits,
)


def show(title: str, definitions) -> None:
    print(f"\n--- {title} ({len(definitions)} definitions) ---")
    for definition in definitions[:5]:
        anchor = (f"{definition.binders[0].table}.{definition.binders[0].column}"
                  if definition.binders else "(no binder)")
        print(f"  {definition.name:42s} anchor={anchor:22s} "
              f"utility={definition.utility:.2f}")
        print(f"    SQL: {definition.base_sql[:92]}...")
    if len(definitions) > 5:
        print(f"  ... and {len(definitions) - 5} more")


def main() -> None:
    db = generate_imdb(scale=0.3)
    print(f"database: {db}")

    # (a) Expert identification — the imdb.com page types.
    expert = imdb_expert_qunits()
    show("expert (manual, Sec. 4 intro)", expert)

    # (b) Schema + data: top-k1 entities by queriability, expanded with
    # their top-k2 neighbors (Sec. 4.1).
    schema_defs = SchemaDataDeriver(db, k1=4, k2=3).derive()
    show("schema + data (Sec. 4.1, k1=4 k2=3)", schema_defs)
    movie_def = next(d for d in schema_defs if d.binders[0].table == "movie")
    if "location" in movie_def.tables():
        print("  NOTE: the movie profile pulled in `location` — the paper's"
              " diagnosed weakness of purely data-driven derivation.")

    # (c) Query-log rollup (Sec. 4.2).
    log_generator = QueryLogGenerator(db)
    log = log_generator.generate(log_generator.recommended_unique())
    print(f"\nquery log: {log.unique_queries} distinct / "
          f"{log.total_queries} total queries")
    log_defs = QueryLogDeriver(db).derive(log.as_list())
    show("query-log rollup (Sec. 4.2)", log_defs)

    # (d) External evidence (Sec. 4.3).
    pages = generate_wiki_corpus(db)
    evidence_defs = ExternalEvidenceDeriver(db).derive(pages)
    show(f"external evidence (Sec. 4.3, {len(pages)} wiki pages)", evidence_defs)

    # Utility scoring (Sec. 2's qunit utility) re-ranks any definition set.
    utility = UtilityModel(db)
    frequencies = QueryLogAnalyzer(db).template_frequencies(log)
    reranked = utility.assign(schema_defs, frequencies)
    print("\nschema+data definitions by combined utility:")
    for definition in reranked:
        print(f"  {definition.utility:.3f}  {definition.name}")

    # Same query, four engines.
    print("\nanswering 'george clooney movies' with each strategy:")
    for flavor, defs in (("expert", expert), ("schema_data", schema_defs),
                         ("query_log", log_defs), ("external", evidence_defs)):
        engine = QunitSearchEngine(
            QunitCollection(db, defs, max_instances_per_definition=80),
            flavor=flavor)
        answer = engine.best("george clooney movies")
        print(f"  {flavor:12s} -> {answer.meta('definition')}; "
              f"answer mentions {len(answer.atoms)} facts")


if __name__ == "__main__":
    main()

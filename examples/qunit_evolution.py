"""Qunit evolution over time — the paper's Sec. 7 future work, implemented.

"We expect to deal with qunit evolution over time as user interests mutate
during the life of a database system."

Simulates three eras of user interest (blockbuster cast queries, an awards
season, a nostalgia wave of plot/trivia lookups), feeds each era's log
epoch to the evolution tracker, and plots how the derived qunit set and
its utilities drift.

Run:  python examples/qunit_evolution.py
"""

from repro import generate_imdb
from repro.core.evolution import QunitEvolutionTracker
from repro.utils.tables import ascii_table


def era_blockbusters():
    return [
        ("star wars cast", 12), ("batman cast", 9), ("tomb raider cast", 7),
        ("the terminator cast", 6), ("star wars", 10), ("batman", 8),
    ]


def era_awards_season():
    return [
        ("george clooney awards", 11), ("tom hanks awards", 10),
        ("angelina jolie awards", 6), ("tom hanks", 9),
        ("star wars awards", 5), ("george clooney", 8),
    ]


def era_nostalgia():
    return [
        ("cast away plot", 9), ("the terminator plot", 8),
        ("star wars trivia", 7), ("batman trivia", 6),
        ("cast away", 5), ("the terminator", 5),
    ]


def main() -> None:
    db = generate_imdb(scale=0.3)
    tracker = QunitEvolutionTracker(db, smoothing=0.6, drop_below=0.08)

    eras = [
        ("blockbusters", era_blockbusters()),
        ("blockbusters", era_blockbusters()),
        ("awards season", era_awards_season()),
        ("awards season", era_awards_season()),
        ("nostalgia", era_nostalgia()),
        ("nostalgia", era_nostalgia()),
    ]

    print("observing six monthly log epochs across three interest eras\n")
    for label, entries in eras:
        report = tracker.observe_epoch(entries)
        print(f"epoch {report.epoch} ({label:13s}): "
              f"+{len(report.added)} definitions, -{len(report.removed)}, "
              f"{len(report.utilities)} active")
        for name in report.added:
            print(f"    + {name}")
        for name in report.removed:
            print(f"    - {name}")

    print("\nfinal qunit set by smoothed utility:")
    for definition in tracker.definitions:
        print(f"  {definition.utility:.3f}  {definition.name}")

    # Utility trajectories of a few interesting definitions.
    tracked = ["movie_title_cast", "person_name_award",
               "movie_title_movie_info_plot"]
    rows = []
    for name in tracked:
        trajectory = tracker.trajectory(name)
        rows.append([name] + [f"{value:.2f}" for value in trajectory])
    headers = ["definition"] + [f"e{i + 1}" for i in range(len(eras))]
    print()
    print(ascii_table(headers, rows,
                      title="utility trajectories (0.00 = not in the set)"))
    print(f"\ntotal churn across epochs: {tracker.total_churn()}")


if __name__ == "__main__":
    main()

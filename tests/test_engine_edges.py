"""Edge-path tests for the search engine and related plumbing."""


from repro.core import QunitCollection
from repro.core.qunit import ParamBinder, QunitDefinition
from repro.core.search import QunitSearchEngine


class TestPartialBindingPath:
    def test_unbound_definition_uses_ir_over_instances(self, mini_db):
        # A movie-anchored definition queried with a person name: the
        # binder cannot bind, so the engine ranks the definition's
        # instances by IR and still finds the right one through content.
        definition = QunitDefinition(
            name="movie_cast_page",
            base_sql=('SELECT * FROM movie, cast, person '
                      'WHERE cast.movie_id = movie.id '
                      'AND cast.person_id = person.id '
                      'AND movie.title = "$x"'),
            binders=(ParamBinder("x", "movie", "title"),),
            keywords=("cast", "movie"),
        )
        engine = QunitSearchEngine(
            QunitCollection(mini_db, [definition]), flavor="test")
        answer = engine.best("george clooney movie")
        assert not answer.is_empty
        assert ("person", "name", "george clooney") in answer.atoms

    def test_multiple_answers_from_one_definition(self, mini_db):
        definition = QunitDefinition(
            name="movie_page",
            base_sql='SELECT * FROM movie WHERE movie.title = "$x"',
            binders=(ParamBinder("x", "movie", "title"),),
            keywords=("movie",),
        )
        engine = QunitSearchEngine(
            QunitCollection(mini_db, [definition]), flavor="test")
        answers = engine.search("movie", limit=3)
        assert len(answers) == 3
        ids = {a.meta("instance_id") for a in answers}
        assert len(ids) == 3


class TestBackfill:
    def _movie_page_engine(self, mini_db):
        definition = QunitDefinition(
            name="movie_page",
            base_sql='SELECT * FROM movie WHERE movie.title = "$x"',
            binders=(ParamBinder("x", "movie", "title"),),
            keywords=("movie",),
        )
        return QunitSearchEngine(
            QunitCollection(mini_db, [definition]), flavor="test")

    def test_fully_bound_match_still_fills_limit(self, mini_db):
        # Regression: one fully-bound match used to return a single answer
        # even when limit asked for more; flat IR retrieval now backfills
        # the remainder.
        engine = self._movie_page_engine(mini_db)
        answers = engine.search("star wars movie", limit=3)
        assert len(answers) == 3
        ids = [a.meta("instance_id") for a in answers]
        assert ids[0] == "movie_page::star_wars"
        assert len(set(ids)) == 3

    def test_backfill_deduplicates_structural_answers(self, mini_db):
        # The structurally-matched instance also ranks highly in the flat
        # index; backfill must not return it twice.
        engine = self._movie_page_engine(mini_db)
        answers = engine.search("star wars movie", limit=5)
        ids = [a.meta("instance_id") for a in answers]
        assert len(ids) == len(set(ids))

    def test_best_unaffected_by_backfill(self, mini_db):
        engine = self._movie_page_engine(mini_db)
        assert engine.best("star wars movie").meta("instance_id") == \
               "movie_page::star_wars"


class TestFreshHitsHeadroom:
    """The fetch-widening logic now lives in the pipeline's execute
    stage as a generator (``ExecuteStage._fresh_hits``); these tests
    drive it against a real searcher, answering its yielded requests."""

    def build_searcher(self, n: int = 8):
        from repro.ir.analysis import Analyzer
        from repro.ir.documents import Document
        from repro.ir.index import InvertedIndex
        from repro.ir.retrieval import Searcher

        index = InvertedIndex(Analyzer(stem=False))
        for i in range(n):
            # d0 scores highest (most "common" occurrences), d7 lowest.
            index.add(Document.create(f"d{i}", {"body": "common " * (n - i)}))
        return Searcher(index)

    @staticmethod
    def fresh_hits(searcher, query, budget, seen):
        from repro.serve.stages import ExecuteStage

        generator = ExecuteStage()._fresh_hits(None, query, budget, seen,
                                               "auto")
        request = None
        try:
            request = generator.send(None)
            while True:
                hits = searcher.search(request.query, request.fetch)
                request = generator.send(hits)
        except StopIteration as stop:
            return stop.value

    def test_budget_met_when_seen_docs_outrank_fresh(self):
        # All five top-ranked docs are already seen; the budget must be
        # filled from the lower-ranked fresh hits instead of under-filling.
        searcher = self.build_searcher()
        seen = {f"d{i}" for i in range(5)}
        hits = self.fresh_hits(searcher, "common", budget=3, seen=seen)
        assert [h.doc_id for h in hits] == ["d5", "d6", "d7"]

    def test_seen_ids_outside_index_only_add_headroom(self):
        searcher = self.build_searcher()
        seen = {f"d{i}" for i in range(4)} | {"phantom::1", "phantom::2"}
        hits = self.fresh_hits(searcher, "common", budget=4, seen=seen)
        assert [h.doc_id for h in hits] == ["d4", "d5", "d6", "d7"]

    def test_exhausted_index_returns_what_exists(self):
        searcher = self.build_searcher()
        seen = {f"d{i}" for i in range(6)}
        hits = self.fresh_hits(searcher, "common", budget=10, seen=seen)
        assert [h.doc_id for h in hits] == ["d6", "d7"]

    def test_zero_budget(self):
        searcher = self.build_searcher()
        assert self.fresh_hits(searcher, "common", 0, set()) == []


class TestSearchManyEngine:
    def test_batch_matches_singles(self, expert_engine):
        queries = ["star wars cast", "george clooney", "zzzz qqqq"]
        batch = expert_engine.search_many(queries, limit=3)
        assert len(batch) == 3
        for query, answers in zip(queries, batch):
            singles = expert_engine.search(query, limit=3)
            assert [a.meta("instance_id") for a in answers] == \
                   [a.meta("instance_id") for a in singles]

    def test_empty_batch(self, expert_engine):
        assert expert_engine.search_many([]) == []


class TestEmptyCollections:
    def test_engine_over_empty_definition_list(self, mini_db):
        engine = QunitSearchEngine(QunitCollection(mini_db, []),
                                   flavor="empty")
        assert engine.search("star wars") == []
        assert engine.best("star wars").is_empty

    def test_collection_with_all_empty_instances(self, mini_db):
        ghost = QunitDefinition(
            name="ghost",
            base_sql=("SELECT * FROM movie "
                      "WHERE movie.year = 1800 AND movie.title = \"$x\""),
            binders=(ParamBinder("x", "movie", "title"),),
        )
        collection = QunitCollection(mini_db, [ghost])
        assert collection.all_instances() == []
        engine = QunitSearchEngine(collection, flavor="ghost")
        assert engine.best("star wars").is_empty


class TestTemplateEdges:
    def test_two_foreach_blocks(self):
        from repro.core.presentation import ConversionTemplate

        template = ConversionTemplate(
            "<a><foreach:tuple>$t.x;</foreach:tuple></a>"
            "<b><foreach:tuple>$t.y,</foreach:tuple></b>")
        rows = [{"t.x": "1", "t.y": "a"}, {"t.x": "2", "t.y": "b"}]
        assert template.render({}, rows) == "<a>1;2;</a><b>a,b,</b>"

    def test_dollar_without_name_is_literal(self):
        from repro.core.presentation import ConversionTemplate

        template = ConversionTemplate("price: $ 100")
        assert template.render({}, []) == "price: $ 100"


class TestSegmentationUnicode:
    def test_accented_query_matches_ascii_value(self, mini_db):
        from repro.core.search.segmentation import QuerySegmenter

        segmenter = QuerySegmenter(mini_db)
        segmented = segmenter.segment("Stár Wárs")
        assert segmented.template() == "[movie.title]"

    def test_apostrophe_variants(self, mini_db):
        from repro.core.search.segmentation import QuerySegmenter

        segmenter = QuerySegmenter(mini_db)
        assert segmenter.segment("ocean's eleven").template() == "[movie.title]"


class TestHarnessEvaluateSystem:
    def test_default_pool_and_name(self, mini_db):
        from repro.eval.harness import ResultQualityExperiment

        experiment = ResultQualityExperiment(scale=0.1, seed=7, n_raters=4,
                                             n_queries=4, max_instances=30)
        experiment.setup()
        score = experiment.evaluate_system(experiment.banks)
        assert score.system == "banks"
        assert len(score.per_query) == 4

"""Edge-path tests for the search engine and related plumbing."""

import pytest

from repro.core import QunitCollection
from repro.core.qunit import ParamBinder, QunitDefinition
from repro.core.search import QunitSearchEngine


class TestPartialBindingPath:
    def test_unbound_definition_uses_ir_over_instances(self, mini_db):
        # A movie-anchored definition queried with a person name: the
        # binder cannot bind, so the engine ranks the definition's
        # instances by IR and still finds the right one through content.
        definition = QunitDefinition(
            name="movie_cast_page",
            base_sql=('SELECT * FROM movie, cast, person '
                      'WHERE cast.movie_id = movie.id '
                      'AND cast.person_id = person.id '
                      'AND movie.title = "$x"'),
            binders=(ParamBinder("x", "movie", "title"),),
            keywords=("cast", "movie"),
        )
        engine = QunitSearchEngine(
            QunitCollection(mini_db, [definition]), flavor="test")
        answer = engine.best("george clooney movie")
        assert not answer.is_empty
        assert ("person", "name", "george clooney") in answer.atoms

    def test_multiple_answers_from_one_definition(self, mini_db):
        definition = QunitDefinition(
            name="movie_page",
            base_sql='SELECT * FROM movie WHERE movie.title = "$x"',
            binders=(ParamBinder("x", "movie", "title"),),
            keywords=("movie",),
        )
        engine = QunitSearchEngine(
            QunitCollection(mini_db, [definition]), flavor="test")
        answers = engine.search("movie", limit=3)
        assert len(answers) == 3
        ids = {a.meta("instance_id") for a in answers}
        assert len(ids) == 3


class TestEmptyCollections:
    def test_engine_over_empty_definition_list(self, mini_db):
        engine = QunitSearchEngine(QunitCollection(mini_db, []),
                                   flavor="empty")
        assert engine.search("star wars") == []
        assert engine.best("star wars").is_empty

    def test_collection_with_all_empty_instances(self, mini_db):
        ghost = QunitDefinition(
            name="ghost",
            base_sql=("SELECT * FROM movie "
                      "WHERE movie.year = 1800 AND movie.title = \"$x\""),
            binders=(ParamBinder("x", "movie", "title"),),
        )
        collection = QunitCollection(mini_db, [ghost])
        assert collection.all_instances() == []
        engine = QunitSearchEngine(collection, flavor="ghost")
        assert engine.best("star wars").is_empty


class TestTemplateEdges:
    def test_two_foreach_blocks(self):
        from repro.core.presentation import ConversionTemplate

        template = ConversionTemplate(
            "<a><foreach:tuple>$t.x;</foreach:tuple></a>"
            "<b><foreach:tuple>$t.y,</foreach:tuple></b>")
        rows = [{"t.x": "1", "t.y": "a"}, {"t.x": "2", "t.y": "b"}]
        assert template.render({}, rows) == "<a>1;2;</a><b>a,b,</b>"

    def test_dollar_without_name_is_literal(self):
        from repro.core.presentation import ConversionTemplate

        template = ConversionTemplate("price: $ 100")
        assert template.render({}, []) == "price: $ 100"


class TestSegmentationUnicode:
    def test_accented_query_matches_ascii_value(self, mini_db):
        from repro.core.search.segmentation import QuerySegmenter

        segmenter = QuerySegmenter(mini_db)
        segmented = segmenter.segment("Stár Wárs")
        assert segmented.template() == "[movie.title]"

    def test_apostrophe_variants(self, mini_db):
        from repro.core.search.segmentation import QuerySegmenter

        segmenter = QuerySegmenter(mini_db)
        assert segmenter.segment("ocean's eleven").template() == "[movie.title]"


class TestHarnessEvaluateSystem:
    def test_default_pool_and_name(self, mini_db):
        from repro.eval.harness import ResultQualityExperiment

        experiment = ResultQualityExperiment(scale=0.1, seed=7, n_raters=4,
                                             n_queries=4, max_instances=30)
        experiment.setup()
        score = experiment.evaluate_system(experiment.banks)
        assert score.system == "banks"
        assert len(score.per_query) == 4

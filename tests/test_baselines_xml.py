"""Tests for the XML LCA / MLCA baselines."""

import pytest

from repro.baselines.xml_lca import XmlLcaSearch, XmlMlcaSearch
from repro.xmlview import build_xml_view
from repro.xmlview.index import TreeTextIndex


@pytest.fixture()
def searchers(mini_db):
    root = build_xml_view(mini_db)
    index = TreeTextIndex(root)
    return XmlLcaSearch(root, index), XmlMlcaSearch(root, index)


class TestLcaSearch:
    def test_entity_attribute_query(self, searchers):
        lca_search, _ = searchers
        answer = lca_search.best("star wars cast")
        assert not answer.is_empty
        # The section label anchors "cast" inside the movie element, so the
        # result demarcates at the movie: it contains the cast names.
        assert ("person", "name", "carrie fisher") in answer.atoms

    def test_single_entity_too_little(self, searchers):
        lca_search, _ = searchers
        answer = lca_search.best("george clooney")
        # The smallest element containing both words is the name node:
        # the "too little desired information" failure mode.
        assert answer.atoms == frozenset({("person", "name", "george clooney")})

    def test_missing_keyword_no_answer(self, searchers):
        lca_search, _ = searchers
        assert lca_search.best("clooney xyzzy").is_empty
        assert lca_search.search("") == []

    def test_ranking_prefers_smaller_subtrees(self, searchers):
        lca_search, _ = searchers
        answers = lca_search.search("actor", limit=3)
        sizes = [a.meta("subtree_size") for a in answers]
        assert sizes == sorted(sizes)

    def test_system_names(self, searchers):
        lca_search, mlca_search = searchers
        assert lca_search.best("star wars").system == "xml-lca"
        assert mlca_search.best("star wars").system == "xml-mlca"


class TestMlcaSearch:
    def test_returns_meaningful_subset(self, searchers):
        lca_search, mlca_search = searchers
        for query in ["star wars cast", "tom hanks actor", "1977"]:
            lca_answers = lca_search.search(query, limit=5)
            mlca_answers = mlca_search.search(query, limit=5)
            assert len(mlca_answers) <= len(lca_answers) or not lca_answers

    def test_answer_provenance(self, searchers):
        _, mlca_search = searchers
        answer = mlca_search.best("star wars cast")
        assert answer.meta("tag") is not None
        assert answer.meta("dewey") is not None

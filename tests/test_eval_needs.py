"""Tests for the information-need model."""

import pytest

from repro.core.search.segmentation import QuerySegmenter
from repro.eval.needs import NEEDS, NeedModel
from repro.utils.rng import DeterministicRng


@pytest.fixture(scope="module")
def model(expert_collection):
    return NeedModel(expert_collection)


@pytest.fixture(scope="module")
def segmenter(imdb_db):
    return QuerySegmenter(imdb_db)


class TestDistributions:
    def test_bare_title_is_ambiguous(self, model, segmenter):
        distribution = model.distribution(segmenter.segment("star wars"))
        names = {need.name for need, _weight in distribution}
        # Table 1: [title] alone may mean summary, cast, related, soundtrack.
        assert "movie_summary" in names and "cast" in names
        assert sum(weight for _n, weight in distribution) == pytest.approx(1.0)

    def test_attribute_query_unambiguous(self, model, segmenter):
        distribution = model.distribution(segmenter.segment("star wars cast"))
        assert [(need.name, weight) for need, weight in distribution] == \
               [("cast", 1.0)]

    def test_aggregate_maps_to_charts(self, model, segmenter):
        distribution = model.distribution(segmenter.segment("best movies"))
        assert distribution[0][0].name == "charts"

    def test_unknown_shape_falls_back_to_entity(self, model, segmenter):
        segmented = segmenter.segment("star wars gossip news")
        distribution = model.distribution(segmented)
        assert distribution  # falls back to bare [movie.title] distribution

    def test_freetext_has_no_distribution(self, model, segmenter):
        assert model.distribution(segmenter.segment("zzz qqq")) == []

    def test_sample_need_deterministic(self, model, segmenter):
        segmented = segmenter.segment("star wars")
        a = model.sample_need(segmented, DeterministicRng(1))
        b = model.sample_need(segmented, DeterministicRng(1))
        assert a is not None and a.name == b.name


class TestGold:
    def test_gold_atoms_for_cast(self, model, segmenter):
        segmented = segmenter.segment("star wars cast")
        gold = model.gold_atoms(NEEDS["cast"], segmented)
        assert gold is not None
        assert ("person", "name", "mark hamill") in gold

    def test_unanswerable_need_is_none(self, model, segmenter):
        segmented = segmenter.segment("star wars posters")
        assert model.gold_atoms(NEEDS["posters"], segmented) is None

    def test_unbindable_need_is_none(self, model, segmenter):
        # A movie-anchored need cannot bind from a person query.
        segmented = segmenter.segment("george clooney")
        assert model.gold_atoms(NEEDS["cast"], segmented) is None

    def test_empty_gold_is_none(self, model, segmenter):
        # Filler movies may lack a soundtrack row; canon Star Wars has one
        # at p=0.9 per movie... check the API contract on a movie without.
        segmented = segmenter.segment("star wars")
        gold = model.gold_atoms(NEEDS["soundtracks"], segmented)
        assert gold is None or len(gold) > 0

    def test_answerable(self, model, segmenter):
        assert model.answerable(segmenter.segment("star wars cast"))
        assert not model.answerable(segmenter.segment("zzz qqq"))


class TestCatalogue:
    def test_needs_reference_expert_definitions(self, expert_collection):
        for need in NEEDS.values():
            if need.gold_definition is not None:
                assert need.gold_definition in expert_collection

    def test_unanswerable_needs_exist(self):
        unanswerable = [n for n in NEEDS.values() if n.gold_definition is None]
        assert {"posters", "related_movies", "recommendations"} == \
               {n.name for n in unanswerable}

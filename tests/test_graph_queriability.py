"""Tests for queriability scoring (Sec. 4.1 substrate)."""

import pytest

from repro.graph.queriability import QueriabilityModel


@pytest.fixture()
def model(mini_db):
    return QueriabilityModel(mini_db)


class TestEntityQueriability:
    def test_entities_beat_junctions(self, model):
        person = model.entity("person")
        cast = model.entity("cast")
        assert person.score > cast.score
        assert cast.is_junction

    def test_ranking_deterministic(self, model):
        first = [e.table for e in model.ranked_entities()]
        second = [e.table for e in model.ranked_entities()]
        assert first == second

    def test_top_entities_k(self, model):
        assert len(model.top_entities(2)) == 2
        assert len(model.top_entities(0)) == 0
        with pytest.raises(ValueError):
            model.top_entities(-1)

    def test_imdb_person_movie_lead(self, imdb_db):
        model = QueriabilityModel(imdb_db)
        top3 = {e.table for e in model.top_entities(3)}
        assert "person" in top3 and "movie" in top3


class TestAttributeQueriability:
    def test_id_columns_score_zero(self, model):
        assert model.attribute("cast", "person_id").score == 0.0
        assert model.attribute("movie", "id").score == 0.0

    def test_searchable_boost(self, model):
        title = model.attribute("movie", "title")
        year = model.attribute("movie", "year")
        assert title.score > year.score

    def test_ranked_attributes_best_first(self, model):
        ranked = model.ranked_attributes("movie")
        assert ranked[0].column == "title"
        scores = [a.score for a in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_table_raises(self, model):
        from repro.errors import UnknownTableError

        with pytest.raises(UnknownTableError):
            model.ranked_attributes("nope")


class TestNeighborExpansion:
    def test_junctions_traversed(self, model):
        # person's neighbors through the cast junction include movie.
        neighbors = model.top_neighbors("person", 3)
        assert "movie" in neighbors

    def test_k_limits(self, model):
        assert len(model.top_neighbors("movie", 1)) == 1
        with pytest.raises(ValueError):
            model.top_neighbors("movie", -1)

    def test_no_self_neighbor(self, model):
        assert "movie" not in model.top_neighbors("movie", 10)

    def test_imdb_movie_neighbors(self, imdb_db):
        model = QueriabilityModel(imdb_db)
        neighbors = model.top_neighbors("movie", 6)
        assert "person" in neighbors
        assert "genre" in neighbors
        assert "location" in neighbors  # the paper's point: data says yes

"""Tests for the BANKS baseline."""

import pytest

from repro.answer import atom
from repro.baselines.banks import BanksSearch
from repro.graph.data_graph import DataGraph, TupleNode


@pytest.fixture()
def banks(mini_db):
    return BanksSearch(DataGraph(mini_db))


class TestSingleKeyword:
    def test_returns_matching_tuples(self, banks):
        trees = banks.search_trees("clooney")
        assert trees and trees[0].root == TupleNode("person", 0)
        assert trees[0].nodes == frozenset([TupleNode("person", 0)])

    def test_ranked_by_prestige(self, banks):
        trees = banks.search_trees("actor", limit=3)
        prestiges = [banks.data_graph.prestige(t.root) for t in trees]
        assert prestiges == sorted(prestiges, reverse=True)

    def test_no_match(self, banks):
        assert banks.search_trees("xyzzy") == []
        assert banks.best("xyzzy").is_empty


class TestMultiKeyword:
    def test_connects_keywords(self, banks):
        # "clooney" (person 0) + "eleven" (movie 2) connect through cast.
        trees = banks.search_trees("clooney eleven")
        assert trees
        best = trees[0]
        assert TupleNode("person", 0) in best.nodes
        assert TupleNode("movie", 2) in best.nodes
        # The connecting cast tuple is included: the join-plumbing the
        # paper says BANKS drags into results.
        assert TupleNode("cast", 2) in best.nodes

    def test_any_missing_keyword_empty(self, banks):
        assert banks.search_trees("clooney xyzzy") == []

    def test_trees_deduplicated(self, banks):
        trees = banks.search_trees("hanks away", limit=10)
        node_sets = [t.nodes for t in trees]
        assert len(node_sets) == len(set(node_sets))

    def test_limit(self, banks):
        assert len(banks.search_trees("actor movie", limit=2)) <= 2

    def test_schema_word_matched_as_content(self, banks):
        # The paper's failure mode: BANKS treats the structural word
        # "actor" as content, so "away actor" anchors on a cast tuple's
        # role text rather than understanding the cast relationship.
        trees = banks.search_trees("away actor")
        assert trees
        tables = {node.table for node in trees[0].nodes}
        assert "movie" in tables and "cast" in tables


class TestAnswers:
    def test_atoms_exclude_ids(self, banks):
        answer = banks.best("clooney eleven")
        assert atom("person", "name", "George Clooney") in answer.atoms
        assert all(not column.endswith("_id") and column != "id"
                   for _t, column, _v in answer.atoms)

    def test_provenance(self, banks):
        answer = banks.best("clooney eleven")
        assert answer.meta("tree_size") >= 3
        assert answer.system == "banks"

    def test_empty_query(self, banks):
        assert banks.search("") == []

"""Tests for prior-weighted scoring and collection popularity priors."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.retrieval import Searcher
from repro.ir.scoring import Bm25Scorer, PriorWeightedScorer


@pytest.fixture()
def index():
    idx = InvertedIndex(Analyzer(stem=False))
    idx.add(Document.create("obscure", {"body": "star chronicle"}))
    idx.add(Document.create("famous", {"body": "star chronicle"}))
    return idx


class TestPriorWeightedScorer:
    def test_prior_breaks_text_ties(self, index):
        scorer = PriorWeightedScorer(Bm25Scorer(), {"famous": 3.0})
        searcher = Searcher(index, scorer)
        hits = searcher.search("star")
        assert hits[0].doc_id == "famous"

    def test_default_prior_applied(self, index):
        scorer = PriorWeightedScorer(Bm25Scorer(), {}, default=2.0)
        doubled = scorer.scores(index, ["star"])
        plain = Bm25Scorer().scores(index, ["star"])
        for doc_id in plain:
            assert doubled[doc_id] == pytest.approx(2.0 * plain[doc_id])

    def test_no_match_stays_empty(self, index):
        scorer = PriorWeightedScorer(Bm25Scorer(), {"famous": 5.0})
        assert scorer.scores(index, ["zzz"]) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorWeightedScorer(Bm25Scorer(), {"x": 0.0})
        with pytest.raises(ValueError):
            PriorWeightedScorer(Bm25Scorer(), {}, default=0.0)


class TestPopularityPriors:
    def test_votes_drive_priors(self, expert_collection):
        priors = expert_collection.popularity_priors("movie", "votes")
        # Canon movies have large vote counts; their main pages beat
        # person-only instances (which never touch movie.votes).
        star_wars = priors["movie_main_page::star_wars"]
        assert star_wars > 1.0
        person_only = priors.get("person_biography::george_clooney")
        if person_only is not None:
            assert star_wars > person_only

    def test_every_instance_has_prior(self, expert_collection):
        priors = expert_collection.popularity_priors()
        assert len(priors) == expert_collection.instance_count()
        assert all(value >= 1.0 for value in priors.values())

    def test_unknown_column_rejected(self, expert_collection):
        from repro.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            expert_collection.popularity_priors("movie", "bogus")

    def test_prior_scorer_end_to_end(self, expert_collection):
        from repro.core.search import QunitSearchEngine

        priors = expert_collection.popularity_priors()
        engine = QunitSearchEngine(
            expert_collection, flavor="expert",
            scorer=PriorWeightedScorer(Bm25Scorer(), priors))
        answer = engine.best("star wars cast")
        assert answer.meta("definition") == "movie_full_credits"

"""Tests for the statistics catalog."""

import pytest



class TestTableStatistics:
    def test_row_count(self, mini_db):
        assert mini_db.statistics.table("person").row_count == 3

    def test_distinct_count(self, mini_db):
        stats = mini_db.statistics.column("cast", "role")
        assert stats.distinct_count == 2  # actor, actress

    def test_null_fraction(self, mini_db):
        mini_db.insert("cast", {"id": 9, "person_id": 1, "movie_id": 1,
                                "role": None})
        stats = mini_db.statistics.column("cast", "role")
        assert stats.null_count == 1
        assert 0 < stats.null_fraction < 1

    def test_distinct_ratio_key_column(self, mini_db):
        stats = mini_db.statistics.column("person", "id")
        assert stats.distinct_ratio == 1.0

    def test_avg_text_length(self, mini_db):
        stats = mini_db.statistics.column("movie", "title")
        expected = (len("Star Wars") + len("Cast Away") + len("Ocean's Eleven")) / 3
        assert abs(stats.avg_text_length - expected) < 1e-9

    def test_id_like_flag(self, mini_db):
        assert mini_db.statistics.column("cast", "person_id").is_id_like
        assert not mini_db.statistics.column("cast", "role").is_id_like

    def test_unknown_column_raises(self, mini_db):
        with pytest.raises(KeyError):
            mini_db.statistics.table("person").column("nope")


class TestCatalogCaching:
    def test_cached_until_invalidated(self, mini_db):
        first = mini_db.statistics.table("person")
        assert mini_db.statistics.table("person") is first
        mini_db.statistics.invalidate("person")
        assert mini_db.statistics.table("person") is not first

    def test_invalidate_all(self, mini_db):
        first = mini_db.statistics.table("movie")
        mini_db.statistics.invalidate()
        assert mini_db.statistics.table("movie") is not first

    def test_total_rows(self, mini_db):
        assert mini_db.statistics.total_rows() == mini_db.total_rows()

    def test_empty_table_statistics(self, mini_db):
        # A fresh database with no rows must not divide by zero.
        from tests.conftest import build_mini_schema
        from repro.relational.database import Database

        empty = Database(build_mini_schema())
        stats = empty.statistics.table("person")
        assert stats.row_count == 0
        name = stats.column("name")
        assert name.null_fraction == 0.0
        assert name.distinct_ratio == 0.0

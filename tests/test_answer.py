"""Tests for the shared Answer model."""

from repro.answer import Answer, atom


class TestAtom:
    def test_normalizes_value(self):
        assert atom("movie", "title", "Star WARS!") == ("movie", "title", "star wars")

    def test_non_text_values(self):
        assert atom("movie", "year", 1977) == ("movie", "year", "1977")
        assert atom("award", "won", True) == ("award", "won", "yes")
        assert atom("award", "won", False) == ("award", "won", "no")


class TestAnswer:
    def test_empty(self):
        empty = Answer.empty("sys")
        assert empty.is_empty
        assert empty.system == "sys"
        assert empty.text == ""

    def test_tables(self):
        answer = Answer("s", frozenset({
            atom("movie", "title", "X"), atom("person", "name", "Y"),
        }), "X Y")
        assert answer.tables() == {"movie", "person"}

    def test_values_for(self):
        answer = Answer("s", frozenset({
            atom("movie", "title", "A"), atom("movie", "title", "B"),
            atom("movie", "year", 1990),
        }), "")
        assert answer.values_for("movie", "title") == {"a", "b"}
        assert answer.values_for("movie", "nope") == set()

    def test_meta(self):
        answer = Answer("s", frozenset(), "", provenance=(("k", "v"),))
        assert answer.meta("k") == "v"
        assert answer.meta("missing", "fallback") == "fallback"

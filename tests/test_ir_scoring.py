"""Tests for TF-IDF and BM25 scoring."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.scoring import Bm25Scorer, TfIdfScorer


@pytest.fixture()
def index():
    idx = InvertedIndex(Analyzer(stem=False))
    idx.add(Document.create("war1", {"body": "star wars space battle"}))
    idx.add(Document.create("war2", {"body": "star wars wars wars sequel"}))
    idx.add(Document.create("sea", {"body": "ocean waves ship"}))
    idx.add(Document.create("mix", {"body": "star ocean crossover epic saga"}))
    return idx


@pytest.mark.parametrize("scorer", [TfIdfScorer(), Bm25Scorer()])
class TestCommonProperties:
    def test_only_matching_documents_scored(self, index, scorer):
        scores = scorer.scores(index, ["wars"])
        assert set(scores) == {"war1", "war2"}

    def test_all_scores_positive(self, index, scorer):
        scores = scorer.scores(index, ["star", "ocean"])
        assert all(value > 0 for value in scores.values())

    def test_unknown_term_ignored(self, index, scorer):
        assert scorer.scores(index, ["xyzzy"]) == {}

    def test_empty_index(self, scorer):
        empty = InvertedIndex()
        assert scorer.scores(empty, ["star"]) == {}

    def test_multi_term_accumulates(self, index, scorer):
        single = scorer.scores(index, ["star"])
        double = scorer.scores(index, ["star", "wars"])
        assert double["war1"] > single["war1"]

    def test_rare_term_outweighs_common(self, index, scorer):
        # "battle" appears once; "star" in three docs. A doc matching the
        # rare term scores higher than one matching only the common term.
        scores = scorer.scores(index, ["battle", "star"])
        assert scores["war1"] > scores["mix"]


class TestBm25Specifics:
    def test_tf_saturation(self, index):
        # war2 has "wars" three times but should not get 3x the score.
        scores = Bm25Scorer().scores(index, ["wars"])
        assert scores["war2"] < 3 * scores["war1"]
        assert scores["war2"] > scores["war1"]

    def test_k1_zero_ignores_tf(self, index):
        scores = Bm25Scorer(k1=0.0).scores(index, ["wars"])
        assert scores["war1"] == pytest.approx(scores["war2"])

    def test_b_zero_ignores_length(self):
        idx = InvertedIndex(Analyzer(stem=False))
        idx.add(Document.create("short", {"body": "star"}))
        idx.add(Document.create("long", {"body": "star " + "filler " * 50}))
        scores = Bm25Scorer(b=0.0).scores(idx, ["star"])
        assert scores["short"] == pytest.approx(scores["long"])

    def test_b_one_penalizes_length(self):
        idx = InvertedIndex(Analyzer(stem=False))
        idx.add(Document.create("short", {"body": "star"}))
        idx.add(Document.create("long", {"body": "star " + "filler " * 50}))
        scores = Bm25Scorer(b=1.0).scores(idx, ["star"])
        assert scores["short"] > scores["long"]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Bm25Scorer(k1=-1)
        with pytest.raises(ValueError):
            Bm25Scorer(b=1.5)


class TestTfIdfSpecifics:
    def test_length_normalization(self):
        idx = InvertedIndex(Analyzer(stem=False))
        idx.add(Document.create("short", {"body": "star"}))
        idx.add(Document.create("long", {"body": "star " + "filler " * 60}))
        scores = TfIdfScorer().scores(idx, ["star"])
        assert scores["short"] > scores["long"]

    def test_fractional_field_weight_never_penalizes_a_match(self):
        # Regression: weighted tf in (0, 1) made 1 + log(tf) negative, so a
        # *matching* document could rank below non-matching ones.  The tf
        # component is clamped at 1 + log(max(tf, 1)) >= 1.
        idx = InvertedIndex(Analyzer(stem=False))
        idx.add(Document.create("frac", {"summary": "star wars"},
                                {"summary": 0.2}))
        idx.add(Document.create("other", {"body": "ocean drama heist"}))
        scores = TfIdfScorer().scores(idx, ["star"])
        assert set(scores) == {"frac"}
        assert scores["frac"] > 0

    def test_fractional_weight_ranks_with_full_weight(self):
        # A fractionally-weighted match scores no higher than the same
        # match at full weight, but both stay positive.
        idx = InvertedIndex(Analyzer(stem=False))
        idx.add(Document.create("a", {"body": "star wars"}, {"body": 0.25}))
        idx.add(Document.create("b", {"body": "star wars"}))
        scores = TfIdfScorer().scores(idx, ["star", "wars"])
        assert 0 < scores["a"]
        assert 0 < scores["b"]

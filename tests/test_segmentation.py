"""Tests for query segmentation and typing."""

import pytest

from repro.core.search.segmentation import QuerySegmenter, movie_domain_vocabulary


@pytest.fixture(scope="module")
def segmenter(imdb_db):
    return QuerySegmenter(imdb_db)


class TestEntityRecognition:
    def test_full_value_match(self, segmenter):
        segmented = segmenter.segment("star wars")
        assert segmented.template() == "[movie.title]"
        entity = segmented.entities()[0]
        assert entity.value == "Star Wars"

    def test_greedy_longest_match(self, segmenter):
        # "cast away" is a movie even though "cast" is a schema word.
        segmented = segmenter.segment("cast away")
        assert segmented.template() == "[movie.title]"

    def test_person_match(self, segmenter):
        segmented = segmenter.segment("george clooney")
        assert segmented.template() == "[person.name]"
        assert segmented.query_class() == "single_entity"

    def test_partial_entity_match(self, segmenter):
        segmented = segmenter.segment("terminator")
        entity = segmented.entities()[0]
        assert entity.table == "movie"
        assert entity.value == "The Terminator"

    def test_entity_table_preferred_over_junction(self, segmenter):
        # "the terminator" is both a movie title and a character name; the
        # movie (entity table) must win.
        segmented = segmenter.segment("the terminator box office")
        entity = segmented.entities()[0]
        assert entity.table == "movie"

    def test_year_recognition(self, segmenter):
        segmented = segmenter.segment("movies 1977")
        assert "[movie.release_year]" in segmented.template()

    def test_non_year_number_is_freetext(self, segmenter):
        segmented = segmenter.segment("catch 22222")
        assert "[movie.release_year]" not in segmented.template()


class TestAttributeRecognition:
    def test_table_word(self, segmenter):
        segmented = segmenter.segment("star wars cast")
        assert segmented.template() == "[movie.title] cast"

    def test_synonyms(self, segmenter):
        assert segmenter.segment("cast away ost").template() == \
               "[movie.title] soundtrack"
        assert segmenter.segment("batman movies").template() == \
               "[movie.title] movie"

    def test_multiword_attribute(self, segmenter):
        template = segmenter.segment("the terminator box office").template()
        assert template in ("[movie.title] box office",
                            "[movie.title] [info_type.name]")

    def test_unanswerable_attribute_typed(self, segmenter):
        segmented = segmenter.segment("batman posters")
        attrs = segmented.attributes()
        assert attrs and attrs[0].attribute.name == "posters"
        assert attrs[0].attribute.table is None

    def test_aggregate_markers(self, segmenter):
        segmented = segmenter.segment("highest box office revenue")
        assert segmented.query_class() == "complex"


class TestClassification:
    @pytest.mark.parametrize("query,expected", [
        ("george clooney", "single_entity"),
        ("star wars cast", "entity_attribute"),
        ("angelina jolie tomb raider", "multi_entity"),
        ("best comedy movies", "complex"),
        ("george clooney gossip stories", "entity_freetext"),
        ("zzz qqq www", "freetext"),
    ])
    def test_classes(self, segmenter, query, expected):
        assert segmenter.segment(query).query_class() == expected

    def test_dimension_entities_are_not_instances(self, segmenter):
        segmented = segmenter.segment("george clooney actor")
        assert len(segmented.instance_entities()) == 1
        assert len(segmented.dimension_entities()) == 1
        assert segmented.query_class() == "entity_attribute"

    def test_underspecified_flag(self, segmenter):
        assert segmenter.segment("tom hanks").is_underspecified
        assert not segmenter.segment("tom hanks awards").is_underspecified


class TestTemplates:
    def test_adjacent_freetext_collapsed(self, segmenter):
        segmented = segmenter.segment("zzz qqq star wars")
        assert segmented.template() == "[freetext] [movie.title]"

    def test_empty_query(self, segmenter):
        segmented = segmenter.segment("")
        assert segmented.template() == ""
        assert segmented.query_class() == "freetext"

    def test_vocabulary_shared(self, imdb_db):
        vocabulary = movie_domain_vocabulary(imdb_db)
        seg1 = QuerySegmenter(imdb_db, vocabulary)
        seg2 = QuerySegmenter(imdb_db, vocabulary)
        assert seg1.segment("star wars cast").template() == \
               seg2.segment("star wars cast").template()

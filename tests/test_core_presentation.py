"""Tests for the conversion-expression template engine."""

import pytest

from repro.core.presentation import ConversionTemplate, render_default
from repro.errors import TemplateError

ROWS = [
    {"person.name": "Mark Hamill", "cast.role": "actor"},
    {"person.name": "Carrie Fisher", "cast.role": "actress"},
]


class TestVariables:
    def test_param_substitution(self):
        template = ConversionTemplate('<cast movie="$x"/>')
        assert template.render({"x": "Star Wars"}, []) == '<cast movie="Star Wars"/>'

    def test_field_substitution_outside_foreach_uses_first_row(self):
        template = ConversionTemplate("<p>$person.name</p>")
        assert template.render({}, ROWS) == "<p>Mark Hamill</p>"

    def test_unbound_param_raises(self):
        template = ConversionTemplate("$missing")
        with pytest.raises(TemplateError):
            template.render({}, [])

    def test_unknown_field_raises(self):
        template = ConversionTemplate("$person.nope")
        with pytest.raises(TemplateError):
            template.render({}, ROWS)

    def test_none_renders_empty(self):
        template = ConversionTemplate("[$person.name]")
        assert template.render({}, [{"person.name": None}]) == "[]"

    def test_bool_renders_yes_no(self):
        template = ConversionTemplate("$award.won")
        assert template.render({}, [{"award.won": True}]) == "yes"

    def test_no_rows_field_renders_empty(self):
        template = ConversionTemplate("<x>$person.name</x>")
        assert template.render({}, []) == "<x></x>"

    def test_variables_collected(self):
        template = ConversionTemplate(
            '<a x="$x"><foreach:tuple>$person.name</foreach:tuple></a>')
        assert template.variables() == {"x", "person.name"}


class TestForeach:
    def test_paper_example(self):
        source = ('<cast movie="$x"><foreach:tuple>'
                  "<person>$person.name</person>"
                  "</foreach:tuple></cast>")
        template = ConversionTemplate(source)
        rendered = template.render({"x": "Star Wars"}, ROWS)
        assert rendered == (
            '<cast movie="Star Wars">'
            "<person>Mark Hamill</person>"
            "<person>Carrie Fisher</person>"
            "</cast>"
        )

    def test_deduplicates_repeated_tuples(self):
        # Cross-product joins repeat tuples; rendering dedups them.
        template = ConversionTemplate(
            "<foreach:tuple>$person.name;</foreach:tuple>")
        doubled = ROWS + ROWS
        assert template.render({}, doubled) == "Mark Hamill;Carrie Fisher;"

    def test_nested_foreach_rejected_at_render(self):
        template = ConversionTemplate(
            "<foreach:tuple><foreach:tuple>x</foreach:tuple></foreach:tuple>")
        with pytest.raises(TemplateError):
            template.render({}, ROWS)

    def test_unterminated_foreach_rejected(self):
        with pytest.raises(TemplateError):
            ConversionTemplate("<foreach:tuple>$a.b")

    def test_stray_close_rejected(self):
        with pytest.raises(TemplateError):
            ConversionTemplate("text</foreach:tuple>")

    def test_empty_rows(self):
        template = ConversionTemplate(
            "<list><foreach:tuple><i>$person.name</i></foreach:tuple></list>")
        assert template.render({}, []) == "<list></list>"


class TestRenderText:
    def test_strips_tags(self):
        template = ConversionTemplate(
            "<cast><foreach:tuple><p>$person.name</p></foreach:tuple></cast>")
        assert template.render_text({}, ROWS) == "Mark Hamill Carrie Fisher"


class TestRenderDefault:
    def test_includes_title_params_and_values(self):
        text = render_default("cast of movie", {"x": "Star Wars"}, ROWS)
        assert "cast of movie" in text
        assert "Star Wars" in text
        assert "Mark Hamill" in text and "Carrie Fisher" in text

    def test_skips_ids_and_nulls(self):
        rows = [{"movie.id": 5, "cast.movie_id": 5, "movie.title": "X",
                 "movie.year": None}]
        text = render_default("t", {}, rows)
        assert "5" not in text
        assert "movie title: X." in text

    def test_deduplicates_values(self):
        rows = [{"genre.name": "drama"}, {"genre.name": "drama"}]
        text = render_default("t", {}, rows)
        assert text.count("drama") == 1

"""Tests for LCA / SLCA / MLCA operators."""

import pytest

from repro.xmlview.operators import lca, lca_nodes, mlca, slca
from repro.xmlview.tree import XmlNode


def build_tree():
    """db -> movies -> m1(title:'alpha beta', cast:[x], year:'1990')
                       m2(title:'alpha', year:'1990')"""
    root = XmlNode("db", ())
    movies = root.add_child("movies")
    m1 = movies.add_child("movie")
    m1.add_child("title", "alpha beta")
    m1_cast = m1.add_child("cast")
    m1_cast.add_child("name", "xavier")
    m1.add_child("year", "1990")
    m2 = movies.add_child("movie")
    m2.add_child("title", "alpha")
    m2.add_child("year", "1990")
    return root, movies, m1, m2


def matches(root, token):
    return [node for node in root.walk()
            if node.text and token in node.text.split()]


class TestLca:
    def test_prefix(self):
        assert lca((0, 1, 2), (0, 1, 5)) == (0, 1)
        assert lca((0,), (1,)) == ()
        assert lca((0, 1), (0, 1)) == (0, 1)

    def test_lca_nodes(self):
        root, _movies, m1, _m2 = build_tree()
        title = m1.children[0]
        year = m1.children[2]
        assert lca_nodes(root, [title, year]) is m1

    def test_lca_nodes_empty_rejected(self):
        root, *_ = build_tree()
        with pytest.raises(ValueError):
            lca_nodes(root, [])


class TestSlca:
    def test_within_one_movie(self):
        root, _movies, m1, _m2 = build_tree()
        result = slca(root, [matches(root, "beta"), matches(root, "xavier")])
        assert result == [m1]

    def test_smallest_wins_over_ancestor(self):
        root, _movies, m1, m2 = build_tree()
        # "alpha" matches both movies; "1990" matches both. The SLCAs are
        # the individual movies, not the shared <movies> ancestor.
        result = slca(root, [matches(root, "alpha"), matches(root, "1990")])
        assert m1 in result and m2 in result
        assert all(node.tag == "movie" for node in result)

    def test_missing_keyword_returns_empty(self):
        root, *_ = build_tree()
        assert slca(root, [matches(root, "alpha"), matches(root, "zzz")]) == []
        assert slca(root, []) == []

    def test_single_keyword_returns_match_nodes(self):
        root, *_ = build_tree()
        result = slca(root, [matches(root, "xavier")])
        assert len(result) == 1 and result[0].text == "xavier"

    def test_document_order(self):
        root, _movies, m1, m2 = build_tree()
        result = slca(root, [matches(root, "alpha"), matches(root, "1990")])
        deweys = [node.dewey for node in result]
        assert deweys == sorted(deweys)


class TestMlca:
    def test_subset_of_slca_candidates(self):
        root, _movies, m1, _m2 = build_tree()
        result = mlca(root, [matches(root, "beta"), matches(root, "xavier")])
        assert result == [m1]

    def test_mutual_nearest_filters_cross_pairs(self):
        # Two movies, each with its own title and year. Pairing m1's title
        # with m2's year is not mutually nearest, so no <movies>-level LCA.
        root, _movies, m1, m2 = build_tree()
        result = mlca(root, [matches(root, "alpha"), matches(root, "1990")])
        assert all(node.tag == "movie" for node in result)

    def test_empty_on_missing_keyword(self):
        root, *_ = build_tree()
        assert mlca(root, [matches(root, "zzz")]) == []

    def test_mlca_no_more_results_than_slca(self, mini_db):
        from repro.xmlview import build_xml_view
        from repro.xmlview.index import TreeTextIndex

        root = build_xml_view(mini_db)
        index = TreeTextIndex(root)
        for query in ["star wars", "tom hanks actor", "clooney crime"]:
            sets = index.match_sets(query)
            if any(not s for s in sets):
                continue
            assert len(mlca(root, sets)) <= len(slca(root, sets))

"""Tests for SQL-to-plan compilation and end-to-end execution."""

import pytest

from repro.errors import PlanError, SqlSyntaxError, UnknownColumnError, UnknownTableError
from repro.relational.sql import run_sql


class TestSingleTable:
    def test_select_star(self, mini_db):
        rows = run_sql("SELECT * FROM movie", mini_db)
        assert len(rows) == 3 and "movie.title" in rows[0]

    def test_projection(self, mini_db):
        rows = run_sql("SELECT movie.title FROM movie", mini_db)
        assert all(set(r) == {"movie.title"} for r in rows)

    def test_where_filter(self, mini_db):
        rows = run_sql("SELECT * FROM movie WHERE movie.year > 1990", mini_db)
        assert len(rows) == 2

    def test_alias_rename(self, mini_db):
        rows = run_sql("SELECT movie.title AS t FROM movie LIMIT 1", mini_db)
        assert rows == [{"t": "Star Wars"}]

    def test_order_and_limit(self, mini_db):
        rows = run_sql(
            "SELECT movie.title FROM movie ORDER BY movie.rating DESC LIMIT 1",
            mini_db)
        assert rows[0]["movie.title"] == "Star Wars"

    def test_distinct(self, mini_db):
        rows = run_sql("SELECT DISTINCT cast.role FROM cast", mini_db)
        assert len(rows) == 2


class TestJoins:
    def test_paper_style_implicit_join(self, mini_db):
        rows = run_sql(
            "SELECT person.name, movie.title FROM person, cast, movie "
            "WHERE cast.movie_id = movie.id AND cast.person_id = person.id",
            mini_db)
        assert len(rows) == 4

    def test_join_with_parameter(self, mini_db):
        rows = run_sql(
            'SELECT person.name FROM person, cast, movie '
            'WHERE cast.movie_id = movie.id AND cast.person_id = person.id '
            'AND movie.title = "$x"',
            mini_db, {"x": "ocean's eleven"})
        names = {r["person.name"] for r in rows}
        assert names == {"George Clooney", "Tom Hanks"}

    def test_self_join_with_aliases(self, mini_db):
        rows = run_sql(
            "SELECT p2.name FROM person p1, cast c1, movie, cast c2, person p2 "
            "WHERE c1.person_id = p1.id AND c1.movie_id = movie.id "
            "AND c2.movie_id = movie.id AND c2.person_id = p2.id "
            "AND p1.name = 'george clooney' AND NOT p2.name = 'george clooney'",
            mini_db)
        assert {r["p2.name"] for r in rows} == {"Tom Hanks"}

    def test_missing_join_predicate_uses_fk_metadata(self, mini_db):
        # No explicit join condition: the compiler falls back to FK edges.
        rows = run_sql(
            "SELECT genre.name FROM movie_genre, genre "
            "WHERE genre.name = 'drama'",
            mini_db)
        assert len(rows) == 1

    def test_disconnected_tables_cross_product(self, mini_db):
        rows = run_sql("SELECT person.name, genre.name FROM person, genre",
                       mini_db)
        assert len(rows) == 9  # 3 x 3


class TestAggregates:
    def test_count_star(self, mini_db):
        assert run_sql("SELECT COUNT(*) AS n FROM movie", mini_db) == [{"n": 3}]

    def test_group_by_with_order(self, mini_db):
        rows = run_sql(
            "SELECT cast.movie_id, COUNT(*) AS n FROM cast "
            "GROUP BY cast.movie_id ORDER BY cast.movie_id",
            mini_db)
        assert [r["n"] for r in rows] == [1, 1, 2]

    def test_aggregate_with_join(self, mini_db):
        rows = run_sql(
            "SELECT COUNT(*) AS n FROM cast, person "
            "WHERE cast.person_id = person.id AND person.name = 'tom hanks'",
            mini_db)
        assert rows == [{"n": 2}]

    def test_non_grouped_column_rejected(self, mini_db):
        with pytest.raises(SqlSyntaxError):
            run_sql("SELECT movie.title, COUNT(*) FROM movie", mini_db)

    def test_star_with_aggregate_rejected(self, mini_db):
        with pytest.raises(SqlSyntaxError):
            run_sql("SELECT *, COUNT(*) FROM movie", mini_db)


class TestValidation:
    def test_unknown_table(self, mini_db):
        with pytest.raises(UnknownTableError):
            run_sql("SELECT * FROM nope", mini_db)

    def test_unknown_column(self, mini_db):
        with pytest.raises(UnknownColumnError):
            run_sql("SELECT movie.nope FROM movie", mini_db)

    def test_column_outside_from(self, mini_db):
        with pytest.raises(PlanError):
            run_sql("SELECT person.name FROM movie", mini_db)

    def test_where_column_validated(self, mini_db):
        with pytest.raises(UnknownColumnError):
            run_sql("SELECT * FROM movie WHERE movie.bogus = 1", mini_db)

    def test_duplicate_binding_rejected(self, mini_db):
        with pytest.raises(SqlSyntaxError):
            run_sql("SELECT * FROM movie, movie", mini_db)

    def test_aliases_allow_same_table_twice(self, mini_db):
        rows = run_sql("SELECT a.title, b.title FROM movie a, movie b "
                       "WHERE a.id = b.id", mini_db)
        assert len(rows) == 3


class TestPredicatePushdown:
    def test_filter_pushed_below_join(self, mini_db):
        from repro.relational.algebra import Filter, HashJoin
        from repro.relational.sql import compile_select, parse_select

        stmt = parse_select(
            "SELECT * FROM cast, movie WHERE cast.movie_id = movie.id "
            "AND movie.year = 1977")
        plan = compile_select(stmt, mini_db)
        # Walk the plan: the year filter must sit below the hash join.
        def find_join(node):
            if isinstance(node, HashJoin):
                return node
            for child in node.children():
                found = find_join(child)
                if found:
                    return found
            return None

        join = find_join(plan)
        assert join is not None

        def subtree_has_filter(node):
            if isinstance(node, Filter) and not isinstance(node.child, HashJoin):
                return True
            return any(subtree_has_filter(c) for c in node.children())

        assert subtree_has_filter(join.left) or subtree_has_filter(join.right)

"""Integration tests for the asyncio HTTP serving front end
(``repro.serve.server`` + ``repro.serve.client``): routing and error
codes over a real socket, micro-batch formation, backpressure and
quota 429s, graceful shutdown mid-batch, and the property that answers
served over HTTP are identical to in-process answers."""

import asyncio
import http.client
import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine
from repro.core.store import CollectionStore, LoadOptions, SaveOptions
from repro.datasets.querylog import SessionLogGenerator
from repro.serve.api import SearchRequest
from repro.serve.client import (
    SearchClient,
    ServerBusy,
    build_session_workload,
    run_load_in_process,
)
from repro.serve.server import SearchServer, ServerConfig


@pytest.fixture(scope="module")
def serve_collection(imdb_db):
    return QunitCollection(imdb_db, imdb_expert_qunits(),
                           max_instances_per_definition=40)


@pytest.fixture(scope="module")
def workload_queries(imdb_db):
    generator = SessionLogGenerator(imdb_db, seed=5)
    sessions = generator.generate(25)
    return sorted({query for session in sessions
                   for query in session.queries})[:15]


@pytest.fixture(scope="module")
def live_server(serve_collection):
    """One server on a background event-loop thread, so synchronous
    ``http.client`` (and hypothesis) can talk to it per example."""
    engine = QunitSearchEngine(serve_collection, flavor="expert")
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = SearchServer(engine, ServerConfig(window=0.002, max_batch=8))
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=120)
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.close(),
                                         loop).result(timeout=120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


def _request(server, method, path, payload=None):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else {}
    finally:
        connection.close()


class TestRouting:
    def test_healthz(self, live_server):
        status, data = _request(live_server, "GET", "/healthz")
        assert (status, data) == (200, {"status": "ok"})

    def test_wrong_method_is_405(self, live_server):
        assert _request(live_server, "POST", "/healthz",
                        {})[0] == 405
        assert _request(live_server, "GET", "/search")[0] == 405

    def test_unknown_route_is_404(self, live_server):
        assert _request(live_server, "GET", "/nope")[0] == 404

    def test_malformed_json_is_400(self, live_server):
        host, port = live_server.address
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            connection.request("POST", "/search", body="{not json",
                               headers={"Content-Type": "application/json"})
            assert connection.getresponse().status == 400
        finally:
            connection.close()

    def test_unknown_request_field_is_400(self, live_server):
        status, data = _request(live_server, "POST", "/search",
                                {"query": "x", "bogus": 1})
        assert status == 400
        assert "bogus" in data["error"]

    def test_missing_query_is_400(self, live_server):
        status, data = _request(live_server, "POST", "/search",
                                {"limit": 3})
        assert status == 400 and "query" in data["error"]

    def test_malformed_batch_is_400(self, live_server):
        status, _data = _request(live_server, "POST", "/search/batch",
                                 {"requests": "not a list"})
        assert status == 400

    def test_search_and_stats(self, live_server, workload_queries):
        status, data = _request(live_server, "POST", "/search",
                                {"query": workload_queries[0], "limit": 3})
        assert status == 200
        assert data["query"] == workload_queries[0]
        assert len(data["answers"]) <= 3
        status, stats = _request(live_server, "GET", "/stats")
        assert status == 200
        assert stats["requests"] >= 1 and stats["served"] >= 1
        assert stats["batches"] >= 1

    def test_batch_route(self, live_server, workload_queries):
        payload = {"requests": [{"query": query, "limit": 2}
                                for query in workload_queries[:3]]}
        status, data = _request(live_server, "POST", "/search/batch",
                                payload)
        assert status == 200
        assert [entry["query"] for entry in data["responses"]] \
            == workload_queries[:3]

    def test_keep_alive_connection_reuse(self, live_server):
        host, port = live_server.address
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            for _ in range(2):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()

    def test_keep_alive_reuse_across_search_requests(self, live_server,
                                                     workload_queries):
        # Sequential POST /search requests (and a /stats probe) ride the
        # same TCP connection; every response must leave the stream
        # positioned at the next request boundary.
        host, port = live_server.address
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            for query in workload_queries[:3]:
                connection.request(
                    "POST", "/search", body=json.dumps({"query": query}),
                    headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") != "close"
                data = json.loads(response.read())
                assert data["query"] == query
            connection.request("GET", "/stats")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["served"] >= 3
        finally:
            connection.close()


class TestHttpMatchesInProcess:
    """The core serving property: batched-over-HTTP answers are
    identical, field by field, to in-process engine answers."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_answers_identical(self, live_server, serve_collection,
                               workload_queries, data):
        query = data.draw(st.sampled_from(workload_queries))
        limit = data.draw(st.integers(min_value=1, max_value=8))
        explain = data.draw(st.booleans())
        request = SearchRequest(query=query, limit=limit, explain=explain)

        reference_engine = QunitSearchEngine(serve_collection,
                                             flavor="expert")
        [reference] = reference_engine.execute([request])

        async def over_http():
            host, port = live_server.address
            async with SearchClient(host, port) as client:
                return await client.search(request)

        served = asyncio.run(over_http())
        assert served.query == reference.query
        assert served.answers == reference.answers
        if explain:
            assert served.explanation is not None
            assert served.explanation.candidates \
                == reference.explanation.candidates
            assert served.explanation.answers \
                == reference.explanation.answers
        else:
            assert served.explanation is None


def _start_server(collection, config, slow=None):
    """An engine + server pair (unstarted); ``slow`` wraps the batch
    runner with a delay or gate for tests that need in-flight batches."""
    engine = QunitSearchEngine(collection, flavor="expert")
    server = SearchServer(engine, config)
    if slow is not None:
        real = server.batcher.runner

        def gated(requests):
            slow()
            return real(requests)

        server.batcher.runner = gated
    return server


class TestServingBehavior:
    def test_concurrent_requests_form_one_batch(self, serve_collection,
                                                workload_queries):
        """Requests arriving within the window are served by a single
        engine call (the micro-batch), visible in /stats."""

        async def main():
            config = ServerConfig(window=0.3, max_batch=10)
            async with _start_server(serve_collection, config) as server:
                host, port = server.address

                async def one(query):
                    async with SearchClient(host, port) as client:
                        return await client.search(
                            SearchRequest(query=query, limit=3))

                responses = await asyncio.gather(
                    *(one(query) for query in workload_queries[:4]))
                return server.stats(), responses

        stats, responses = asyncio.run(main())
        assert len(responses) == 4
        assert stats["batches"] == 1
        assert stats["served"] == 4
        assert stats["mean_batch_size"] == pytest.approx(4.0)

    def test_backpressure_answers_429_with_retry_after(
            self, serve_collection, workload_queries):
        gate = threading.Event()

        async def main():
            config = ServerConfig(window=0.0, max_batch=1, queue_limit=1)
            async with _start_server(
                    serve_collection, config,
                    slow=lambda: gate.wait(timeout=10)) as server:
                host, port = server.address
                clients = [SearchClient(host, port) for _ in range(3)]
                try:
                    first = asyncio.ensure_future(clients[0].search(
                        SearchRequest(query=workload_queries[0])))
                    await asyncio.sleep(0.2)  # in the (gated) batch
                    second = asyncio.ensure_future(clients[1].search(
                        SearchRequest(query=workload_queries[1])))
                    await asyncio.sleep(0.2)  # fills the queue
                    with pytest.raises(ServerBusy) as excinfo:
                        await clients[2].search(
                            SearchRequest(query=workload_queries[2]))
                    assert excinfo.value.retry_after > 0
                    gate.set()
                    responses = await asyncio.gather(first, second)
                    return server.stats(), responses
                finally:
                    gate.set()
                    for client in clients:
                        await client.close()

        stats, responses = asyncio.run(main())
        assert len(responses) == 2
        assert stats["rejected"] == 1

    def test_quota_exhaustion_answers_429(self, serve_collection,
                                          workload_queries):
        async def main():
            config = ServerConfig(window=0.0, max_batch=1,
                                  quota_rate=0.001, quota_burst=1)
            async with _start_server(serve_collection, config) as server:
                host, port = server.address
                async with SearchClient(host, port) as client:
                    first = await client.search(SearchRequest(
                        query=workload_queries[0], client_id="greedy"))
                    with pytest.raises(ServerBusy) as excinfo:
                        await client.search(SearchRequest(
                            query=workload_queries[1], client_id="greedy"))
                    # An unrelated client is admitted normally.
                    other = await client.search(SearchRequest(
                        query=workload_queries[1], client_id="modest"))
                return first, excinfo.value, other, server.stats()

        first, busy, other, stats = asyncio.run(main())
        assert first.query == workload_queries[0]
        assert other.query == workload_queries[1]
        assert busy.retry_after > 0
        assert stats["quota_rejections"] == 1

    def test_retry_after_header_value_on_queue_exhaustion(
            self, serve_collection, workload_queries):
        # The overload 429 advertises max(4 * window, 0.05) seconds, so
        # with window=0 the header must read exactly "0.05".
        gate = threading.Event()

        async def main():
            config = ServerConfig(window=0.0, max_batch=1, queue_limit=1)
            async with _start_server(
                    serve_collection, config,
                    slow=lambda: gate.wait(timeout=10)) as server:
                host, port = server.address
                clients = [SearchClient(host, port) for _ in range(3)]
                try:
                    first = asyncio.ensure_future(clients[0].search(
                        SearchRequest(query=workload_queries[0])))
                    await asyncio.sleep(0.2)  # in the (gated) batch
                    second = asyncio.ensure_future(clients[1].search(
                        SearchRequest(query=workload_queries[1])))
                    await asyncio.sleep(0.2)  # fills the queue
                    status, data = await clients[2].request(
                        "POST", "/search",
                        {"query": workload_queries[2]})
                    gate.set()
                    await asyncio.gather(first, second)
                    return status, data
                finally:
                    gate.set()
                    for client in clients:
                        await client.close()

        status, data = asyncio.run(main())
        assert status == 429
        assert data["retry_after"] == "0.05"

    def test_retry_after_header_value_on_quota_exhaustion(
            self, serve_collection, workload_queries):
        # Quota 429s advertise the token-refill wait: burst 1 at 0.5/s
        # means the next token is ~2 s out when the second request lands
        # immediately after the first.
        async def main():
            config = ServerConfig(window=0.0, max_batch=1,
                                  quota_rate=0.5, quota_burst=1)
            async with _start_server(serve_collection, config) as server:
                host, port = server.address
                async with SearchClient(host, port) as client:
                    await client.search(SearchRequest(
                        query=workload_queries[0], client_id="greedy"))
                    return await client.request(
                        "POST", "/search",
                        {"query": workload_queries[1],
                         "client_id": "greedy"})

        status, data = asyncio.run(main())
        assert status == 429
        advertised = float(data["retry_after"])
        assert 1.0 < advertised <= 2.0

    def test_graceful_shutdown_completes_inflight_batch(
            self, serve_collection, workload_queries):
        """close() mid-batch: queued requests are still answered, and
        the listener is gone afterwards."""
        gate = threading.Event()

        async def main():
            config = ServerConfig(window=0.0, max_batch=1, queue_limit=8)
            server = _start_server(serve_collection, config,
                                   slow=lambda: gate.wait(timeout=10))
            await server.start()
            host, port = server.address
            clients = [SearchClient(host, port) for _ in range(3)]
            try:
                pending = [asyncio.ensure_future(client.search(
                    SearchRequest(query=query)))
                    for client, query in zip(clients, workload_queries)]
                await asyncio.sleep(0.3)  # one in flight, two queued
                closer = asyncio.ensure_future(server.close())
                await asyncio.sleep(0.1)
                gate.set()
                responses = await asyncio.gather(*pending)
                await closer
                with pytest.raises(OSError):
                    await asyncio.open_connection(host, port)
                return responses
            finally:
                gate.set()
                for client in clients:
                    await client.close()

        responses = asyncio.run(main())
        assert [response.query for response in responses] \
            == workload_queries[:3]

    def test_queued_timeout_answers_504(self, serve_collection,
                                        workload_queries):
        gate = threading.Event()

        async def main():
            config = ServerConfig(window=0.0, max_batch=1, queue_limit=8)
            async with _start_server(
                    serve_collection, config,
                    slow=lambda: gate.wait(timeout=10)) as server:
                host, port = server.address
                clients = [SearchClient(host, port) for _ in range(2)]
                try:
                    first = asyncio.ensure_future(clients[0].search(
                        SearchRequest(query=workload_queries[0])))
                    await asyncio.sleep(0.2)
                    status, data = await clients[1].request(
                        "POST", "/search",
                        SearchRequest(query=workload_queries[1],
                                      timeout=0.05).to_dict())
                    gate.set()
                    await first
                    return status, data, server.stats()
                finally:
                    gate.set()
                    for client in clients:
                        await client.close()

        status, data, stats = asyncio.run(main())
        assert status == 504
        assert stats["timeouts"] == 1


class TestHybridOverHttp:
    def test_per_request_strategy_override(self, live_server,
                                           workload_queries):
        status, data = _request(live_server, "POST", "/search",
                                {"query": workload_queries[0], "limit": 3,
                                 "strategy": "hybrid", "explain": True})
        assert status == 200
        assert data["explanation"]["strategy"] == "hybrid"

    def test_invalid_strategy_is_400(self, live_server):
        status, data = _request(live_server, "POST", "/search",
                                {"query": "x", "strategy": "bogus"})
        assert status == 400
        assert "strategy" in data["error"]

    def test_missing_vector_extents_serve_lexical_over_http(
            self, serve_collection, tmp_path):
        # A collection saved without vector extents, served over HTTP
        # with a hybrid request: 200, lexical answers, a fallback note
        # in the trace — never a 500.
        store = CollectionStore(tmp_path / "no-vectors")
        store.save(serve_collection, SaveOptions(vectors=False))
        loaded = store.load(serve_collection.database,
                            LoadOptions(lazy=False))
        # Free text that matches no definition, so serving it must run
        # flat IR retrieval (where the hybrid fallback fires); a
        # structurally-matched query would materialize its answers
        # without ever touching a searcher.
        query = "science fiction movies"

        async def main():
            config = ServerConfig(window=0.0, max_batch=4)
            async with _start_server(loaded, config) as server:
                host, port = server.address
                async with SearchClient(host, port) as client:
                    hybrid = await client.request(
                        "POST", "/search",
                        {"query": query, "limit": 3,
                         "strategy": "hybrid", "explain": True})
                    lexical = await client.request(
                        "POST", "/search", {"query": query, "limit": 3})
                return hybrid, lexical

        (status, data), (lex_status, lex_data) = asyncio.run(main())
        assert status == 200 and lex_status == 200
        assert data["answers"] == lex_data["answers"]
        assert any("no vector extents" in note
                   for note in data["explanation"]["notes"])


class TestSubprocessLoadClient:
    def test_fleet_runs_out_of_process(self, serve_collection,
                                       workload_queries):
        # The closed-loop fleet must complete from a child interpreter
        # (real external traffic) and ship its report back intact.
        workload = [workload_queries[:3], workload_queries[3:6]]

        async def main():
            config = ServerConfig(window=0.002, max_batch=8)
            async with _start_server(serve_collection, config) as server:
                host, port = server.address
                report = await run_load_in_process(host, port, workload,
                                                   limit=3)
                return report, server.stats()

        report, stats = asyncio.run(main())
        assert report.completed == 6
        assert report.errors == 0
        assert report.qps > 0
        assert stats["served"] >= 6


class TestLoadClientHelpers:
    def test_build_session_workload_preserves_session_order(self, imdb_db):
        generator = SessionLogGenerator(imdb_db, seed=6)
        sessions = generator.generate(10)
        streams = build_session_workload(sessions, 3)
        assert 1 <= len(streams) <= 3
        total = sum(len(stream) for stream in streams)
        assert total == sum(len(session.queries) for session in sessions)
        # Round-robin: stream 0 holds sessions 0, 3, 6, 9 concatenated.
        expected = [query for i in (0, 3, 6, 9)
                    for query in sessions[i].queries]
        assert streams[0] == expected

    def test_build_session_workload_validation(self, imdb_db):
        generator = SessionLogGenerator(imdb_db, seed=6)
        sessions = generator.generate(2)
        with pytest.raises(ValueError):
            build_session_workload(sessions, 0)
        with pytest.raises(ValueError):
            build_session_workload([], 4)

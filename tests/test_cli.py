"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_args(self):
        args = build_parser().parse_args(
            ["--scale", "0.1", "search", "star wars", "--limit", "2"])
        assert args.command == "search"
        assert args.query == "star wars"
        assert args.scale == 0.1
        assert args.limit == 2

    def test_invalid_flavor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "x", "--flavor", "bogus"])


class TestCommands:
    def test_search_prints_answers(self, capsys):
        code = main(["--scale", "0.1", "search", "star wars cast",
                     "--limit", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[movie.title] cast" in out
        assert "movie_full_credits" in out

    def test_search_no_answer_exit_code(self, capsys):
        code = main(["--scale", "0.1", "search", "zzzz qqqq"])
        assert code in (0, 1)  # empty -> 1; IR noise may return something

    def test_derive_lists_definitions(self, capsys):
        code = main(["--scale", "0.1", "derive", "--strategy", "schema_data",
                     "--k1", "2", "--k2", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "anchor=" in out

    def test_loganalysis(self, capsys):
        code = main(["--scale", "0.1", "loganalysis", "--unique", "150"])
        out = capsys.readouterr().out
        assert code == 0
        assert "single entity" in out
        assert "top templates" in out

    def test_evaluate_small(self, capsys):
        code = main(["--scale", "0.1", "evaluate", "--queries", "4",
                     "--raters", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 3" in out
        assert "theoretical-max" in out


class TestExplain:
    def test_explain_prints_stage_trace(self, capsys):
        code = main(["--scale", "0.1", "search", "star wars cast",
                     "--limit", "1", "--explain"])
        out = capsys.readouterr().out
        assert code == 0
        assert "stages   :" in out
        assert "plan     :" in out
        assert "retrieval: strategy=" in out
        assert "candidates:" in out

    def test_explain_shows_rejected_candidates(self, capsys):
        code = main(["--scale", "0.1", "search", "star wars cast",
                     "--limit", "1", "--explain"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rejected: below min match score" in out


class TestBatchFile:
    def test_batch_file_queries_run(self, capsys, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("star wars cast\n\ngeorge clooney\n")
        code = main(["--scale", "0.1", "search", "--batch-file", str(batch),
                     "--limit", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("query   :") == 2
        assert "star wars cast" in out
        assert "george clooney" in out

    def test_batch_file_combines_with_positional(self, capsys, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("george clooney\n")
        code = main(["--scale", "0.1", "search", "star wars cast",
                     "--batch-file", str(batch), "--limit", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("query   :") == 2

    def test_no_queries_at_all_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["--scale", "0.1", "search"])

    def test_load_accepts_batch_file(self, capsys, tmp_path):
        out_dir = str(tmp_path / "snap")
        assert main(["--scale", "0.1", "save", out_dir,
                     "--max-instances", "40"]) == 0
        capsys.readouterr()
        batch = tmp_path / "queries.txt"
        batch.write_text("star wars cast\ngeorge clooney\n")
        code = main(["--scale", "0.1", "load", out_dir,
                     "--batch-file", str(batch), "--limit", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("query   :") == 2


class TestBatchSearch:
    def test_multiple_queries_parse(self):
        args = build_parser().parse_args(
            ["search", "star wars", "tom hanks", "--limit", "2"])
        assert args.query == "star wars"
        assert args.more_queries == ["tom hanks"]

    def test_batch_prints_every_query_block(self, capsys):
        code = main(["--scale", "0.1", "search", "star wars cast",
                     "george clooney", "--limit", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("query   :") == 2
        assert "star wars cast" in out
        assert "george clooney" in out


class TestSaveLoad:
    def test_save_then_load_answers_queries(self, capsys, tmp_path):
        out_dir = str(tmp_path / "snap")
        code = main(["--scale", "0.1", "save", out_dir,
                     "--max-instances", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "saved collection" in out
        assert "definitions :" in out

        code = main(["--scale", "0.1", "load", out_dir, "star wars cast",
                     "--limit", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "loaded collection" in out
        assert "star wars cast" in out
        assert "movie_full_credits" in out

    def test_load_without_queries_prints_stats(self, capsys, tmp_path):
        out_dir = str(tmp_path / "snap")
        assert main(["--scale", "0.1", "save", out_dir,
                     "--max-instances", "40"]) == 0
        capsys.readouterr()
        code = main(["--scale", "0.1", "load", out_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "documents   :" in out

    def test_load_matches_direct_search(self, capsys, tmp_path):
        out_dir = str(tmp_path / "snap")
        assert main(["--scale", "0.1", "save", out_dir,
                     "--max-instances", "150"]) == 0
        capsys.readouterr()
        assert main(["--scale", "0.1", "search", "star wars cast",
                     "--limit", "2"]) == 0
        direct = capsys.readouterr().out
        assert main(["--scale", "0.1", "load", out_dir, "star wars cast",
                     "--limit", "2"]) == 0
        loaded = capsys.readouterr().out
        # Same ranked answers, scores included (the loaded path is
        # rank-identical), modulo the load-stats preamble.
        assert direct[direct.index("query   :"):] == \
               loaded[loaded.index("query   :"):]

    def test_sharded_search_matches_serial(self, capsys):
        assert main(["--scale", "0.1", "search", "star wars cast",
                     "--limit", "2"]) == 0
        serial = capsys.readouterr().out
        assert main(["--scale", "0.1", "search", "star wars cast",
                     "--limit", "2", "--shards", "2"]) == 0
        sharded = capsys.readouterr().out
        assert serial == sharded

    def test_shard_args_parse(self):
        args = build_parser().parse_args(
            ["search", "x", "--shards", "4", "--shard-mode", "process"])
        assert args.shards == 4
        assert args.shard_mode == "process"

    def test_load_rejects_missing_directory(self, tmp_path):
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError):
            main(["--scale", "0.1", "load", str(tmp_path / "missing")])

    def test_save_with_shards_persists_partitions(self, capsys, tmp_path):
        import json

        out_dir = str(tmp_path / "sharded")
        code = main(["--scale", "0.1", "save", out_dir,
                     "--max-instances", "40", "--shards", "2"])
        assert code == 0
        assert "shards      : 2" in capsys.readouterr().out
        manifest = json.loads(
            (tmp_path / "sharded" / "collection.json").read_text())
        assert manifest["shards"]["count"] == 2
        # Loading with the same shard count restores the partitions.
        assert main(["--scale", "0.1", "load", out_dir, "star wars cast",
                     "--shards", "2", "--shard-mode", "serial"]) == 0


class TestCompactCommand:
    def test_compact_directory(self, capsys, tmp_path):
        out_dir = str(tmp_path / "snap")
        assert main(["--scale", "0.1", "save", out_dir,
                     "--max-instances", "40"]) == 0
        capsys.readouterr()
        assert main(["compact", out_dir]) == 0
        out = capsys.readouterr().out
        assert "folded 0 delta segment(s)" in out
        # The directory still loads after compaction.
        assert main(["--scale", "0.1", "load", out_dir]) == 0

    def test_compact_single_journaled_file(self, capsys, tmp_path):
        from repro.ir.analysis import Analyzer
        from repro.ir.documents import Document
        from repro.ir.index import InvertedIndex
        from repro.ir.persist import SnapshotJournal, delta_segment_count

        path = tmp_path / "journal.snap"
        index = InvertedIndex(Analyzer(stem=False))
        index.add(Document.create("a", {"body": "star wars"}))
        SnapshotJournal(index, path)
        index.add(Document.create("b", {"body": "ocean"}))
        assert delta_segment_count(path) == 1
        assert main(["compact", str(path)]) == 0
        assert "folded 1 delta segment(s)" in capsys.readouterr().out
        assert delta_segment_count(path) == 0

    def test_compact_empty_directory(self, capsys, tmp_path):
        assert main(["compact", str(tmp_path)]) == 1
        assert "no snapshot files" in capsys.readouterr().out

"""Tests for the Table 1 user-study simulation."""

import pytest

from repro.eval.userstudy import (
    NEED_PROFILES,
    PAPER_SUMMARY,
    QUERY_TYPES,
    UserStudySimulator,
)


@pytest.fixture(scope="module")
def result():
    return UserStudySimulator(seed=31).run()


class TestShape:
    def test_query_count(self, result):
        assert result.total_queries == PAPER_SUMMARY["total_queries"]

    def test_five_users(self, result):
        users = {user for _n, _q, user in result.cells}
        assert users == {"a", "b", "c", "d", "e"}

    def test_each_user_five_distinct_needs(self, result):
        from collections import defaultdict

        per_user = defaultdict(list)
        for need, _q, user in result.cells:
            per_user[user].append(need)
        for user, needs in per_user.items():
            assert len(needs) == 5
            assert len(set(needs)) == 5

    def test_query_types_from_table1_columns(self, result):
        for _need, query_type, _user in result.cells:
            assert query_type in QUERY_TYPES


class TestPaperObservations:
    def test_many_to_many_mapping(self, result):
        assert result.is_many_to_many()

    def test_substantial_single_entity_share(self, result):
        # Paper: 10 of 25; allow simulation variance around it.
        singles = result.single_entity_queries()
        assert 5 <= len(singles) <= 15

    def test_most_single_entity_underspecified(self, result):
        singles = result.single_entity_queries()
        under = result.underspecified_single_entity()
        if singles:
            assert len(under) >= len(singles) * 0.4

    def test_formulation_distributions_sum_to_one(self):
        for need, (_pop, formulations) in NEED_PROFILES.items():
            total = sum(weight for _qt, weight in formulations)
            assert total == pytest.approx(1.0), need


class TestRendering:
    def test_render_contains_needs_and_users(self, result):
        rendered = result.render()
        assert "info. need" in rendered
        assert any(need in rendered for need in NEED_PROFILES)

    def test_deterministic(self):
        a = UserStudySimulator(seed=31).run()
        b = UserStudySimulator(seed=31).run()
        assert a.cells == b.cells

    def test_validation(self):
        with pytest.raises(ValueError):
            UserStudySimulator().run(n_users=0)
        with pytest.raises(ValueError):
            UserStudySimulator().run(needs_per_user=99)

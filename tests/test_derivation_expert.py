"""Tests for the expert qunit set."""

import pytest

from repro.core.derivation import imdb_expert_qunits


@pytest.fixture(scope="module")
def defs():
    return imdb_expert_qunits()


class TestSetShape:
    def test_unique_names(self, defs):
        names = [d.name for d in defs]
        assert len(names) == len(set(names))

    def test_all_marked_expert(self, defs):
        assert all(d.source == "expert" for d in defs)

    def test_covers_imdb_page_types(self, defs):
        names = {d.name for d in defs}
        assert {"movie_main_page", "movie_full_credits", "person_main_page",
                "person_filmography", "movie_awards", "top_charts",
                "coactors", "genre_movies"} <= names

    def test_utilities_are_priors(self, defs):
        by_name = {d.name: d for d in defs}
        assert by_name["movie_main_page"].utility > by_name["coactors"].utility
        assert all(0.0 < d.utility <= 1.0 for d in defs)

    def test_sec2_example_has_conversion(self, defs):
        credits = next(d for d in defs if d.name == "movie_full_credits")
        assert credits.conversion is not None
        assert "<foreach:tuple>" in credits.conversion


class TestAgainstDatabase:
    def test_all_definitions_parse_and_bind(self, imdb_db, defs):
        for definition in defs:
            bindings = definition.bindings(imdb_db, limit=2)
            assert bindings, definition.name

    def test_all_definitions_materialize(self, imdb_db, defs):
        for definition in defs:
            bindings = definition.bindings(imdb_db, limit=3)
            produced = [definition.materialize(imdb_db, b) for b in bindings]
            assert any(not i.is_empty for i in produced) or \
                definition.name == "movie_alternate_titles", definition.name

    def test_full_credits_instance_content(self, imdb_db, defs):
        credits = next(d for d in defs if d.name == "movie_full_credits")
        instance = credits.materialize(imdb_db, {"x": "Star Wars"})
        assert "Mark Hamill" in instance.text()
        assert "<cast movie=\"Star Wars\">" in instance.markup()

    def test_coactors_excludes_self(self, imdb_db, defs):
        coactors = next(d for d in defs if d.name == "coactors")
        instance = coactors.materialize(imdb_db, {"x": "George Clooney"})
        names = {row["p2.name"] for row in instance.rows}
        assert "George Clooney" not in names
        assert names  # has co-actors

    def test_top_charts_sorted(self, imdb_db, defs):
        charts = next(d for d in defs if d.name == "top_charts")
        instance = charts.materialize(imdb_db, {})
        ratings = [row["movie.rating"] for row in instance.rows]
        assert ratings == sorted(ratings, reverse=True)
        assert len(ratings) <= 25

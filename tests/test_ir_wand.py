"""Unit tests for document-at-a-time WAND/block-max retrieval
(``repro.ir.wand``) and its strategy plumbing through Searcher,
ShardedTopK, the collection, and the CLI."""

import pickle

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.retrieval import Searcher
from repro.ir.scoring import Bm25Scorer, PriorWeightedScorer, TfIdfScorer
from repro.ir.topk import topk_scores
from repro.ir.wand import (
    AUTO_WAND_MIN_TERMS,
    STRATEGIES,
    PostingCursor,
    resolve_strategy,
    retrieve,
    wand_scores,
)


def build_index(rows):
    index = InvertedIndex(Analyzer(stem=False))
    for doc_id, body in rows:
        index.add(Document.create(doc_id, {"body": body}))
    return index


@pytest.fixture()
def snapshot():
    rows = [
        ("d0", "apple banana cherry"),
        ("d1", "apple apple banana"),
        ("d2", "cherry date elderberry"),
        ("d3", "apple banana cherry date elderberry"),
        ("d4", "banana banana banana"),
        ("d5", "fig"),
        ("d6", "apple cherry"),
        ("d7", "date date banana"),
    ]
    return build_index(rows).snapshot()


class TestPostingCursor:
    def make(self):
        return PostingCursor(0, ("a", "c", "f", "k"), (1.0, 2.0, 0.5, 3.0),
                             3.0)

    def test_initial_state(self):
        cursor = self.make()
        assert cursor.doc == "a"
        assert cursor.contribution == 1.0
        assert not cursor.exhausted
        assert len(cursor) == 4

    def test_advance_walks_every_posting(self):
        cursor = self.make()
        seen = [cursor.doc]
        while cursor.advance():
            seen.append(cursor.doc)
        assert seen == ["a", "c", "f", "k"]
        assert cursor.exhausted
        assert len(cursor) == 0

    def test_seek_skips_forward_only(self):
        cursor = self.make()
        assert cursor.seek("d")
        assert cursor.doc == "f"
        # Seeking backwards never rewinds (binary search starts at the
        # current position).
        assert cursor.seek("a")
        assert cursor.doc == "f"

    def test_seek_to_exact_doc(self):
        cursor = self.make()
        assert cursor.seek("c")
        assert cursor.doc == "c"
        assert cursor.contribution == 2.0

    def test_seek_past_end_exhausts(self):
        cursor = self.make()
        assert not cursor.seek("z")
        assert cursor.exhausted

    def test_block_bound_without_blocks_is_term_bound(self):
        assert self.make().block_bound() == 3.0

    def test_block_bound_with_blocks(self):
        cursor = PostingCursor(0, ("a", "c", "f", "k"), (1.0, 2.0, 0.5, 3.0),
                               3.0, blocks=(2.0, 3.0), block_size=2)
        assert cursor.block_bound() == 2.0
        cursor.seek("f")
        assert cursor.block_bound() == 3.0


class TestResolveStrategy:
    def test_explicit_strategies_pass_through(self):
        for strategy in ("maxscore", "wand", "blockmax"):
            assert resolve_strategy(strategy, ["a"] * 10) == strategy

    def test_auto_picks_by_query_length(self):
        short = ["t"] * (AUTO_WAND_MIN_TERMS - 1)
        long = ["t"] * AUTO_WAND_MIN_TERMS
        assert resolve_strategy("auto", short) == "maxscore"
        assert resolve_strategy("auto", long) == "wand"

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="strategy"):
            resolve_strategy("bogus", ["a"])

    def test_strategies_constant_covers_auto(self):
        assert set(STRATEGIES) == {"auto", "maxscore", "wand", "blockmax",
                                   "hybrid"}


class TestWandScores:
    @pytest.mark.parametrize("block_size", [0, 1, 2, 64])
    @pytest.mark.parametrize("query", [
        "apple", "apple banana", "banana cherry date elderberry",
        "apple apple banana", "missing", "apple missing fig",
    ])
    @pytest.mark.parametrize("limit", [1, 3, 100])
    def test_identical_to_maxscore(self, snapshot, query, limit, block_size):
        terms = snapshot.analyzer.tokens(query)
        for scorer in (Bm25Scorer(), TfIdfScorer(), Bm25Scorer(0.5, 0.1)):
            assert wand_scores(snapshot, scorer, terms, limit,
                               block_size=block_size) == \
                topk_scores(snapshot, scorer, terms, limit)

    def test_empty_terms(self, snapshot):
        assert wand_scores(snapshot, Bm25Scorer(), [], 5) == []

    def test_zero_limit(self, snapshot):
        assert wand_scores(snapshot, Bm25Scorer(), ["apple"], 0) == []

    def test_unknown_terms_only(self, snapshot):
        assert wand_scores(snapshot, Bm25Scorer(), ["zzz", "qqq"], 5) == []

    def test_negative_block_size_raises(self, snapshot):
        with pytest.raises(ValueError, match="block_size"):
            wand_scores(snapshot, Bm25Scorer(), ["apple"], 5, block_size=-1)

    def test_prior_weighted_scorer(self, snapshot):
        scorer = PriorWeightedScorer(
            Bm25Scorer(), {"d1": 3.0, "d4": 0.5}, default=1.0)
        terms = ["apple", "banana", "cherry", "date"]
        assert wand_scores(snapshot, scorer, terms, 4) == \
            topk_scores(snapshot, scorer, terms, 4)

    def test_duplicate_score_tie_break(self):
        # Identical documents score identically; ranking must fall back
        # to ascending doc_id, exactly like the other paths.
        snapshot = build_index(
            [(f"d{i}", "same words here") for i in range(9)]).snapshot()
        ranked = wand_scores(snapshot, Bm25Scorer(), ["same", "words"], 4)
        assert [doc_id for doc_id, _ in ranked] == ["d0", "d1", "d2", "d3"]
        assert ranked == topk_scores(snapshot, Bm25Scorer(),
                                     ["same", "words"], 4)

    def test_retrieve_dispatches_every_strategy(self, snapshot):
        terms = ["apple", "banana", "cherry", "date"]
        expected = topk_scores(snapshot, Bm25Scorer(), terms, 5)
        for strategy in STRATEGIES:
            assert retrieve(snapshot, Bm25Scorer(), terms, 5,
                            strategy) == expected

    def test_retrieve_rejects_unknown_strategy(self, snapshot):
        with pytest.raises(ValueError, match="strategy"):
            retrieve(snapshot, Bm25Scorer(), ["apple"], 5, "bogus")


class TestBlockBoundsCache:
    def test_blocks_cap_their_ranges(self, snapshot):
        scorer = Bm25Scorer()
        plan = snapshot.term_contributions(scorer, "banana")
        blocks = snapshot.term_block_bounds(scorer, "banana", 2)
        assert len(blocks) == (len(plan.contributions) + 1) // 2
        for i, cap in enumerate(blocks):
            chunk = plan.contributions[i * 2:(i + 1) * 2]
            assert cap == max(chunk)

    def test_cached_per_scorer_term_and_size(self, snapshot):
        scorer = Bm25Scorer()
        first = snapshot.term_block_bounds(scorer, "banana", 2)
        assert snapshot.term_block_bounds(scorer, "banana", 2) is first
        assert snapshot.term_block_bounds(scorer, "banana", 3) is not first
        # Equal-parameter scorers share entries (value-based cache keys).
        assert snapshot.term_block_bounds(Bm25Scorer(), "banana", 2) is first

    def test_unknown_term_yields_empty(self, snapshot):
        assert snapshot.term_block_bounds(Bm25Scorer(), "zzz", 4) == ()

    def test_non_positive_block_size_raises(self, snapshot):
        with pytest.raises(ValueError, match="block_size"):
            snapshot.term_block_bounds(Bm25Scorer(), "banana", 0)

    def test_pickle_drops_block_cache(self, snapshot):
        snapshot.term_block_bounds(Bm25Scorer(), "banana", 2)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone._block_bounds == {}

    def test_new_snapshot_after_add_starts_cold(self):
        index = build_index([("d0", "apple banana")])
        old = index.snapshot()
        old.term_block_bounds(Bm25Scorer(), "apple", 2)
        index.add(Document.create("d1", {"body": "apple apple"}))
        fresh = index.snapshot()
        assert fresh is not old
        assert fresh._block_bounds == {}
        # The old snapshot keeps serving its frozen contents.
        assert len(old.term_block_bounds(Bm25Scorer(), "apple", 2)) == 1


class TestPruneBound:
    """prune_bound must never overestimate the raw-space inverse of
    ceiling: ceiling(raw) < score for every raw < prune_bound(score)."""

    def probe(self, scorer, snapshot, score):
        bound = scorer.prune_bound(snapshot, score)
        assert bound is not None
        for fraction in (0.5, 0.9, 0.999, 0.9999999999):
            raw = bound * fraction
            assert scorer.ceiling(snapshot, raw) < score

    def test_bm25_identity(self, snapshot):
        assert Bm25Scorer().prune_bound(snapshot, 2.5) == 2.5

    def test_tfidf_inverse_is_conservative(self, snapshot):
        self.probe(TfIdfScorer(), snapshot, 1.7)

    def test_prior_inverse_is_conservative(self, snapshot):
        scorer = PriorWeightedScorer(TfIdfScorer(), {"d0": 7.0}, default=0.5)
        self.probe(scorer, snapshot, 1.7)

    def test_base_scorer_has_no_inverse(self, snapshot):
        from repro.ir.scoring import Scorer

        class Custom(Scorer):
            def ceiling(self, snap, raw):
                return raw * 2.0

        assert Custom().prune_bound(snapshot, 1.0) is None


class TestSearcherStrategy:
    def test_invalid_strategy_rejected(self, snapshot):
        with pytest.raises(ValueError, match="strategy"):
            Searcher(snapshot, strategy="bogus")

    @pytest.mark.parametrize(
        "strategy", [s for s in STRATEGIES if s != "hybrid"])
    def test_search_matches_exhaustive(self, snapshot, strategy):
        searcher = Searcher(snapshot, strategy=strategy, cache_size=0)
        for query in ("apple banana cherry date", "banana", ""):
            fast = [(h.doc_id, h.score) for h in searcher.search(query, 5)]
            slow = [(h.doc_id, h.score)
                    for h in searcher.search_exhaustive(query, 5)]
            assert fast == slow

    def test_hybrid_weight_zero_matches_exhaustive(self, snapshot):
        # With the vector term weighted out, hybrid degenerates to the
        # pure lexical ranking — rank AND score identical.
        searcher = Searcher(snapshot, strategy="hybrid", cache_size=0,
                            vector_weight=0.0)
        for query in ("apple banana cherry date", "banana", ""):
            fast = [(h.doc_id, h.score) for h in searcher.search(query, 5)]
            slow = [(h.doc_id, h.score)
                    for h in searcher.search_exhaustive(query, 5)]
            assert fast == slow

    def test_hybrid_recovers_misspelled_query(self, snapshot):
        # A query whose tokens match nothing lexically can still surface
        # documents through char n-gram similarity — the quality delta
        # hybrid exists for.  "aple banan" shares no index term, so the
        # lexical ranking is empty; the fused ranking is not.
        lexical = Searcher(snapshot, strategy="auto", cache_size=0)
        assert lexical.search("aple banan", 5) == []
        hybrid = Searcher(snapshot, strategy="hybrid", cache_size=0)
        hits = hybrid.search("aple banan", 5)
        assert hits
        assert {h.doc_id for h in hits} <= {f"d{i}" for i in range(8)}

    @pytest.mark.parametrize("strategy", ["wand", "blockmax", "auto"])
    def test_sharded_search_many_matches_serial(self, snapshot, strategy):
        queries = ["apple banana cherry date", "banana fig", "date", ""]
        serial = Searcher(snapshot, strategy="maxscore", cache_size=0)
        expected = [[(h.doc_id, h.score) for h in hits]
                    for hits in serial.search_many(queries, 5)]
        with Searcher(snapshot, strategy=strategy, shards=3,
                      parallelism="serial", cache_size=0) as sharded:
            got = [[(h.doc_id, h.score) for h in hits]
                   for hits in sharded.search_many(queries, 5)]
        assert got == expected

    def test_collection_threads_strategy_to_searchers(self):
        from repro.core import QunitCollection
        from repro.core.derivation import imdb_expert_qunits
        from repro.datasets.imdb import generate_imdb

        db = generate_imdb(scale=0.1, seed=7)
        collection = QunitCollection(db, imdb_expert_qunits(),
                                     max_instances_per_definition=20,
                                     strategy="wand")
        assert collection.searcher().strategy == "wand"
        assert collection.definition_searcher(
            next(iter(collection.definitions))).strategy == "wand"


class TestCliStrategy:
    def test_search_and_load_accept_strategy(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["search", "q", "--strategy", "blockmax"])
        assert args.strategy == "blockmax"
        args = parser.parse_args(["load", "dir", "--strategy", "wand"])
        assert args.strategy == "wand"

    def test_bench_diff_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench-diff", "old", "new", "--threshold", "0.5"])
        assert args.command == "bench-diff"
        assert args.threshold == 0.5

"""The perf-regression gate (``repro.bench.regression`` +
``benchmarks/check_regression.py`` + ``repro bench-diff``) must catch a
real slowdown and stay quiet on a clean run."""

import json
import shutil
from pathlib import Path

import pytest

from repro.bench.regression import (
    DEFAULT_THRESHOLD,
    TRACKED_METRICS,
    compare_dirs,
    compare_reports,
    main,
    metric_value,
    render_comparison,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINES = REPO_ROOT / "benchmarks" / "baselines"


def _write(path: Path, data: dict) -> None:
    path.write_text(json.dumps(data), encoding="utf-8")


@pytest.fixture()
def dirs(tmp_path):
    baseline_dir = tmp_path / "baseline"
    current_dir = tmp_path / "current"
    baseline_dir.mkdir()
    current_dir.mkdir()
    report = {"cold_start_s": 2.0, "cold_start_speedup": 10.0}
    _write(baseline_dir / "BENCH_cold_start.json", report)
    _write(current_dir / "BENCH_cold_start.json", dict(report))
    return baseline_dir, current_dir


class TestMetricValue:
    def test_flat_and_nested_paths(self):
        report = {"a": 1.5, "routing": {"routed_s": 0.25}}
        assert metric_value(report, "a") == 1.5
        assert metric_value(report, "routing.routed_s") == 0.25

    def test_missing_and_non_numeric_raise(self):
        with pytest.raises(KeyError):
            metric_value({}, "a")
        with pytest.raises(KeyError):
            metric_value({"a": "fast"}, "a")
        with pytest.raises(KeyError):
            metric_value({"a": True}, "a")


class TestCompareReports:
    def test_equal_runs_pass(self):
        report = {"t_s": 1.0}
        comparisons = compare_reports("f.json", report, dict(report),
                                      {"t_s": "lower"})
        assert [c.regressed for c in comparisons] == [False]

    def test_lower_is_better_direction(self):
        base = {"t_s": 1.0}
        slower = compare_reports("f.json", base, {"t_s": 1.3},
                                 {"t_s": "lower"})
        faster = compare_reports("f.json", base, {"t_s": 0.5},
                                 {"t_s": "lower"})
        assert slower[0].regressed
        assert not faster[0].regressed

    def test_higher_is_better_direction(self):
        base = {"speedup": 10.0}
        worse = compare_reports("f.json", base, {"speedup": 5.0},
                                {"speedup": "higher"})
        better = compare_reports("f.json", base, {"speedup": 20.0},
                                 {"speedup": "higher"})
        assert worse[0].regressed
        assert not better[0].regressed

    def test_higher_direction_trips_at_documented_point(self):
        # Documented contract: regression when
        # current < baseline / (1 + threshold).
        base = {"speedup": 10.0}
        just_inside = compare_reports(
            "f.json", base, {"speedup": 10.0 / 1.25}, {"speedup": "higher"},
            threshold=0.25)
        just_outside = compare_reports(
            "f.json", base, {"speedup": 10.0 / 1.26}, {"speedup": "higher"},
            threshold=0.25)
        assert not just_inside[0].regressed
        assert just_outside[0].regressed

    def test_higher_direction_zero_current_is_regression(self):
        comparisons = compare_reports("f.json", {"speedup": 10.0},
                                      {"speedup": 0.0},
                                      {"speedup": "higher"})
        assert comparisons[0].regressed

    def test_within_threshold_passes(self):
        base = {"t_s": 1.0}
        ok = compare_reports("f.json", base, {"t_s": 1.2}, {"t_s": "lower"},
                             threshold=DEFAULT_THRESHOLD)
        assert not ok[0].regressed

    def test_metric_missing_from_current_is_regression(self):
        comparisons = compare_reports("f.json", {"t_s": 1.0}, {},
                                      {"t_s": "lower"})
        assert comparisons[0].regressed
        assert "missing" in comparisons[0].note

    def test_metric_missing_from_baseline_is_skipped(self):
        comparisons = compare_reports("f.json", {}, {"t_s": 1.0},
                                      {"t_s": "lower"})
        assert not comparisons[0].regressed
        assert "no baseline" in comparisons[0].note


class TestCompareDirs:
    def test_clean_run_passes(self, dirs):
        baseline_dir, current_dir = dirs
        comparisons = compare_dirs(baseline_dir, current_dir)
        assert comparisons
        assert not any(c.regressed for c in comparisons)

    def test_synthetic_2x_slowdown_fails(self, dirs):
        # The acceptance scenario: copy the baseline, inject a 2x
        # slowdown into the copy, and the checker must exit nonzero.
        baseline_dir, current_dir = dirs
        path = current_dir / "BENCH_cold_start.json"
        report = json.loads(path.read_text())
        report["cold_start_s"] *= 2.0
        _write(path, report)
        comparisons = compare_dirs(baseline_dir, current_dir)
        regressed = [c for c in comparisons if c.regressed]
        assert [c.metric for c in regressed] == ["cold_start_s"]
        assert main([str(baseline_dir), str(current_dir)]) == 1

    def test_missing_current_report_fails(self, dirs):
        baseline_dir, current_dir = dirs
        (current_dir / "BENCH_cold_start.json").unlink()
        comparisons = compare_dirs(baseline_dir, current_dir)
        assert any(c.regressed and "missing" in c.note for c in comparisons)

    def test_corrupt_current_report_fails(self, dirs):
        baseline_dir, current_dir = dirs
        (current_dir / "BENCH_cold_start.json").write_text("{oops")
        comparisons = compare_dirs(baseline_dir, current_dir)
        assert any(c.regressed and "JSON" in c.note for c in comparisons)

    def test_threshold_is_respected(self, dirs):
        baseline_dir, current_dir = dirs
        path = current_dir / "BENCH_cold_start.json"
        report = json.loads(path.read_text())
        report["cold_start_s"] *= 2.0
        _write(path, report)
        # A 2x slowdown passes a 150% threshold, fails the default.
        assert main([str(baseline_dir), str(current_dir),
                     "--threshold", "1.5"]) == 0
        assert main([str(baseline_dir), str(current_dir)]) == 1


class TestCommittedBaselines:
    def test_baselines_exist_for_every_tracked_report(self):
        for file_name in TRACKED_METRICS:
            assert (BASELINES / file_name).exists(), (
                f"benchmarks/baselines/{file_name} is not committed")

    def test_baselines_carry_every_tracked_metric(self):
        for file_name, metrics in TRACKED_METRICS.items():
            report = json.loads(
                (BASELINES / file_name).read_text(encoding="utf-8"))
            for metric in metrics:
                metric_value(report, metric)  # raises if absent

    def test_baselines_compare_clean_against_themselves(self, tmp_path):
        current = tmp_path / "current"
        shutil.copytree(BASELINES, current)
        comparisons = compare_dirs(BASELINES, current)
        assert comparisons
        assert not any(c.regressed for c in comparisons)


class TestEntryPoints:
    def test_main_prints_table_and_passes(self, dirs, capsys):
        baseline_dir, current_dir = dirs
        assert main([str(baseline_dir), str(current_dir)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "cold_start_s" in out

    def test_render_mentions_regressions(self, dirs):
        baseline_dir, current_dir = dirs
        path = current_dir / "BENCH_cold_start.json"
        report = json.loads(path.read_text())
        report["cold_start_s"] *= 3.0
        _write(path, report)
        text = render_comparison(compare_dirs(baseline_dir, current_dir))
        assert "REGRESSED" in text
        assert "FAIL" in text

    def test_cli_bench_diff_subcommand(self, dirs, capsys):
        from repro.cli import main as cli_main

        baseline_dir, current_dir = dirs
        assert cli_main(["bench-diff", str(baseline_dir),
                         str(current_dir)]) == 0
        assert "PASS" in capsys.readouterr().out
        path = current_dir / "BENCH_cold_start.json"
        report = json.loads(path.read_text())
        report["cold_start_s"] *= 2.0
        _write(path, report)
        assert cli_main(["bench-diff", str(baseline_dir),
                         str(current_dir)]) == 1

    def test_check_regression_script_wrapper(self):
        # The CI wrapper must exist and point at the shared main().
        script = REPO_ROOT / "benchmarks" / "check_regression.py"
        assert script.exists()
        text = script.read_text(encoding="utf-8")
        assert "repro.bench.regression" in text

    def test_wrapper_positional_detection(self):
        # `--threshold 0.5` is two option tokens, not a positional — the
        # wrapper must still fall back to the repo-default directories
        # (regression: it used to hand argparse an empty positional list
        # and die with exit code 2, which CI would misread as a perf
        # regression).
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_regression",
            REPO_ROOT / "benchmarks" / "check_regression.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert not module._has_positional([])
        assert not module._has_positional(["--threshold", "0.5"])
        assert not module._has_positional(["--threshold=0.5"])
        assert module._has_positional(["baselines", "results"])
        assert module._has_positional(["--threshold", "0.5", "baselines",
                                       "results"])

"""Tests for the synthetic query log and its analysis (Sec. 5.2)."""

import pytest

from repro.datasets.querylog import QueryLog, QueryLogAnalyzer, QueryLogGenerator
from repro.errors import DatasetError, EvaluationError


@pytest.fixture(scope="module")
def log(imdb_db):
    generator = QueryLogGenerator(imdb_db, seed=11)
    return generator.generate(generator.recommended_unique())


@pytest.fixture(scope="module")
def analyzer(imdb_db):
    return QueryLogAnalyzer(imdb_db)


class TestQueryLogModel:
    def test_totals(self):
        log = QueryLog(entries=(("a", 3), ("b", 1)))
        assert log.total_queries == 4
        assert log.unique_queries == 2

    def test_top(self):
        log = QueryLog(entries=(("a", 1), ("b", 5), ("c", 5)))
        assert log.top(2) == [("b", 5), ("c", 5)]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(entries=(("a", 1), ("a", 2)))

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(entries=(("a", 0),))


class TestGenerator:
    def test_deterministic(self, imdb_db):
        a = QueryLogGenerator(imdb_db, seed=4).generate(300)
        b = QueryLogGenerator(imdb_db, seed=4).generate(300)
        assert a.entries == b.entries

    def test_unique_count_exact(self, log, imdb_db):
        generator = QueryLogGenerator(imdb_db, seed=11)
        assert log.unique_queries == generator.recommended_unique()

    def test_total_to_unique_ratio(self, log):
        ratio = log.total_queries / log.unique_queries
        assert 1.6 < ratio < 2.6  # paper: ~2.1

    def test_zipf_head(self, log):
        top = log.top(10)
        tail = sorted(log.entries, key=lambda e: e[1])[:10]
        assert top[0][1] > 5 * tail[0][1]

    def test_validation(self, imdb_db):
        with pytest.raises(DatasetError):
            QueryLogGenerator(imdb_db).generate(0)
        with pytest.raises(DatasetError):
            QueryLogGenerator(imdb_db, total_to_unique_ratio=0.5)


class TestSec52Statistics:
    def test_class_mix_matches_paper(self, analyzer, log):
        stats = analyzer.statistics(log)
        assert stats.fraction("single_entity") >= 0.30   # paper: >= 36%
        assert 0.12 <= stats.fraction("entity_attribute") <= 0.28  # ~20%
        assert stats.fraction("multi_entity") <= 0.08    # ~2%
        assert stats.fraction("complex") <= 0.04         # < 2%

    def test_movie_related_fraction(self, analyzer, log):
        stats = analyzer.statistics(log)
        assert 0.85 <= stats.movie_related_fraction <= 1.0  # paper: ~93%

    def test_empty_log_rejected(self, analyzer):
        with pytest.raises(EvaluationError):
            analyzer.statistics(QueryLog(entries=()))

    def test_classification_examples(self, analyzer):
        assert analyzer.classify("george clooney") == "single_entity"
        assert analyzer.classify("star wars cast") == "entity_attribute"
        assert analyzer.classify("highest box office revenue") == "complex"
        assert analyzer.is_movie_related("tom hanks")
        assert not analyzer.is_movie_related("weather forecast")


class TestBenchmarkWorkload:
    def test_default_shape(self, analyzer, log):
        workload = analyzer.benchmark_workload(log)
        # 14 templates x 2 queries = the paper's 28.
        assert len(workload) == 28
        templates = {q.template for q in workload}
        assert len(templates) == 14

    def test_top_templates_look_like_paper(self, analyzer, log):
        templates = {q.template for q in analyzer.benchmark_workload(log)}
        assert "[movie.title]" in templates
        assert "[person.name]" in templates
        assert any("cast" in t for t in templates)

    def test_untyped_noise_excluded(self, analyzer, log):
        for query in analyzer.benchmark_workload(log):
            assert query.template != "[freetext]"

    def test_deterministic(self, analyzer, log):
        a = [q.query for q in analyzer.benchmark_workload(log)]
        b = [q.query for q in analyzer.benchmark_workload(log)]
        assert a == b

    def test_parameter_validation(self, analyzer, log):
        with pytest.raises(EvaluationError):
            analyzer.benchmark_workload(log, n_templates=0)

    def test_template_frequencies_weighted(self, analyzer, log):
        frequencies = analyzer.template_frequencies(log)
        assert sum(frequencies.values()) == log.total_queries

"""Tests for the SQL parser and the RETURN-clause splitter."""

import pytest

from repro.errors import SqlSyntaxError
from repro.relational.expr import And, Comparison, Contains, InList, IsNull
from repro.relational.sql.ast import AggregateCall, StarItem
from repro.relational.sql.parser import parse_select, split_return_clause


class TestSelectList:
    def test_star(self):
        stmt = parse_select("SELECT * FROM movie")
        assert isinstance(stmt.select_items[0], StarItem)

    def test_columns(self):
        stmt = parse_select("SELECT movie.title, movie.year FROM movie")
        assert [item.qualified for item in stmt.select_items] == \
               ["movie.title", "movie.year"]

    def test_alias(self):
        stmt = parse_select("SELECT movie.title AS t FROM movie")
        assert stmt.select_items[0].output_name == "t"

    def test_aggregates(self):
        stmt = parse_select("SELECT COUNT(*) AS n, MAX(movie.year) FROM movie")
        count, maximum = stmt.select_items
        assert isinstance(count, AggregateCall) and count.output_name == "n"
        assert maximum.function == "max"
        assert maximum.argument.qualified == "movie.year"

    def test_avg_star_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT AVG(*) FROM movie")

    def test_distinct_flag(self):
        assert parse_select("SELECT DISTINCT movie.title FROM movie").distinct


class TestFromClause:
    def test_multiple_tables(self):
        stmt = parse_select("SELECT * FROM a, b, c")
        assert [t.table for t in stmt.from_tables] == ["a", "b", "c"]

    def test_alias_with_as(self):
        stmt = parse_select("SELECT * FROM person AS p")
        assert stmt.from_tables[0].binding == "p"

    def test_alias_without_as(self):
        stmt = parse_select("SELECT * FROM person p1, person p2")
        assert [t.binding for t in stmt.from_tables] == ["p1", "p2"]


class TestWhere:
    def test_equality_with_param(self):
        stmt = parse_select('SELECT * FROM movie WHERE movie.title = $x')
        assert isinstance(stmt.where, Comparison)
        assert stmt.where.param_names() == {"x"}

    def test_quoted_dollar_param(self):
        # The paper writes parameters as quoted "$x".
        stmt = parse_select('SELECT * FROM movie WHERE movie.title = "$x"')
        assert stmt.where.param_names() == {"x"}

    def test_and_or_precedence(self):
        stmt = parse_select(
            "SELECT * FROM m WHERE m.a = 1 OR m.b = 2 AND m.c = 3"
        )
        # AND binds tighter: OR(a=1, AND(b=2, c=3))
        from repro.relational.expr import Or

        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.right, And)

    def test_parentheses(self):
        stmt = parse_select(
            "SELECT * FROM m WHERE (m.a = 1 OR m.b = 2) AND m.c = 3"
        )
        assert isinstance(stmt.where, And)

    def test_not(self):
        from repro.relational.expr import Not

        stmt = parse_select("SELECT * FROM m WHERE NOT m.a = 1")
        assert isinstance(stmt.where, Not)

    def test_in_list(self):
        stmt = parse_select(
            "SELECT * FROM t WHERE t.name IN ('plot', 'tagline')"
        )
        assert isinstance(stmt.where, InList)
        assert stmt.where.values == ("plot", "tagline")

    def test_like_becomes_contains(self):
        stmt = parse_select("SELECT * FROM t WHERE t.name LIKE '%war%'")
        assert isinstance(stmt.where, Contains)

    def test_is_null_and_is_not_null(self):
        stmt = parse_select("SELECT * FROM t WHERE t.a IS NULL")
        assert isinstance(stmt.where, IsNull) and not stmt.where.negated
        stmt = parse_select("SELECT * FROM t WHERE t.a IS NOT NULL")
        assert stmt.where.negated

    def test_number_literals(self):
        stmt = parse_select("SELECT * FROM t WHERE t.a >= 3.5")
        assert stmt.where.right.value == 3.5


class TestTail:
    def test_group_by(self):
        stmt = parse_select(
            "SELECT movie.year, COUNT(*) FROM movie GROUP BY movie.year"
        )
        assert stmt.group_by[0].qualified == "movie.year"
        assert stmt.is_aggregate

    def test_order_by_desc(self):
        stmt = parse_select("SELECT * FROM m ORDER BY m.rating DESC")
        assert stmt.order_by[0].descending

    def test_limit(self):
        assert parse_select("SELECT * FROM m LIMIT 25").limit == 25

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT * FROM m extra stuff")


class TestSplitReturn:
    def test_splits_sql_and_template(self):
        sql, template = split_return_clause(
            'SELECT * FROM movie WHERE movie.title = "$x" '
            "RETURN <cast movie=\"$x\"></cast>"
        )
        assert sql.endswith('"$x"')
        assert template.startswith("<cast")

    def test_no_return_clause(self):
        sql, template = split_return_clause("SELECT * FROM movie")
        assert template is None

    def test_return_inside_string_not_split(self):
        sql, template = split_return_clause(
            "SELECT * FROM movie WHERE movie.title = 'Return of the King'"
        )
        assert template is None
        assert "Return of the King" in sql

    def test_case_insensitive(self):
        _sql, template = split_return_clause("SELECT * FROM m return <x/>")
        assert template == "<x/>"

    def test_word_boundary(self):
        sql, template = split_return_clause("SELECT * FROM returns")
        assert template is None

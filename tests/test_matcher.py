"""Tests for qunit definition matching."""

import pytest

from repro.core.derivation import imdb_expert_qunits
from repro.core.search.matcher import QunitMatcher
from repro.core.search.segmentation import QuerySegmenter


@pytest.fixture(scope="module")
def matcher(imdb_db):
    return QunitMatcher(imdb_db)


@pytest.fixture(scope="module")
def segmenter(imdb_db):
    return QuerySegmenter(imdb_db)


@pytest.fixture(scope="module")
def defs():
    return imdb_expert_qunits()


def top(matcher, segmenter, defs, query):
    return matcher.match(segmenter.segment(query), defs, limit=1)[0]


class TestDefinitionSelection:
    @pytest.mark.parametrize("query,expected", [
        ("star wars cast", "movie_full_credits"),
        ("george clooney", "person_main_page"),
        ("tom hanks movies", "person_filmography"),
        ("the terminator box office", "movie_box_office"),
        ("batman plot", "movie_plot"),
        ("cast away soundtrack", "movie_soundtrack"),
        ("star wars locations", "movie_locations"),
        ("tom hanks awards", "person_awards"),
        ("best movies", "top_charts"),
    ])
    def test_expected_winner(self, matcher, segmenter, defs, query, expected):
        assert top(matcher, segmenter, defs, query).definition.name == expected

    def test_underspecified_prefers_high_utility(self, matcher, segmenter, defs):
        match = top(matcher, segmenter, defs, "julio iglesias")
        assert match.definition.name == "person_main_page"

    def test_info_type_commitment_discriminates(self, matcher, segmenter, defs):
        # "box office" must not land on the plot definition even though
        # both join movie_info.
        matches = matcher.match(segmenter.segment("batman box office"), defs)
        names = [m.definition.name for m in matches]
        assert names.index("movie_box_office") < names.index("movie_plot")


class TestBindings:
    def test_entity_binds_parameter(self, matcher, segmenter, defs):
        match = top(matcher, segmenter, defs, "star wars cast")
        assert match.fully_bound
        assert match.bound_params == {"x": "Star Wars"}

    def test_wrong_entity_type_does_not_bind(self, matcher, segmenter, defs):
        segmented = segmenter.segment("george clooney")
        movie_defs = [d for d in defs if d.name == "movie_full_credits"]
        match = matcher.match(segmented, movie_defs)[0]
        assert not match.fully_bound

    def test_parameter_free_definition_binds_trivially(self, matcher,
                                                       segmenter, defs):
        segmented = segmenter.segment("top rated movies")
        charts = [d for d in defs if d.name == "top_charts"]
        assert matcher.match(segmented, charts)[0].fully_bound


class TestScoring:
    def test_scores_in_unit_range(self, matcher, segmenter, defs):
        for query in ["star wars cast", "george clooney", "zzz unknown"]:
            for match in matcher.match(segmenter.segment(query), defs):
                assert 0.0 <= match.score <= 1.0

    def test_deterministic_order(self, matcher, segmenter, defs):
        segmented = segmenter.segment("star wars cast")
        first = [m.definition.name for m in matcher.match(segmented, defs)]
        second = [m.definition.name for m in matcher.match(segmented, defs)]
        assert first == second

    def test_limit(self, matcher, segmenter, defs):
        segmented = segmenter.segment("star wars")
        assert len(matcher.match(segmented, defs, limit=3)) == 3

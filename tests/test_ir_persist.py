"""Tests for persistent snapshot storage (save_snapshot/load_snapshot)."""

import json

import pytest

from repro.errors import SnapshotError
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.persist import (
    FORMAT_VERSION,
    V3_MAGIC,
    DocumentStore,
    SnapshotJournal,
    compact_snapshot,
    delta_segment_count,
    load_document_store,
    load_snapshot,
    open_scoring_snapshot,
    read_snapshot_header,
    save_document_store,
    save_snapshot,
    save_snapshot_v1,
    save_snapshot_v2,
)
from repro.ir.retrieval import Searcher
from repro.ir.scoring import Bm25Scorer, TfIdfScorer


def build_index(bodies: dict[str, str], analyzer: Analyzer | None = None):
    index = InvertedIndex(analyzer or Analyzer(stem=False))
    for doc_id, body in bodies.items():
        index.add(Document.create(
            doc_id, {"body": body},
            metadata={"definition": f"def_{doc_id}",
                      "params": (("x", doc_id), ("y", "v"))},
        ))
    return index


BODIES = {"a": "star wars cast", "b": "star trek", "c": "ocean wars wars",
          "d": "star star wars ocean", "empty-ish": "the of"}


@pytest.fixture()
def saved(tmp_path):
    index = build_index(BODIES)
    path = tmp_path / "index.snap"
    save_snapshot(index.snapshot(), path)
    return index, path


@pytest.fixture()
def saved_v2(tmp_path):
    """A legacy JSON-lines (v2) file, for line-level corruption tests."""
    index = build_index(BODIES)
    path = tmp_path / "index.snap"
    save_snapshot_v2(index.snapshot(), path)
    return index, path


class TestRoundTrip:
    def test_statistics_survive(self, saved):
        index, path = saved
        loaded = load_snapshot(path)
        snapshot = index.snapshot()
        assert loaded.version == snapshot.version
        assert loaded.document_count == snapshot.document_count
        assert loaded.average_document_length == snapshot.average_document_length
        assert loaded.min_document_length == snapshot.min_document_length
        assert loaded.vocabulary_size == snapshot.vocabulary_size
        for term in snapshot.terms():
            assert loaded.postings(term) == snapshot.postings(term)
            assert loaded.document_frequency(term) == \
                   snapshot.document_frequency(term)

    def test_documents_survive_exactly(self, saved):
        index, path = saved
        loaded = load_snapshot(path)
        for document in index.documents():
            assert loaded.document(document.doc_id) == document

    def test_metadata_tuples_restored_as_tuples(self, saved):
        _index, path = saved
        loaded = load_snapshot(path)
        params = loaded.document("a").meta("params")
        assert params == (("x", "a"), ("y", "v"))
        assert isinstance(params, tuple)
        assert isinstance(params[0], tuple)

    def test_analyzer_config_survives(self, tmp_path):
        analyzer = Analyzer(remove_stopwords=False, stem=True,
                            min_token_length=2)
        index = build_index({"a": "star wars"}, analyzer)
        path = save_snapshot(index.snapshot(), tmp_path / "a.snap")
        loaded = load_snapshot(path)
        assert loaded.analyzer.remove_stopwords is False
        assert loaded.analyzer.stem is True
        assert loaded.analyzer.min_token_length == 2

    @pytest.mark.parametrize("scorer_factory", [Bm25Scorer, TfIdfScorer])
    def test_search_rank_identical_float_exact(self, saved, scorer_factory):
        index, path = saved
        loaded = load_snapshot(path)
        live = Searcher(index, scorer_factory())
        cold = Searcher(loaded, scorer_factory())
        for query in ("star wars", "ocean", "trek star wars", "zzz", "the"):
            expected = [(h.doc_id, h.score) for h in live.search(query, 4)]
            assert [(h.doc_id, h.score) for h in cold.search(query, 4)] == \
                   expected
            assert [(h.doc_id, h.score)
                    for h in cold.search_exhaustive(query, 4)] == expected

    def test_empty_index_round_trips(self, tmp_path):
        index = InvertedIndex(Analyzer())
        path = save_snapshot(index.snapshot(), tmp_path / "empty.snap")
        loaded = load_snapshot(path)
        assert len(loaded) == 0
        assert Searcher(loaded).search("anything") == []

    def test_save_returns_path_and_overwrites_atomically(self, saved, tmp_path):
        index, path = saved
        assert save_snapshot(index.snapshot(), path) == path
        assert not path.with_name(path.name + ".tmp").exists()
        load_snapshot(path)  # still valid after overwrite


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "nope.snap")

    def test_truncated_file(self, saved_v2):
        _index, path = saved_v2
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-2]))  # drop a record + the footer
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_truncated_mid_line(self, saved_v2):
        _index, path = saved_v2
        content = path.read_text()
        path.write_text(content[: len(content) - 7])
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_corrupted_byte(self, saved):
        _index, path = saved
        raw = bytearray(path.read_bytes())
        offset = len(raw) // 2
        raw[offset] = ord("x") if raw[offset] != ord("x") else ord("y")
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_format_version_mismatch(self, saved_v2):
        _index, path = saved_v2
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        header["format_version"] = FORMAT_VERSION + 1
        lines[0] = json.dumps(header) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(SnapshotError, match="format version"):
            load_snapshot(path)

    def test_wrong_magic(self, saved):
        _index, path = saved
        path.write_text('{"magic": "something-else"}\n{"t": "end"}\n')
        with pytest.raises(SnapshotError, match="magic"):
            load_snapshot(path)

    def test_not_json(self, saved):
        _index, path = saved
        path.write_text("definitely not json\nstill not\n")
        with pytest.raises(SnapshotError, match="JSON"):
            load_snapshot(path)

    def test_checksum_valid_but_missing_header_key(self, saved_v2):
        # A foreign writer can produce a checksummed file lacking required
        # keys; that must surface as SnapshotError, never a raw KeyError.
        import hashlib

        _index, path = saved_v2
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        del header["index_version"]
        lines[0] = json.dumps(header, separators=(",", ":")) + "\n"
        digest = hashlib.sha256()
        for line in lines[:-1]:
            digest.update(line.encode("utf-8"))
        footer = json.loads(lines[-1])
        footer["sha256"] = digest.hexdigest()
        lines[-1] = json.dumps(footer, separators=(",", ":")) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(SnapshotError, match="missing required key"):
            load_snapshot(path)

    def test_unserializable_metadata_rejected_cleanly(self, tmp_path):
        index = InvertedIndex(Analyzer())
        index.add(Document.create("a", {"body": "star"},
                                  metadata={"obj": object()}))
        with pytest.raises(SnapshotError, match="unserializable"):
            save_snapshot(index.snapshot(), tmp_path / "bad.snap")
        assert not (tmp_path / "bad.snap").exists()
        assert not (tmp_path / "bad.snap.tmp").exists()


class TestV3Rejection:
    """Torn writes, truncated columns, and bad checksums on the binary
    columnar container must all surface as SnapshotError — never a raw
    struct/JSON/Key/Unicode error, and never silently wrong postings."""

    def _directory_extents(self, raw: bytes) -> tuple[int, int, int, int]:
        import struct

        fields = struct.unpack_from("<12sI6Q", raw)
        (_magic, _version, meta_off, _meta_len, dir_off, dir_len,
         cols_off, cols_len) = fields
        return dir_off, dir_len, cols_off, cols_len

    def test_torn_write_header_only(self, saved):
        _index, path = saved
        raw = path.read_bytes()
        path.write_bytes(raw[:20])  # mid-struct-header torn write
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_torn_write_mid_columns(self, saved):
        _index, path = saved
        raw = path.read_bytes()
        path.write_bytes(raw[: int(len(raw) * 0.75)])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_struct_version_mismatch(self, saved):
        import struct

        _index, path = saved
        raw = bytearray(path.read_bytes())
        raw[len(V3_MAGIC):len(V3_MAGIC) + 4] = struct.pack("<I", 99)
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="format version"):
            load_snapshot(path)

    def test_corrupted_meta_detected(self, saved):
        _index, path = saved
        raw = bytearray(path.read_bytes())
        offset = len(V3_MAGIC) + 4 + 48 + 64  # first meta byte
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            load_snapshot(path)

    def test_corrupted_term_directory_detected(self, saved):
        _index, path = saved
        raw = bytearray(path.read_bytes())
        dir_off, dir_len, _cols_off, _cols_len = self._directory_extents(raw)
        raw[dir_off + dir_len // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            load_snapshot(path)

    def test_corrupted_column_detected_on_access(self, saved):
        # Column checksums verify lazily: the load itself only touches the
        # doc_id/length columns, but the poisoned term must refuse to
        # materialize rather than serve corrupt postings.
        _index, path = saved
        raw = bytearray(path.read_bytes())
        dir_off, dir_len, cols_off, cols_len = self._directory_extents(raw)
        directory = json.loads(bytes(raw[dir_off:dir_off + dir_len]))
        term_cols = {term: entry for term, entry
                     in directory["terms"].items()}
        # Poison every term's tf column so any access path hits one.
        for entry in term_cols.values():
            offset, _length, _sha = entry["tf"]
            raw[cols_off + offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        loaded = load_snapshot(path)
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            loaded.postings("star")

    def test_column_extent_past_region_detected(self, saved):
        import hashlib
        import struct

        _index, path = saved
        raw = bytearray(path.read_bytes())
        dir_off, dir_len, cols_off, cols_len = self._directory_extents(raw)
        directory = json.loads(bytes(raw[dir_off:dir_off + dir_len]))
        # Rewrite one column's extent to reach past the columns region,
        # re-sign the directory so only the extent is wrong.
        directory["terms"]["star"]["tf"][1] = cols_len + 1024
        dir_blob = json.dumps(directory, ensure_ascii=False,
                              separators=(",", ":")).encode("utf-8")
        header = struct.pack(
            "<12sI6Q32s32s", V3_MAGIC, FORMAT_VERSION,
            struct.unpack_from("<12sI6Q", raw)[2],
            struct.unpack_from("<12sI6Q", raw)[3],
            dir_off, len(dir_blob), dir_off + len(dir_blob), cols_len,
            bytes(raw[len(V3_MAGIC) + 4 + 48:len(V3_MAGIC) + 4 + 48 + 32]),
            hashlib.sha256(dir_blob).digest())
        meta_blob = bytes(raw[struct.unpack_from("<12sI6Q", raw)[2]:dir_off])
        cols = bytes(raw[cols_off:cols_off + cols_len])
        path.write_bytes(header + meta_blob + dir_blob + cols)
        loaded = load_snapshot(path)
        with pytest.raises(SnapshotError, match="columns region"):
            loaded.postings("star")

    def test_scoring_snapshot_skips_documents(self, saved):
        # The worker path: ranked (doc_id, score) pairs only, no document
        # bodies parsed or held.
        from repro.errors import IndexError_
        from repro.ir.scoring import Bm25Scorer
        from repro.ir.wand import retrieve

        index, path = saved
        view = open_scoring_snapshot(path)
        live = index.snapshot()
        scorer = Bm25Scorer()
        analyzer = live.analyzer
        for query in ("star wars", "ocean", "trek star wars", "zzz"):
            terms = analyzer.tokens(query)
            for strategy in ("maxscore", "wand", "blockmax"):
                assert retrieve(view, scorer, terms, 4, strategy=strategy) \
                    == retrieve(live, scorer, terms, 4, strategy=strategy)
        assert len(view._documents) == 0
        with pytest.raises(IndexError_):
            view.document("a")


class TestDocumentStore:
    def test_round_trip(self, tmp_path):
        index = build_index(BODIES)
        snapshot = index.snapshot()
        store = DocumentStore.from_snapshot(snapshot)
        path = save_document_store(store, tmp_path / "docs.store")
        loaded = load_document_store(path)
        assert len(loaded) == len(store)
        for doc_id in store.documents:
            assert doc_id in loaded
            assert loaded.documents[doc_id] == store.documents[doc_id]
            assert loaded.doc_lengths[doc_id] == store.doc_lengths[doc_id]
        assert loaded.analyzer == store.analyzer

    def test_corruption_detected(self, tmp_path):
        index = build_index(BODIES)
        path = save_document_store(
            DocumentStore.from_snapshot(index.snapshot()),
            tmp_path / "docs.store")
        raw = bytearray(path.read_bytes())
        offset = len(raw) // 2
        raw[offset] = ord("x") if raw[offset] != ord("x") else ord("y")
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            load_document_store(path)

    def test_truncation_detected(self, tmp_path):
        index = build_index(BODIES)
        path = save_document_store(
            DocumentStore.from_snapshot(index.snapshot()),
            tmp_path / "docs.store")
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-2]))
        with pytest.raises(SnapshotError, match="truncated"):
            load_document_store(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_document_store(tmp_path / "nope.store")


class TestDocstoreBackedSnapshots:
    def test_ref_snapshot_round_trips_and_shares_documents(self, tmp_path):
        index = build_index(BODIES)
        snapshot = index.snapshot()
        store = DocumentStore.from_snapshot(snapshot)
        save_document_store(store, tmp_path / "docs.store")
        path = save_snapshot(snapshot, tmp_path / "index.snap",
                             docstore="docs.store")
        loaded_store = load_document_store(tmp_path / "docs.store")
        loaded = load_snapshot(path, store=loaded_store)
        for document in index.documents():
            assert loaded.document(document.doc_id) == document
            # The loaded snapshot shares the store's Document objects —
            # that sharing is the whole point of the dedup layout.
            assert loaded.document(document.doc_id) is \
                   loaded_store.documents[document.doc_id]
        for term in snapshot.terms():
            assert loaded.postings(term) == snapshot.postings(term)

    def test_ref_snapshot_is_smaller_than_inline(self, tmp_path):
        index = build_index(BODIES)
        snapshot = index.snapshot()
        save_document_store(DocumentStore.from_snapshot(snapshot),
                            tmp_path / "docs.store")
        ref_path = save_snapshot(snapshot, tmp_path / "ref.snap",
                                 docstore="docs.store")
        inline_path = save_snapshot(snapshot, tmp_path / "inline.snap")
        assert ref_path.stat().st_size < inline_path.stat().st_size

    def test_store_autoloaded_from_header(self, tmp_path):
        index = build_index(BODIES)
        snapshot = index.snapshot()
        save_document_store(DocumentStore.from_snapshot(snapshot),
                            tmp_path / "docs.store")
        path = save_snapshot(snapshot, tmp_path / "index.snap",
                             docstore="docs.store")
        loaded = load_snapshot(path)  # no explicit store
        assert loaded.document("a") == index.document("a")

    def test_missing_store_is_clean_error(self, tmp_path):
        index = build_index(BODIES)
        path = save_snapshot(index.snapshot(), tmp_path / "index.snap",
                             docstore="gone.store")
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(path)

    def test_dangling_ref_is_clean_error(self, tmp_path):
        index = build_index(BODIES)
        snapshot = index.snapshot()
        partial = build_index({"a": BODIES["a"]})
        save_document_store(DocumentStore.from_snapshot(partial.snapshot()),
                            tmp_path / "docs.store")
        path = save_snapshot(snapshot, tmp_path / "index.snap",
                             docstore="docs.store")
        with pytest.raises(SnapshotError, match="not in the document store"):
            load_snapshot(path)

    def test_analyzer_mismatch_with_store_rejected(self, tmp_path):
        index = build_index(BODIES)
        other = build_index({"a": "star"}, Analyzer(stem=True))
        save_document_store(DocumentStore.from_snapshot(other.snapshot()),
                            tmp_path / "docs.store")
        path = save_snapshot(index.snapshot(), tmp_path / "index.snap",
                             docstore="docs.store")
        with pytest.raises(SnapshotError, match="mix tokenizations"):
            load_snapshot(path)

    def test_read_snapshot_header(self, tmp_path):
        index = build_index(BODIES)
        path = save_snapshot(index.snapshot(), tmp_path / "index.snap",
                             docstore="docs.store",
                             shard={"index": 1, "count": 4})
        header = read_snapshot_header(path)
        assert header["docstore"] == "docs.store"
        assert header["shard"] == {"index": 1, "count": 4}
        assert header["format_version"] == FORMAT_VERSION


class TestV1BackCompat:
    def test_v1_file_still_loads(self, tmp_path):
        index = build_index(BODIES)
        snapshot = index.snapshot()
        path = save_snapshot_v1(snapshot, tmp_path / "legacy.snap")
        assert json.loads(path.read_text().splitlines()[0]
                          )["format_version"] == 1
        loaded = load_snapshot(path)
        for document in index.documents():
            assert loaded.document(document.doc_id) == document
        live = Searcher(index)
        cold = Searcher(loaded)
        for query in ("star wars", "ocean", "zzz"):
            assert [(h.doc_id, h.score) for h in cold.search(query, 4)] == \
                   [(h.doc_id, h.score) for h in live.search(query, 4)]

    def test_v1_and_v2_load_identically(self, tmp_path):
        index = build_index(BODIES)
        snapshot = index.snapshot()
        v1 = load_snapshot(save_snapshot_v1(snapshot, tmp_path / "v1.snap"))
        v2 = load_snapshot(save_snapshot(snapshot, tmp_path / "v2.snap"))
        assert sorted(v1.terms()) == sorted(v2.terms())
        for term in v1.terms():
            assert v1.postings(term) == v2.postings(term)
        assert v1.average_document_length == v2.average_document_length

    def test_compact_upgrades_v1_to_v2(self, tmp_path):
        index = build_index(BODIES)
        path = save_snapshot_v1(index.snapshot(), tmp_path / "legacy.snap")
        compact_snapshot(path)
        header = read_snapshot_header(path)
        assert header["format_version"] == FORMAT_VERSION
        loaded = load_snapshot(path)
        assert loaded.document("a") == index.document("a")


class TestDeltaSegments:
    def test_journal_appends_instead_of_rewriting(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        journal = SnapshotJournal(index, path)
        base_bytes = path.read_bytes()
        index.add(Document.create("z1", {"body": "fresh star ocean"}))
        index.add(Document.create("z2", {"body": "fresh trek"}))
        assert journal.delta_segments == 2
        assert delta_segment_count(path) == 2
        # Appends only: the base container's bytes are untouched, the
        # delta tail is 2 segments x (delta + end) text lines.
        raw = path.read_bytes()
        assert raw[:len(base_bytes)] == base_bytes
        tail = raw[len(base_bytes):].decode("utf-8")
        assert len(tail.splitlines()) == 4

    def test_journaled_snapshot_loads_float_identical(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        SnapshotJournal(index, path)
        index.add(Document.create("z1", {"body": "fresh star ocean wars"}))
        index.add(Document.create("z2", {"body": "cast fresh"}))
        loaded = load_snapshot(path)
        snapshot = index.snapshot()
        assert loaded.version == snapshot.version
        assert loaded.document_count == snapshot.document_count
        assert loaded.average_document_length == \
               snapshot.average_document_length
        assert loaded.min_document_length == snapshot.min_document_length
        for term in snapshot.terms():
            assert loaded.postings(term) == snapshot.postings(term)
            assert loaded.document_frequency(term) == \
                   snapshot.document_frequency(term)
        live = Searcher(index)
        cold = Searcher(loaded)
        for query in ("star wars", "fresh", "cast ocean", "zzz"):
            assert [(h.doc_id, h.score) for h in cold.search(query, 5)] == \
                   [(h.doc_id, h.score) for h in live.search(query, 5)]

    def test_manual_commit_batches_pending_docs(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        journal = SnapshotJournal(index, path, auto=False)
        index.add(Document.create("z1", {"body": "fresh star"}))
        index.add(Document.create("z2", {"body": "fresh trek"}))
        assert journal.pending() == ["z1", "z2"]
        assert journal.commit() == 2
        assert journal.pending() == []
        assert journal.delta_segments == 1
        assert journal.commit() == 0  # idempotent, no empty segments
        assert journal.delta_segments == 1
        loaded = load_snapshot(path)
        assert loaded.document("z1").field("body") == "fresh star"

    def test_auto_compaction_past_threshold(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        journal = SnapshotJournal(index, path, compact_threshold=3)
        for i in range(7):
            index.add(Document.create(f"z{i}", {"body": f"fresh {i} star"}))
        assert journal.delta_segments < 3
        loaded = load_snapshot(path)
        assert loaded.document_count == len(BODIES) + 7

    def test_explicit_compaction(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        journal = SnapshotJournal(index, path)
        index.add(Document.create("z1", {"body": "fresh star"}))
        assert delta_segment_count(path) == 1
        journal.compact()
        assert delta_segment_count(path) == 0
        assert journal.delta_segments == 0
        loaded = load_snapshot(path)
        assert loaded.document_count == len(BODIES) + 1

    def test_compact_snapshot_function(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        SnapshotJournal(index, path)
        index.add(Document.create("z1", {"body": "fresh star"}))
        before = load_snapshot(path)
        compact_snapshot(path)
        assert delta_segment_count(path) == 0
        after = load_snapshot(path)
        assert after.document_count == before.document_count
        for term in before.terms():
            assert after.postings(term) == before.postings(term)

    def test_truncated_delta_detected(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        SnapshotJournal(index, path)
        index.add(Document.create("z1", {"body": "fresh star"}))
        # Drop the delta-end line: the tail's last newline-terminated line.
        raw = path.read_bytes()
        cut = raw.rfind(b"\n", 0, len(raw) - 1) + 1
        path.write_bytes(raw[:cut])
        with pytest.raises(SnapshotError, match="checksum line"):
            load_snapshot(path)

    def test_corrupted_delta_detected(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        SnapshotJournal(index, path)
        index.add(Document.create("z1", {"body": "fresh star"}))
        # "fresh" appears only in the appended delta text, not the base.
        raw = path.read_bytes()
        assert raw.count(b"fresh")
        path.write_bytes(raw.replace(b"fresh", b"frxsh"))
        with pytest.raises(SnapshotError, match="delta segment"):
            load_snapshot(path)

    def test_journal_reopen_resumes(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        SnapshotJournal(index, path)
        index.add(Document.create("z1", {"body": "fresh star"}))

        reopened = SnapshotJournal.open(path)
        assert reopened.pending() == []
        assert set(reopened.index._documents) == set(index._documents)
        reopened.index.add(Document.create("z2", {"body": "fresh trek"}))
        loaded = load_snapshot(path)
        assert loaded.document_count == len(BODIES) + 2
        hits = Searcher(loaded).search("fresh trek", 3)
        assert hits and hits[0].doc_id == "z2"

    def test_journal_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "journal.snap"
        save_snapshot(build_index(BODIES).snapshot(), path)
        other = build_index({"q": "unrelated"})
        with pytest.raises(SnapshotError, match="not a snapshot of"):
            SnapshotJournal(other, path)

    def test_invalid_compact_threshold(self, tmp_path):
        index = build_index(BODIES)
        with pytest.raises(ValueError):
            SnapshotJournal(index, tmp_path / "j.snap", compact_threshold=0)

    def test_rejected_add_leaves_journal_functional(self, tmp_path):
        # Regression: a document rejected mid-add (non-positive weight)
        # must leave the index untouched — previously it stayed
        # half-registered and the journal's next auto-commit crashed on
        # the poisoned doc_id, permanently breaking the index.
        from repro.errors import IndexError_

        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        journal = SnapshotJournal(index, path)
        bad = Document.create("bad", {"body": "boom"}, {"body": 0.0})
        with pytest.raises(IndexError_):
            index.add(bad)
        assert "bad" not in index._documents
        assert journal.pending() == []
        index.add(Document.create("z1", {"body": "fresh star"}))  # still works
        loaded = load_snapshot(path)
        assert "z1" in loaded
        assert "bad" not in loaded

    def test_compact_leaves_clean_v2_file_untouched(self, tmp_path):
        path = save_snapshot(build_index(BODIES).snapshot(),
                             tmp_path / "clean.snap")
        before = path.read_bytes()
        assert compact_snapshot(path) == 0
        assert path.read_bytes() == before

    def test_compact_returns_folded_segment_count(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        SnapshotJournal(index, path)
        index.add(Document.create("z1", {"body": "fresh star"}))
        index.add(Document.create("z2", {"body": "fresh trek"}))
        assert compact_snapshot(path) == 2
        assert compact_snapshot(path) == 0

    def test_bulk_ingest_compaction_is_size_proportional(self, tmp_path):
        # Regression: auto mode must not rewrite the whole file every
        # compact_threshold adds — folding waits until the delta is a
        # real fraction (25%) of the base, so bulk loading N documents
        # costs O(N) file I/O, not O(N^2).
        path = tmp_path / "journal.snap"
        index = build_index(BODIES)
        journal = SnapshotJournal(index, path, compact_threshold=2)
        compactions = {"n": 0}
        original = journal.compact

        def counting_compact():
            compactions["n"] += 1
            return original()

        journal.compact = counting_compact
        for i in range(64):
            index.add(Document.create(f"bulk{i}", {"body": f"term{i} star"}))
        # Doubling-style growth: a handful of folds, not 64/2 = 32.
        assert compactions["n"] <= 10
        loaded = load_snapshot(path)
        assert loaded.document_count == len(BODIES) + 64

    def test_small_delta_on_large_base_not_compacted(self, tmp_path):
        path = tmp_path / "journal.snap"
        index = build_index({f"d{i}": f"word{i} star" for i in range(40)})
        journal = SnapshotJournal(index, path, compact_threshold=1)
        index.add(Document.create("tail", {"body": "fresh star"}))
        # One doc against a 40-doc base: appended, not folded.
        assert journal.delta_segments == 1


class TestDocStorePartitionLoads:
    """The store header's doc_id -> byte-offset index must let partition
    loads fetch exactly their documents, byte-identical to a full load."""

    def make_store(self, tmp_path):
        index = build_index(BODIES)
        store = DocumentStore.from_snapshot(index.snapshot())
        path = save_document_store(store, tmp_path / "docs.store")
        return store, path

    def test_header_carries_offset_index(self, tmp_path):
        import json

        _store, path = self.make_store(tmp_path)
        header = json.loads(path.read_text().splitlines()[0])
        doc_index = header["doc_index"]
        assert sorted(doc_index) == sorted(BODIES)
        # Offsets are relative to the end of the header line and must
        # point exactly at each record's bytes.
        raw = path.read_bytes()
        base = raw.index(b"\n") + 1
        for doc_id, (offset, size) in doc_index.items():
            record = json.loads(raw[base + offset:base + offset + size])
            assert record["t"] == "doc"
            assert record["id"] == doc_id

    def test_partition_load_matches_full_load(self, tmp_path):
        from repro.ir.persist import load_document_store_partition

        store, path = self.make_store(tmp_path)
        full = load_document_store(path)
        part = load_document_store_partition(path, ["a", "c"])
        assert sorted(part.documents) == ["a", "c"]
        for doc_id in ("a", "c"):
            assert part.documents[doc_id] == full.documents[doc_id]
            assert part.doc_lengths[doc_id] == full.doc_lengths[doc_id]
        assert part.analyzer == full.analyzer

    def test_partition_load_duplicates_collapse(self, tmp_path):
        from repro.ir.persist import load_document_store_partition

        _store, path = self.make_store(tmp_path)
        part = load_document_store_partition(path, ["b", "b", "b"])
        assert sorted(part.documents) == ["b"]

    def test_partition_load_unknown_id_raises(self, tmp_path):
        from repro.ir.persist import load_document_store_partition

        _store, path = self.make_store(tmp_path)
        with pytest.raises(SnapshotError, match="doc_index"):
            load_document_store_partition(path, ["nope"])

    def test_partition_load_without_index_falls_back(self, tmp_path):
        # Stores written before the offset index existed still load (the
        # full-store fallback), so old generations stay readable.
        import json

        _store, path = self.make_store(tmp_path)
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        del header["doc_index"]
        body = lines[1:-1]
        import hashlib

        header_line = json.dumps(
            header, ensure_ascii=False, separators=(",", ":")) + "\n"
        digest = hashlib.sha256()
        for line in (header_line, *body):
            digest.update(line.encode("utf-8"))
        footer = {"t": "end", "records": len(body),
                  "sha256": digest.hexdigest()}
        footer_line = json.dumps(
            footer, ensure_ascii=False, separators=(",", ":")) + "\n"
        path.write_text("".join([header_line, *body, footer_line]))

        from repro.ir.persist import load_document_store_partition

        loaded = load_document_store_partition(path, ["a"])
        assert "a" in loaded.documents  # full-store superset is fine
        assert len(loaded.documents) == len(BODIES)

    def test_tampered_record_detected(self, tmp_path):
        import json

        from repro.ir.persist import load_document_store_partition

        _store, path = self.make_store(tmp_path)
        header = json.loads(path.read_text().splitlines()[0])
        # Point one entry's offset at a different record.
        header["doc_index"]["a"] = header["doc_index"]["b"]
        lines = path.read_text().splitlines(keepends=True)
        lines[0] = json.dumps(
            header, ensure_ascii=False, separators=(",", ":")) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(SnapshotError, match="points at"):
            load_document_store_partition(path, ["a"])

    def test_read_snapshot_doc_ids(self, tmp_path):
        from repro.ir.persist import read_snapshot_doc_ids

        index = build_index(BODIES)
        snapshot = index.snapshot()
        store = DocumentStore.from_snapshot(snapshot)
        save_document_store(store, tmp_path / "docs.store")
        ref_path = save_snapshot(snapshot, tmp_path / "refs.snap",
                                 docstore="docs.store")
        inline_path = save_snapshot(snapshot, tmp_path / "inline.snap")
        assert read_snapshot_doc_ids(ref_path) == sorted(BODIES)
        assert read_snapshot_doc_ids(inline_path) == sorted(BODIES)

    def test_read_snapshot_doc_ids_truncated(self, tmp_path):
        from repro.ir.persist import read_snapshot_doc_ids

        index = build_index(BODIES)
        path = save_snapshot(index.snapshot(), tmp_path / "t.snap")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot_doc_ids(path)

    def test_read_snapshot_doc_ids_truncated_v2(self, tmp_path):
        from repro.ir.persist import read_snapshot_doc_ids

        index = build_index(BODIES)
        path = save_snapshot_v2(index.snapshot(), tmp_path / "t.snap")
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]))  # header + one record
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot_doc_ids(path)

    def test_load_shard_pins_only_its_partition(self, tmp_path):
        # The ROADMAP item this closes: a shard-local load must not parse
        # or pin the other partitions' documents.
        from repro.core import QunitCollection
        from repro.core.derivation import imdb_expert_qunits
        from repro.datasets.imdb import generate_imdb

        db = generate_imdb(scale=0.1, seed=7)
        collection = QunitCollection(db, imdb_expert_qunits(),
                                     max_instances_per_definition=30,
                                     shards=3, parallelism="serial")
        out = tmp_path / "gen"
        from repro.core.store import CollectionStore

        store = CollectionStore(out)
        store.save(collection)
        total = len(collection.global_snapshot())
        for shard_index in range(3):
            snapshot, bloom = store.load_shard(shard_index)
            assert 0 < len(snapshot) < total
            assert len(snapshot._documents) == len(snapshot)
            assert bloom is not None
            # Collection-wide statistics survive partition loading.
            assert snapshot.document_count == total

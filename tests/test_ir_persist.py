"""Tests for persistent snapshot storage (save_snapshot/load_snapshot)."""

import json

import pytest

from repro.errors import SnapshotError
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.persist import FORMAT_VERSION, load_snapshot, save_snapshot
from repro.ir.retrieval import Searcher
from repro.ir.scoring import Bm25Scorer, TfIdfScorer


def build_index(bodies: dict[str, str], analyzer: Analyzer | None = None):
    index = InvertedIndex(analyzer or Analyzer(stem=False))
    for doc_id, body in bodies.items():
        index.add(Document.create(
            doc_id, {"body": body},
            metadata={"definition": f"def_{doc_id}",
                      "params": (("x", doc_id), ("y", "v"))},
        ))
    return index


BODIES = {"a": "star wars cast", "b": "star trek", "c": "ocean wars wars",
          "d": "star star wars ocean", "empty-ish": "the of"}


@pytest.fixture()
def saved(tmp_path):
    index = build_index(BODIES)
    path = tmp_path / "index.snap"
    save_snapshot(index.snapshot(), path)
    return index, path


class TestRoundTrip:
    def test_statistics_survive(self, saved):
        index, path = saved
        loaded = load_snapshot(path)
        snapshot = index.snapshot()
        assert loaded.version == snapshot.version
        assert loaded.document_count == snapshot.document_count
        assert loaded.average_document_length == snapshot.average_document_length
        assert loaded.min_document_length == snapshot.min_document_length
        assert loaded.vocabulary_size == snapshot.vocabulary_size
        for term in snapshot.terms():
            assert loaded.postings(term) == snapshot.postings(term)
            assert loaded.document_frequency(term) == \
                   snapshot.document_frequency(term)

    def test_documents_survive_exactly(self, saved):
        index, path = saved
        loaded = load_snapshot(path)
        for document in index.documents():
            assert loaded.document(document.doc_id) == document

    def test_metadata_tuples_restored_as_tuples(self, saved):
        _index, path = saved
        loaded = load_snapshot(path)
        params = loaded.document("a").meta("params")
        assert params == (("x", "a"), ("y", "v"))
        assert isinstance(params, tuple)
        assert isinstance(params[0], tuple)

    def test_analyzer_config_survives(self, tmp_path):
        analyzer = Analyzer(remove_stopwords=False, stem=True,
                            min_token_length=2)
        index = build_index({"a": "star wars"}, analyzer)
        path = save_snapshot(index.snapshot(), tmp_path / "a.snap")
        loaded = load_snapshot(path)
        assert loaded.analyzer.remove_stopwords is False
        assert loaded.analyzer.stem is True
        assert loaded.analyzer.min_token_length == 2

    @pytest.mark.parametrize("scorer_factory", [Bm25Scorer, TfIdfScorer])
    def test_search_rank_identical_float_exact(self, saved, scorer_factory):
        index, path = saved
        loaded = load_snapshot(path)
        live = Searcher(index, scorer_factory())
        cold = Searcher(loaded, scorer_factory())
        for query in ("star wars", "ocean", "trek star wars", "zzz", "the"):
            expected = [(h.doc_id, h.score) for h in live.search(query, 4)]
            assert [(h.doc_id, h.score) for h in cold.search(query, 4)] == \
                   expected
            assert [(h.doc_id, h.score)
                    for h in cold.search_exhaustive(query, 4)] == expected

    def test_empty_index_round_trips(self, tmp_path):
        index = InvertedIndex(Analyzer())
        path = save_snapshot(index.snapshot(), tmp_path / "empty.snap")
        loaded = load_snapshot(path)
        assert len(loaded) == 0
        assert Searcher(loaded).search("anything") == []

    def test_save_returns_path_and_overwrites_atomically(self, saved, tmp_path):
        index, path = saved
        assert save_snapshot(index.snapshot(), path) == path
        assert not path.with_name(path.name + ".tmp").exists()
        load_snapshot(path)  # still valid after overwrite


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "nope.snap")

    def test_truncated_file(self, saved):
        _index, path = saved
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-2]))  # drop a record + the footer
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_truncated_mid_line(self, saved):
        _index, path = saved
        content = path.read_text()
        path.write_text(content[: len(content) - 7])
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_corrupted_byte(self, saved):
        _index, path = saved
        raw = bytearray(path.read_bytes())
        offset = len(raw) // 2
        raw[offset] = ord("x") if raw[offset] != ord("x") else ord("y")
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_format_version_mismatch(self, saved):
        _index, path = saved
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        header["format_version"] = FORMAT_VERSION + 1
        lines[0] = json.dumps(header) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(SnapshotError, match="format version"):
            load_snapshot(path)

    def test_wrong_magic(self, saved):
        _index, path = saved
        path.write_text('{"magic": "something-else"}\n{"t": "end"}\n')
        with pytest.raises(SnapshotError, match="magic"):
            load_snapshot(path)

    def test_not_json(self, saved):
        _index, path = saved
        path.write_text("definitely not json\nstill not\n")
        with pytest.raises(SnapshotError, match="JSON"):
            load_snapshot(path)

    def test_checksum_valid_but_missing_header_key(self, saved):
        # A foreign writer can produce a checksummed file lacking required
        # keys; that must surface as SnapshotError, never a raw KeyError.
        import hashlib

        _index, path = saved
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        del header["index_version"]
        lines[0] = json.dumps(header, separators=(",", ":")) + "\n"
        digest = hashlib.sha256()
        for line in lines[:-1]:
            digest.update(line.encode("utf-8"))
        footer = json.loads(lines[-1])
        footer["sha256"] = digest.hexdigest()
        lines[-1] = json.dumps(footer, separators=(",", ":")) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(SnapshotError, match="missing required key"):
            load_snapshot(path)

    def test_unserializable_metadata_rejected_cleanly(self, tmp_path):
        index = InvertedIndex(Analyzer())
        index.add(Document.create("a", {"body": "star"},
                                  metadata={"obj": object()}))
        with pytest.raises(SnapshotError, match="unserializable"):
            save_snapshot(index.snapshot(), tmp_path / "bad.snap")
        assert not (tmp_path / "bad.snap").exists()
        assert not (tmp_path / "bad.snap.tmp").exists()

"""Unit and fault-path tests for the vector retrieval backend: the
hashing embedder (``repro.ir.embed``), the cosine ``VectorIndex``
(``repro.ir.vector``), persisted vector extents in the v3 container,
and the hybrid strategy's graceful degradation when a loaded snapshot
carries no usable vectors (saved without them, or migrated from an
older format)."""

import math
import warnings

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.embed import DEFAULT_DIMS, HashingEmbedder
from repro.ir.index import InvertedIndex
from repro.ir.persist import (
    compact_snapshot,
    load_snapshot,
    save_snapshot,
    save_snapshot_v1,
    save_snapshot_v2,
)
from repro.ir.retrieval import Searcher
from repro.ir.vector import VectorIndex, reciprocal_rank_fusion

BODIES = {
    "d0": "star wars a space opera saga",
    "d1": "ocean trek underwater documentary",
    "d2": "the wars of distant stars",
    "d3": "silent archive of forgotten films",
    "d4": "deep ocean creatures and coral",
}


def build_index(bodies=BODIES):
    index = InvertedIndex(Analyzer(stem=False))
    for doc_id, body in bodies.items():
        index.add(Document.create(doc_id, {"body": body}))
    return index


def documents(bodies=BODIES):
    return {doc_id: Document.create(doc_id, {"body": body})
            for doc_id, body in bodies.items()}


class TestHashingEmbedder:
    def test_vectors_are_unit_norm(self):
        vector = HashingEmbedder().embed_query("star wars saga")
        assert len(vector) == DEFAULT_DIMS
        assert math.isclose(math.fsum(v * v for v in vector), 1.0,
                            rel_tol=1e-12)

    def test_blank_text_embeds_to_zero(self):
        vector = HashingEmbedder().embed_query("   \t  ")
        assert all(v == 0.0 for v in vector)

    def test_deterministic_within_process(self):
        a = HashingEmbedder().embed_query("tom hanks movies")
        b = HashingEmbedder().embed_query("tom hanks movies")
        assert a == b

    def test_similar_strings_closer_than_dissimilar(self):
        embedder = HashingEmbedder()
        query = embedder.embed_query("star wars")
        typo = embedder.embed_query("star warz")
        other = embedder.embed_query("ocean documentary")

        def cosine(u, v):
            return sum(a * b for a, b in zip(u, v))

        assert cosine(query, typo) > cosine(query, other)

    def test_config_round_trip(self):
        embedder = HashingEmbedder(dims=64, ngram_sizes=(2, 3), seed=9)
        rebuilt = HashingEmbedder.from_config(embedder.config())
        assert rebuilt.cache_key() == embedder.cache_key()
        assert rebuilt.embed_query("abc") == embedder.embed_query("abc")

    def test_from_config_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            HashingEmbedder.from_config({"kind": "transformer"})

    def test_validation(self):
        with pytest.raises(ValueError, match="dims"):
            HashingEmbedder(dims=4)
        with pytest.raises(ValueError, match="ngram_sizes"):
            HashingEmbedder(ngram_sizes=())
        with pytest.raises(ValueError, match="ngram_sizes"):
            HashingEmbedder(ngram_sizes=(1,))

    def test_different_seeds_differ(self):
        assert HashingEmbedder(seed=0).embed_query("star wars") != \
               HashingEmbedder(seed=1).embed_query("star wars")


class TestVectorIndex:
    def test_build_sorts_doc_ids(self):
        vectors = VectorIndex.build(HashingEmbedder(), documents())
        assert vectors.doc_ids == tuple(sorted(BODIES))
        assert len(vectors) == len(BODIES)

    def test_topk_ordering_and_positivity(self):
        embedder = HashingEmbedder()
        vectors = VectorIndex.build(embedder, documents())
        ranked = vectors.topk(embedder.embed_query("star wars"), 10)
        assert ranked
        assert all(score > 0.0 for _, score in ranked)
        assert ranked == sorted(ranked, key=lambda p: (-p[1], p[0]))
        assert ranked[0][0] in ("d0", "d2")  # the star-wars documents

    def test_topk_zero_query_matches_nothing(self):
        embedder = HashingEmbedder()
        vectors = VectorIndex.build(embedder, documents())
        assert vectors.topk(embedder.embed_query(""), 5) == []

    def test_topk_limit_edges(self):
        embedder = HashingEmbedder()
        vectors = VectorIndex.build(embedder, documents())
        query = embedder.embed_query("ocean")
        assert vectors.topk(query, 0) == []
        assert len(vectors.topk(query, 1)) == 1

    def test_restrict_keeps_rows_intact(self):
        vectors = VectorIndex.build(HashingEmbedder(), documents())
        subset = vectors.restrict(["d4", "d1", "phantom"])
        assert subset.doc_ids == ("d1", "d4")
        assert subset.row(0) == vectors.row(vectors.doc_ids.index("d1"))
        assert subset.row(1) == vectors.row(vectors.doc_ids.index("d4"))

    def test_shard_partitions_every_document_once(self):
        vectors = VectorIndex.build(HashingEmbedder(), documents())
        parts = vectors.shard(3)
        assert len(parts) == 3
        spread = [doc_id for part in parts for doc_id in part.doc_ids]
        assert sorted(spread) == sorted(vectors.doc_ids)

    def test_shard_validation(self):
        vectors = VectorIndex.build(HashingEmbedder(), documents())
        with pytest.raises(ValueError, match="count"):
            vectors.shard(0)

    def test_matrix_size_validation(self):
        with pytest.raises(ValueError, match="matrix"):
            VectorIndex(("a", "b"), [0.0] * 5, 4, {})

    def test_rrf_validation(self):
        with pytest.raises(ValueError, match="vector_weight"):
            reciprocal_rank_fusion([], [], 5, vector_weight=-0.1)
        with pytest.raises(ValueError, match="rrf_k"):
            reciprocal_rank_fusion([], [], 5, rrf_k=0)


class TestVectorPersistence:
    def test_round_trip_serves_identical_vectors(self, tmp_path):
        embedder = HashingEmbedder()
        index = build_index()
        snapshot = index.snapshot()
        live = snapshot.vectors(embedder)
        path = tmp_path / "with-vectors.snap"
        save_snapshot(snapshot, path, vectors=live)
        loaded = load_snapshot(path).vectors(embedder)
        assert loaded is not None
        assert loaded.doc_ids == live.doc_ids
        assert loaded.matrix == live.matrix
        assert loaded.embedder_config == embedder.config()

    def test_saved_without_vectors_returns_none(self, tmp_path):
        path = tmp_path / "no-vectors.snap"
        save_snapshot(build_index().snapshot(), path)
        assert load_snapshot(path).vectors(HashingEmbedder()) is None

    def test_mismatched_embedder_config_returns_none(self, tmp_path):
        embedder = HashingEmbedder()
        snapshot = build_index().snapshot()
        path = tmp_path / "seeded.snap"
        save_snapshot(snapshot, path, vectors=snapshot.vectors(embedder))
        loaded = load_snapshot(path)
        assert loaded.vectors(HashingEmbedder(seed=7)) is None
        assert loaded.vectors(embedder) is not None

    def test_partial_coverage_rejected(self, tmp_path):
        from repro.ir.persist import SnapshotError

        embedder = HashingEmbedder()
        partial = VectorIndex.build(
            embedder, {k: v for k, v in documents().items() if k != "d0"})
        with pytest.raises(SnapshotError, match="vector"):
            save_snapshot(build_index().snapshot(),
                          tmp_path / "partial.snap", vectors=partial)

    def test_migrated_v1_v2_files_serve_lexical_only(self, tmp_path):
        # `repro migrate` upgrades old containers to v3 but cannot
        # invent vector extents; the result must load and serve with no
        # vectors available, never raise.
        snapshot = build_index().snapshot()
        for label, saver in (("v1", save_snapshot_v1),
                             ("v2", save_snapshot_v2)):
            path = tmp_path / f"{label}.snap"
            saver(snapshot, path)
            assert compact_snapshot(path) >= 0  # the migrate operation
            assert load_snapshot(path).vectors(HashingEmbedder()) is None


class TestHybridFallback:
    """strategy="hybrid" over an index with no usable vectors: one
    RuntimeWarning, a counted fallback, lexical results — never an
    exception."""

    def _saved_without_vectors(self, tmp_path):
        save_snapshot(build_index().snapshot(), tmp_path / "plain.snap")
        return load_snapshot(tmp_path / "plain.snap")

    def test_degrades_to_lexical_with_warning(self, tmp_path):
        loaded = self._saved_without_vectors(tmp_path)
        lexical = [(h.doc_id, h.score)
                   for h in Searcher(loaded).search("star wars", 5)]
        searcher = Searcher(loaded, strategy="hybrid", cache_size=0)
        with pytest.warns(RuntimeWarning, match="no vector extents"):
            hits = searcher.search("star wars", 5)
        assert [(h.doc_id, h.score) for h in hits] == lexical
        assert searcher.hybrid_fallbacks == 1

    def test_warning_fires_once_but_counter_keeps_counting(self, tmp_path):
        loaded = self._saved_without_vectors(tmp_path)
        searcher = Searcher(loaded, strategy="hybrid", cache_size=0)
        with pytest.warns(RuntimeWarning):
            searcher.search("star wars", 5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            searcher.search("ocean trek", 5)
        assert searcher.hybrid_fallbacks == 2

    def test_sharded_hybrid_degrades_identically(self, tmp_path):
        loaded = self._saved_without_vectors(tmp_path)
        lexical = [(h.doc_id, h.score)
                   for h in Searcher(loaded).search("ocean", 5)]
        with Searcher(loaded, strategy="hybrid", shards=3,
                      parallelism="serial", cache_size=0) as sharded:
            with pytest.warns(RuntimeWarning, match="no vector extents"):
                hits = sharded.search("ocean", 5)
        assert [(h.doc_id, h.score) for h in hits] == lexical

    def test_migrated_snapshot_degrades_gracefully(self, tmp_path):
        path = tmp_path / "legacy.snap"
        save_snapshot_v2(build_index().snapshot(), path)
        compact_snapshot(path)
        loaded = load_snapshot(path)
        searcher = Searcher(loaded, strategy="hybrid", cache_size=0)
        with pytest.warns(RuntimeWarning, match="migrated"):
            hits = searcher.search("star wars", 5)
        assert hits

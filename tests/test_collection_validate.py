"""Tests for qunit-set validation (the authoring-support API)."""


from repro.core.collection import QunitCollection
from repro.core.qunit import ParamBinder, QunitDefinition


def definition(**overrides):
    spec = dict(
        name="movie_page",
        base_sql='SELECT * FROM movie WHERE movie.title = "$x"',
        binders=(ParamBinder("x", "movie", "title"),),
        keywords=("movie",),
    )
    spec.update(overrides)
    return QunitDefinition(**spec)


class TestValidate:
    def test_clean_set_has_no_problems(self, mini_db):
        assert QunitCollection(mini_db, [definition()]).validate() == []

    def test_expert_set_is_clean(self, expert_collection):
        assert expert_collection.validate() == []

    def test_missing_binder_column_reported(self, mini_db):
        bad = definition(binders=(ParamBinder("x", "movie", "nope"),))
        problems = QunitCollection(mini_db, [bad]).validate()
        assert problems and "binder" in problems[0]

    def test_numeric_binder_allowed(self, mini_db):
        # Years bind through the segmenter's number recognition.
        by_year = definition(
            base_sql='SELECT * FROM movie WHERE movie.year = "$x"',
            binders=(ParamBinder("x", "movie", "year"),),
        )
        assert QunitCollection(mini_db, [by_year]).validate() == []

    def test_unsearchable_text_binder_reported(self, imdb_db):
        bad = QunitDefinition(
            name="by_gender",
            base_sql='SELECT * FROM person WHERE person.gender = "$x"',
            binders=(ParamBinder("x", "person", "gender"),),
            keywords=("person",),
        )
        problems = QunitCollection(imdb_db, [bad]).validate()
        assert any("not a searchable" in p for p in problems)

    def test_template_foreign_table_reported(self, mini_db):
        bad = definition(conversion="<x>$person.name</x>")
        problems = QunitCollection(mini_db, [bad]).validate()
        assert any("person" in p for p in problems)

    def test_template_unbound_param_reported(self, mini_db):
        bad = definition(conversion="<x>$y</x>")
        problems = QunitCollection(mini_db, [bad]).validate()
        assert any("$y" in p for p in problems)

    def test_missing_keywords_reported(self, mini_db):
        bad = definition(keywords=())
        problems = QunitCollection(mini_db, [bad]).validate()
        assert any("no keywords" in p for p in problems)

    def test_template_with_bound_param_ok(self, mini_db):
        good = definition(conversion='<movie title="$x">$movie.title</movie>')
        assert QunitCollection(mini_db, [good]).validate() == []

    def test_derived_sets_are_clean(self, imdb_db):
        from repro.core.derivation import FormBasedDeriver, SchemaDataDeriver

        for definitions in (SchemaDataDeriver(imdb_db).derive(),
                            FormBasedDeriver(imdb_db).derive()):
            problems = QunitCollection(imdb_db, definitions).validate()
            assert problems == []

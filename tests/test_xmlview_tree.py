"""Tests for the XML view construction and node mechanics."""

import pytest

from repro.xmlview.tree import XmlNode, build_xml_view


@pytest.fixture()
def root(mini_db):
    return build_xml_view(mini_db)


class TestXmlNode:
    def test_dewey_assignment(self):
        node = XmlNode("root", ())
        a = node.add_child("a")
        b = node.add_child("b")
        aa = a.add_child("aa")
        assert a.dewey == (0,) and b.dewey == (1,) and aa.dewey == (0, 0)

    def test_ancestor_test(self):
        root = XmlNode("root", ())
        child = root.add_child("c")
        grandchild = child.add_child("g")
        assert root.is_ancestor_of(grandchild)
        assert child.is_ancestor_of(grandchild)
        assert not grandchild.is_ancestor_of(child)
        assert not child.is_ancestor_of(child)  # proper ancestor only

    def test_find_by_dewey(self):
        root = XmlNode("root", ())
        child = root.add_child("c")
        target = child.add_child("t")
        assert root.find_by_dewey((0, 0)) is target
        with pytest.raises(KeyError):
            child.find_by_dewey((1,))

    def test_walk_preorder(self):
        root = XmlNode("root", ())
        a = root.add_child("a")
        a.add_child("aa")
        root.add_child("b")
        tags = [node.tag for node in root.walk()]
        assert tags == ["root", "a", "aa", "b"]

    def test_subtree_text_and_size(self):
        root = XmlNode("root", ())
        root.add_child("x", "hello")
        root.add_child("y", "world")
        assert root.subtree_text() == "hello world"
        assert root.size() == 3


class TestBuildView:
    def test_collections_for_entity_tables(self, root):
        tags = {child.tag for child in root.children}
        assert "movie_collection" in tags
        assert "person_collection" in tags
        # Junction tables get no top-level collection.
        assert "cast_collection" not in tags

    def test_movie_element_contains_values(self, root):
        movies = next(c for c in root.children if c.tag == "movie_collection")
        star_wars = movies.children[0]
        texts = {node.text for node in star_wars.walk() if node.text}
        assert "Star Wars" in texts
        assert "1977" in texts

    def test_junction_nesting_inlines_other_side(self, root):
        movies = next(c for c in root.children if c.tag == "movie_collection")
        star_wars = movies.children[0]
        cast_children = [n for n in star_wars.children if n.tag == "cast"]
        assert len(cast_children) == 1
        inlined = {node.text for node in cast_children[0].walk() if node.text}
        assert "Carrie Fisher" in inlined  # person name resolved, not person_id

    def test_section_labels_present(self, root):
        movies = next(c for c in root.children if c.tag == "movie_collection")
        star_wars = movies.children[0]
        labels = {n.text for n in star_wars.children if n.tag == "section_label"}
        assert "cast" in labels
        assert "movie genre" in labels

    def test_person_element_lists_filmography(self, root):
        persons = next(c for c in root.children if c.tag == "person_collection")
        tom = persons.children[1]  # Tom Hanks
        texts = {node.text for node in tom.walk() if node.text}
        assert "Cast Away" in texts and "Ocean's Eleven" in texts

    def test_atoms_have_provenance(self, root):
        movies = next(c for c in root.children if c.tag == "movie_collection")
        atoms = movies.children[0].subtree_atoms()
        assert ("movie", "title", "star wars") in atoms

    def test_cap_limits_children(self, mini_db):
        capped = build_xml_view(mini_db, max_children_per_group=1)
        persons = next(c for c in capped.children if c.tag == "person_collection")
        tom = persons.children[1]
        cast_children = [n for n in tom.children if n.tag == "cast"]
        assert len(cast_children) <= 1

    def test_imdb_view_builds(self, imdb_db):
        root = build_xml_view(imdb_db)
        assert root.size() > 1000
        collections = {child.tag for child in root.children}
        assert "award_collection" in collections

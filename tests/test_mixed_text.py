"""Mixed text + structure queries (the paper's Sec. 7 extension).

"We expect to extend qunit notions to databases with substantial mixed
text content and to use IR techniques to query the text content in
conjunction with the database structure."  The movie_info plots are long
text; these tests exercise both directions: pure text queries through the
flat IR fallback, and structured queries carrying free-text residue that
re-ranks the structural candidates.
"""


from repro.utils.text import normalize


def plot_text_of(imdb_db, title: str) -> str:
    movie = imdb_db.lookup("movie", "title", title)[0]
    plot_type = imdb_db.lookup("info_type", "name", "plot")[0]["id"]
    for row in imdb_db.lookup("movie_info", "movie_id", movie["id"]):
        if row["info_type_id"] == plot_type:
            return str(row["info"])
    raise AssertionError(f"no plot for {title}")


def distinctive_tokens(imdb_db, title: str, count: int = 2) -> list[str]:
    """Content words from the movie's plot, rare-ish in the index."""
    text_index = imdb_db.text_index()
    tokens = [
        token for token in normalize(plot_text_of(imdb_db, title)).split()
        if len(token) >= 6
    ]
    tokens.sort(key=lambda t: (text_index.document_frequency(t), t))
    picked: list[str] = []
    for token in tokens:
        if token not in picked:
            picked.append(token)
        if len(picked) == count:
            break
    return picked


class TestPureTextQueries:
    def test_plot_words_reach_plot_content(self, imdb_db, expert_engine):
        words = distinctive_tokens(imdb_db, "Star Wars")
        answer = expert_engine.best(" ".join(words))
        assert not answer.is_empty
        text = normalize(answer.text)
        assert any(word in text for word in words)

    def test_text_query_goes_through_ir_fallback(self, imdb_db, expert_engine):
        words = distinctive_tokens(imdb_db, "Batman")
        explanation = expert_engine.explain(" ".join(words))
        # No structural candidates pass the threshold for pure plot words.
        assert explanation.query_class in ("freetext", "entity_freetext",
                                           "attribute_only", "multi_entity",
                                           "single_entity", "entity_attribute")
        assert explanation.answers


class TestStructurePlusText:
    def test_freetext_residue_steers_to_text_bearing_qunit(self, imdb_db,
                                                           expert_engine):
        # "[title] <plot word>": both main-page and plot qunits bind the
        # title; the free-text residue must pull a plot-bearing instance
        # to the top.
        words = distinctive_tokens(imdb_db, "The Terminator", count=1)
        answer = expert_engine.best(f"the terminator {words[0]}")
        assert not answer.is_empty
        assert words[0] in normalize(answer.text)

    def test_residue_does_not_break_binding(self, expert_engine):
        answer = expert_engine.best("star wars zzzzunknownzzz")
        # The entity still binds; some star wars qunit answers.
        assert ("movie", "title", "star wars") in answer.atoms

    def test_no_freetext_no_rerank(self, expert_engine):
        # Queries without free text keep the structural champion.
        answer = expert_engine.best("star wars cast")
        assert answer.meta("definition") == "movie_full_credits"

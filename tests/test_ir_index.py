"""Tests for documents and the inverted index."""

import pytest

from repro.errors import IndexError_
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex


def doc(doc_id, title, body="", title_weight=3.0):
    return Document.create(doc_id, {"title": title, "body": body},
                           {"title": title_weight})


class TestDocument:
    def test_field_access(self):
        d = doc("d1", "Star Wars", "a space opera")
        assert d.field("title") == "Star Wars"
        with pytest.raises(KeyError):
            d.field("nope")

    def test_weight_default(self):
        d = doc("d1", "x")
        assert d.weight("title") == 3.0
        assert d.weight("body") == 1.0

    def test_metadata(self):
        d = Document.create("d", {"t": "x"}, metadata={"k": "v"})
        assert d.meta("k") == "v"
        assert d.meta("missing", 42) == 42

    def test_full_text(self):
        d = doc("d1", "Star Wars", "space opera")
        assert "Star Wars" in d.full_text()
        assert "space opera" in d.full_text()


class TestIndexing:
    def test_document_count(self):
        index = InvertedIndex()
        index.add(doc("a", "one"))
        index.add(doc("b", "two"))
        assert index.document_count == 2
        assert len(index) == 2

    def test_duplicate_id_rejected(self):
        index = InvertedIndex()
        index.add(doc("a", "one"))
        with pytest.raises(IndexError_):
            index.add(doc("a", "again"))

    def test_add_all(self):
        index = InvertedIndex()
        assert index.add_all([doc("a", "x"), doc("b", "y")]) == 2

    def test_field_weights_scale_tf(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(doc("a", "wars", "wars", title_weight=3.0))
        posting = index.postings("wars")[0]
        assert posting.weighted_tf == 4.0  # 3 (title) + 1 (body)

    def test_document_length_weighted(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(doc("a", "star wars", "space opera epic"))
        assert index.document_length("a") == 2 * 3.0 + 3 * 1.0

    def test_average_length(self):
        index = InvertedIndex(Analyzer(stem=False))
        assert index.average_document_length == 0.0
        index.add(doc("a", "one two"))
        index.add(doc("b", "three"))
        assert index.average_document_length == (6.0 + 3.0) / 2

    def test_non_positive_weight_rejected(self):
        index = InvertedIndex()
        with pytest.raises(IndexError_):
            index.add(doc("a", "x", title_weight=0.0))

    def test_unknown_document_raises(self):
        index = InvertedIndex()
        with pytest.raises(IndexError_):
            index.document("ghost")
        with pytest.raises(IndexError_):
            index.document_length("ghost")


class TestStatistics:
    def test_document_frequency(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(doc("a", "wars"))
        index.add(doc("b", "wars peace"))
        assert index.document_frequency("wars") == 2
        assert index.document_frequency("peace") == 1
        assert index.document_frequency("absent") == 0

    def test_vocabulary_size(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(doc("a", "alpha beta"))
        assert index.vocabulary_size == 2

    def test_validate_passes(self):
        index = InvertedIndex()
        index.add(doc("a", "star wars", "space opera"))
        index.add(doc("b", "cast away"))
        index.validate()

    def test_contains(self):
        index = InvertedIndex()
        index.add(doc("a", "x"))
        assert "a" in index and "b" not in index

"""Tests for schema objects: columns, tables, foreign keys, validation."""

import pytest

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.relational.schema import Column, ColumnType, ForeignKey, Schema, TableSchema

from tests.conftest import build_mini_schema


class TestColumnType:
    def test_integer_accepts_int_not_bool(self):
        assert ColumnType.INTEGER.accepts(5)
        assert not ColumnType.INTEGER.accepts(True)
        assert not ColumnType.INTEGER.accepts(5.0)

    def test_float_accepts_int_and_float(self):
        assert ColumnType.FLOAT.accepts(5)
        assert ColumnType.FLOAT.accepts(5.5)
        assert not ColumnType.FLOAT.accepts("5")

    def test_text(self):
        assert ColumnType.TEXT.accepts("x")
        assert not ColumnType.TEXT.accepts(1)

    def test_boolean(self):
        assert ColumnType.BOOLEAN.accepts(True)
        assert not ColumnType.BOOLEAN.accepts(1)


class TestColumn:
    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("bad name", ColumnType.TEXT)
        with pytest.raises(SchemaError):
            Column("", ColumnType.TEXT)


class TestTableSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.TEXT),
                              Column("a", ColumnType.TEXT)])

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.TEXT)], primary_key="b")

    def test_fk_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.TEXT)],
                        foreign_keys=[ForeignKey("missing", "x", "id")])

    def test_unknown_column_lookup(self):
        table = TableSchema("t", [Column("a", ColumnType.TEXT)])
        with pytest.raises(UnknownColumnError):
            table.column("zzz")

    def test_is_id_like(self):
        schema = build_mini_schema()
        cast = schema.table("cast")
        assert cast.is_id_like("id")
        assert cast.is_id_like("person_id")
        assert not cast.is_id_like("role")

    def test_value_columns_exclude_ids(self):
        cast = build_mini_schema().table("cast")
        assert [c.name for c in cast.value_columns()] == ["role"]

    def test_searchable_columns(self):
        person = build_mini_schema().table("person")
        assert [c.name for c in person.searchable_columns()] == ["name"]

    def test_foreign_key_for(self):
        cast = build_mini_schema().table("cast")
        fk = cast.foreign_key_for("movie_id")
        assert fk is not None and fk.ref_table == "movie"
        assert cast.foreign_key_for("role") is None


class TestSchema:
    def test_duplicate_table_rejected(self):
        table = TableSchema("t", [Column("a", ColumnType.TEXT)])
        with pytest.raises(SchemaError):
            Schema([table, TableSchema("t", [Column("b", ColumnType.TEXT)])])

    def test_fk_to_unknown_table_rejected(self):
        bad = TableSchema("t", [Column("x", ColumnType.INTEGER)],
                          foreign_keys=[ForeignKey("x", "nowhere", "id")])
        with pytest.raises(SchemaError):
            Schema([bad])

    def test_fk_to_unknown_column_rejected(self):
        target = TableSchema("u", [Column("id", ColumnType.INTEGER)])
        bad = TableSchema("t", [Column("x", ColumnType.INTEGER)],
                          foreign_keys=[ForeignKey("x", "u", "nope")])
        with pytest.raises(SchemaError):
            Schema([bad, target])

    def test_unknown_table_error_lists_known(self):
        schema = build_mini_schema()
        with pytest.raises(UnknownTableError) as exc:
            schema.table("nope")
        assert "person" in str(exc.value)

    def test_edges(self):
        schema = build_mini_schema()
        edges = {(source, target) for source, target, _fk in schema.edges()}
        assert ("cast", "person") in edges
        assert ("cast", "movie") in edges
        assert ("movie_genre", "genre") in edges

    def test_neighbors_bidirectional(self):
        schema = build_mini_schema()
        assert "cast" in schema.neighbors("person")
        assert "person" in schema.neighbors("cast")

    def test_join_condition_both_directions(self):
        schema = build_mini_schema()
        assert schema.join_condition("cast", "movie") == ("movie_id", "id")
        assert schema.join_condition("movie", "cast") == ("id", "movie_id")
        assert schema.join_condition("person", "movie") is None

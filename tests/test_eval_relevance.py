"""Tests for the simulated rater model (Table 2)."""

import pytest

from repro.answer import Answer, atom
from repro.eval.relevance import SCALE, Rating, SimulatedRater, SimulatedRaterPool
from repro.utils.rng import DeterministicRng


def make_rater(seed=1, slip=0.0):
    rater = SimulatedRater(DeterministicRng(seed))
    rater.slip_probability = slip
    return rater


GOLD = frozenset({
    atom("person", "name", "Mark Hamill"),
    atom("person", "name", "Harrison Ford"),
    atom("person", "name", "Carrie Fisher"),
    atom("cast", "character_name", "Luke Skywalker"),
})


def answer_with(atoms):
    return Answer("test", frozenset(atoms), "text")


class TestScale:
    def test_table2_shape(self):
        scores = [score for score, _label in SCALE]
        assert scores == [0.0, 0.0, 0.5, 0.5, 1.0]

    def test_rating_must_be_on_scale(self):
        with pytest.raises(ValueError):
            Rating(0.7, "made up")


class TestDeliberation:
    def test_perfect_answer_scores_one(self):
        rater = make_rater()
        rating = rater.rate(answer_with(GOLD), GOLD)
        assert rating.score == 1.0

    def test_empty_answer_scores_zero(self):
        rater = make_rater()
        rating = rater.rate(Answer.empty("x"), GOLD)
        assert rating.score == 0.0
        assert rating.label == "provides no information above the query"

    def test_wrong_content_scores_zero(self):
        rater = make_rater()
        wrong = answer_with({atom("movie", "title", "Totally Different")})
        assert rater.rate(wrong, GOLD).score == 0.0

    def test_incomplete_scores_half(self):
        rater = make_rater()
        partial = answer_with(set(list(GOLD)[:2]))
        rating = rater.rate(partial, GOLD)
        assert rating.score == 0.5
        assert "incomplete" in rating.label

    def test_excessive_scores_half(self):
        rater = make_rater()
        excessive_atoms = set(GOLD)
        excessive_atoms.update(
            atom("movie_info", "info", f"junk number {i}") for i in range(50)
        )
        rating = rater.rate(answer_with(excessive_atoms), GOLD)
        assert rating.score == 0.5
        assert "excessive" in rating.label

    def test_echoing_the_query_scores_zero(self):
        rater = make_rater()
        query_atoms = frozenset({atom("person", "name", "Mark Hamill")})
        echo = answer_with(query_atoms)
        rating = rater.rate(echo, frozenset(query_atoms), query_atoms)
        assert rating.score == 0.0
        assert "no information above" in rating.label

    def test_unanswerable_gold_scores_zero(self):
        rater = make_rater()
        assert rater.rate(answer_with(GOLD), None).score == 0.0

    def test_no_slip_is_deterministic(self):
        ratings = {make_rater(seed=3).rate(answer_with(GOLD), GOLD).score
                   for _ in range(5)}
        assert len(ratings) == 1


class TestPool:
    def test_pool_size(self):
        assert len(SimulatedRaterPool(20, seed=1)) == 20

    def test_pool_rates_all(self):
        pool = SimulatedRaterPool(10, seed=2)
        ratings = pool.rate(answer_with(GOLD), GOLD)
        assert len(ratings) == 10

    def test_mean_and_agreement(self):
        pool = SimulatedRaterPool(10, seed=2)
        ratings = pool.rate(answer_with(GOLD), GOLD)
        assert 0.0 <= pool.mean_score(ratings) <= 1.0
        assert 0.0 < pool.agreement(ratings) <= 1.0

    def test_raters_disagree_on_borderline(self):
        # An answer with middling recall lands near thresholds: a large
        # panel should NOT be unanimous.
        pool = SimulatedRaterPool(40, seed=3)
        borderline = answer_with(set(list(GOLD)[:3]))
        ratings = pool.rate(borderline, GOLD)
        assert len({r.score for r in ratings}) >= 2

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimulatedRaterPool(0)

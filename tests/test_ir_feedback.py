"""Tests for Rocchio relevance feedback."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.feedback import RocchioFeedback
from repro.ir.index import InvertedIndex
from repro.ir.retrieval import Searcher


@pytest.fixture()
def searcher():
    index = InvertedIndex(Analyzer(stem=False))
    index.add(Document.create("sw1", {"body": "star wars rebels jedi empire"}))
    index.add(Document.create("sw2", {"body": "jedi empire lightsaber rebels"}))
    index.add(Document.create("sea", {"body": "ocean waves ship storm"}))
    index.add(Document.create("mix", {"body": "star ocean crossover"}))
    return Searcher(index)


class TestExpansion:
    def test_expands_with_cooccurring_terms(self, searcher):
        feedback = RocchioFeedback(expansion_terms=4)
        expansion = feedback.expansion_for(searcher.index, ["sw1", "sw2"],
                                           ["star"])
        terms = {term for term, _weight in expansion}
        assert "jedi" in terms or "empire" in terms or "rebels" in terms

    def test_excludes_original_terms(self, searcher):
        feedback = RocchioFeedback()
        expansion = feedback.expansion_for(searcher.index, ["sw1"], ["star"])
        assert all(term != "star" for term, _weight in expansion)

    def test_no_relevant_docs_no_expansion(self, searcher):
        feedback = RocchioFeedback()
        assert feedback.expansion_for(searcher.index, [], ["star"]) == []

    def test_weights_bounded_by_beta(self, searcher):
        feedback = RocchioFeedback(beta=0.5)
        expansion = feedback.expansion_for(searcher.index, ["sw1", "sw2"],
                                           ["star"])
        assert all(0 < weight <= 0.5 for _term, weight in expansion)

    def test_cap_respected(self, searcher):
        feedback = RocchioFeedback(expansion_terms=2)
        expansion = feedback.expansion_for(searcher.index, ["sw1", "sw2"], [])
        assert len(expansion) <= 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RocchioFeedback(alpha=-1)
        with pytest.raises(ValueError):
            RocchioFeedback(expansion_terms=-1)


class TestFeedbackSearch:
    def test_feedback_pulls_in_related_documents(self, searcher):
        # "star" alone ranks sw1 and mix equally-ish; feedback on sw1
        # promotes sw2 (shares jedi/empire/rebels) above mix.
        feedback = RocchioFeedback(beta=1.0)
        hits = feedback.search(searcher, "star", ["sw1"], limit=4)
        ranks = {hit.doc_id: hit.rank for hit in hits}
        assert "sw2" in ranks
        assert ranks["sw2"] < ranks.get("mix", 99)

    def test_pseudo_feedback_runs(self, searcher):
        feedback = RocchioFeedback()
        hits = feedback.pseudo_feedback_search(searcher, "jedi", assume_top=2)
        assert hits and hits[0].doc_id in ("sw1", "sw2")

    def test_pseudo_feedback_empty_query(self, searcher):
        feedback = RocchioFeedback()
        assert feedback.pseudo_feedback_search(searcher, "zzzz") == []

    def test_ranks_sequential(self, searcher):
        feedback = RocchioFeedback()
        hits = feedback.search(searcher, "star", ["sw1"], limit=4)
        assert [hit.rank for hit in hits] == list(range(len(hits)))

"""Docs cannot silently rot: README/docs links must resolve, and every CLI
invocation shown in the docs must name a real subcommand that parses.

This is the test behind the CI ``docs`` job (see
``.github/workflows/ci.yml``); it also runs under tier-1 so link breakage
is caught locally first.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md",
                    *(REPO_ROOT / "docs").glob("*.md")])

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
# `repro <sub>` / `python -m repro <sub>` inside fenced code blocks, with
# optional global options (--scale/--seed take a value) before the
# subcommand.
COMMAND_RE = re.compile(
    r"(?:python -m )?\brepro\b((?:\s+--(?:scale|seed)\s+\S+)*)\s+([a-z][a-z_]*)"
)


def test_doc_files_exist():
    # The docs this suite guards: losing one is itself a docs regression.
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    assert "ARCHITECTURE.md" in names
    assert "PERSISTENCE.md" in names


@pytest.mark.parametrize("doc_path", DOC_FILES, ids=lambda path: path.name)
def test_relative_links_resolve(doc_path):
    text = doc_path.read_text(encoding="utf-8")
    broken = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (doc_path.parent / target.split("#")[0]).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            # GitHub-site-relative links (e.g. the CI badge's
            # ../../actions/... path) resolve outside the working tree by
            # design; only in-repo targets are checkable here.
            continue
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc_path.name} has broken relative links: {broken}"


def _documented_subcommands() -> set[str]:
    found = set()
    for doc_path in DOC_FILES:
        text = doc_path.read_text(encoding="utf-8")
        for block in FENCE_RE.findall(text):
            for match in COMMAND_RE.finditer(block):
                found.add(match.group(2))
    return found


def test_docs_mention_cli_commands():
    assert "search" in _documented_subcommands()


def test_documented_subcommands_exist_and_parse():
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0])))
    known = set(subparsers.choices)
    documented = _documented_subcommands()
    unknown = documented - known
    assert not unknown, (
        f"docs show CLI subcommands that do not exist: {sorted(unknown)} "
        f"(known: {sorted(known)})"
    )
    for command in sorted(documented):
        # `repro <cmd> --help` must parse cleanly (exit code 0).
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args([command, "--help"])
        assert excinfo.value.code == 0, f"`repro {command} --help` failed"

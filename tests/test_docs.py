"""Docs cannot silently rot: README/docs links must resolve, every CLI
invocation shown in the docs must name a real subcommand that parses, and
the GitHub workflow files (including the nightly benchmark job) must stay
valid YAML whose `repro` invocations and referenced scripts exist.

This is the test behind the CI ``docs`` job (see
``.github/workflows/ci.yml``); it also runs under tier-1 so link breakage
is caught locally first.
"""

import re
from pathlib import Path

import pytest
import yaml

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md",
                    *(REPO_ROOT / "docs").glob("*.md")])
WORKFLOW_FILES = sorted((REPO_ROOT / ".github" / "workflows").glob("*.yml"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
# `repro <sub>` / `python -m repro <sub>` inside fenced code blocks, with
# optional global options (--scale/--seed take a value) before the
# subcommand.  Subcommand names may be hyphenated (bench-diff).
COMMAND_RE = re.compile(
    r"(?:python -m )?\brepro\b((?:\s+--(?:scale|seed)\s+\S+)*)\s+"
    r"([a-z][a-z_-]*)"
)


def test_doc_files_exist():
    # The docs this suite guards: losing one is itself a docs regression.
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    assert "ARCHITECTURE.md" in names
    assert "PERSISTENCE.md" in names


@pytest.mark.parametrize("doc_path", DOC_FILES, ids=lambda path: path.name)
def test_relative_links_resolve(doc_path):
    text = doc_path.read_text(encoding="utf-8")
    broken = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (doc_path.parent / target.split("#")[0]).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            # GitHub-site-relative links (e.g. the CI badge's
            # ../../actions/... path) resolve outside the working tree by
            # design; only in-repo targets are checkable here.
            continue
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc_path.name} has broken relative links: {broken}"


def _documented_subcommands() -> set[str]:
    found = set()
    for doc_path in DOC_FILES:
        text = doc_path.read_text(encoding="utf-8")
        for block in FENCE_RE.findall(text):
            for match in COMMAND_RE.finditer(block):
                found.add(match.group(2))
    # Workflow `run:` lines invoke the CLI too — a renamed subcommand
    # must not strand the nightly job.
    for workflow_path in WORKFLOW_FILES:
        for match in COMMAND_RE.finditer(
                workflow_path.read_text(encoding="utf-8")):
            found.add(match.group(2))
    return found


def test_docs_mention_cli_commands():
    assert "search" in _documented_subcommands()


def test_documented_subcommands_exist_and_parse():
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, type(parser._subparsers._group_actions[0])))
    known = set(subparsers.choices)
    documented = _documented_subcommands()
    unknown = documented - known
    assert not unknown, (
        f"docs show CLI subcommands that do not exist: {sorted(unknown)} "
        f"(known: {sorted(known)})"
    )
    for command in sorted(documented):
        # `repro <cmd> --help` must parse cleanly (exit code 0).
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args([command, "--help"])
        assert excinfo.value.code == 0, f"`repro {command} --help` failed"


# -- GitHub workflows --------------------------------------------------------


def test_workflow_files_exist():
    names = {path.name for path in WORKFLOW_FILES}
    assert "ci.yml" in names
    assert "nightly-bench.yml" in names


@pytest.mark.parametrize("workflow_path", WORKFLOW_FILES,
                         ids=lambda path: path.name)
def test_workflows_parse(workflow_path):
    """Every workflow must be valid YAML with the minimal GitHub Actions
    shape (a trigger and at least one job with steps)."""
    data = yaml.safe_load(workflow_path.read_text(encoding="utf-8"))
    assert isinstance(data, dict), f"{workflow_path.name} is not a mapping"
    # PyYAML parses the bare `on:` key as boolean True (YAML 1.1).
    assert "on" in data or True in data, f"{workflow_path.name} has no trigger"
    jobs = data.get("jobs")
    assert isinstance(jobs, dict) and jobs, f"{workflow_path.name} has no jobs"
    for name, job in jobs.items():
        assert job.get("steps"), f"{workflow_path.name}: job {name} is empty"


def test_nightly_bench_workflow_shape():
    """The nightly perf job must keep the pieces the regression gate
    relies on: a schedule + manual dispatch, a full-scale benchmark run,
    the regression check script, and artifact upload."""
    path = REPO_ROOT / ".github" / "workflows" / "nightly-bench.yml"
    data = yaml.safe_load(path.read_text(encoding="utf-8"))
    triggers = data.get("on", data.get(True))
    assert "schedule" in triggers
    assert "workflow_dispatch" in triggers
    runs = [step.get("run", "")
            for job in data["jobs"].values() for step in job["steps"]]
    assert any("--bench-full" in run and "--benchmark-enable" in run
               for run in runs)
    assert any("check_regression.py" in run for run in runs)
    assert (REPO_ROOT / "benchmarks" / "check_regression.py").exists()
    assert (REPO_ROOT / "benchmarks" / "baselines").is_dir()


def test_workflow_script_paths_exist():
    """Repo paths named in workflow `run:` lines must exist — a moved
    script would otherwise only fail at the next scheduled run."""
    pattern = re.compile(r"(?:python\s+)?((?:benchmarks|tests|src)/[\w./-]+)")
    for workflow_path in WORKFLOW_FILES:
        data = yaml.safe_load(workflow_path.read_text(encoding="utf-8"))
        for job in data["jobs"].values():
            for step in job["steps"]:
                for match in pattern.finditer(step.get("run", "") or ""):
                    target = match.group(1)
                    if "*" in target:
                        continue
                    assert (REPO_ROOT / target).exists(), (
                        f"{workflow_path.name} references missing "
                        f"path {target!r}")

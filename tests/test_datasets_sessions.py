"""Tests for session-structured logs and refinement analysis."""

import pytest

from repro.datasets.querylog.sessions import (
    QuerySession,
    SessionAnalyzer,
    SessionLogGenerator,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def sessions(imdb_db):
    return SessionLogGenerator(imdb_db, seed=17).generate(300)


@pytest.fixture(scope="module")
def analyzer(imdb_db):
    return SessionAnalyzer(imdb_db)


class TestModel:
    def test_empty_session_rejected(self):
        with pytest.raises(DatasetError):
            QuerySession(user_id=1, queries=())

    def test_multi_query_flag(self):
        assert QuerySession(1, ("a", "b")).is_multi_query
        assert not QuerySession(1, ("a",)).is_multi_query


class TestGenerator:
    def test_deterministic(self, imdb_db):
        a = SessionLogGenerator(imdb_db, seed=17).generate(50)
        b = SessionLogGenerator(imdb_db, seed=17).generate(50)
        assert a == b

    def test_count(self, sessions):
        assert len(sessions) == 300
        assert all(s.queries for s in sessions)

    def test_mix_includes_refinements(self, sessions):
        multi = [s for s in sessions if s.is_multi_query]
        assert 0.25 < len(multi) / len(sessions) < 0.55

    def test_specialization_sessions_extend_the_entity(self, sessions, imdb_db):
        # In a specialize session, later queries start with the first query.
        extended = 0
        for session in sessions:
            if len(session.queries) >= 2 and \
                    session.queries[1].startswith(session.queries[0]):
                extended += 1
        assert extended > 10

    def test_validation(self, imdb_db):
        with pytest.raises(DatasetError):
            SessionLogGenerator(imdb_db).generate(0)

    def test_as_query_log(self, sessions, imdb_db):
        log = SessionLogGenerator(imdb_db, seed=17).as_query_log(sessions)
        assert log.total_queries == sum(len(s.queries) for s in sessions)
        assert log.n_users == len(sessions)


class TestAnalyzer:
    def test_statistics_shape(self, analyzer, sessions):
        stats = analyzer.statistics(sessions)
        assert stats.n_sessions == 300
        assert 0.0 < stats.multi_query_fraction < 1.0
        assert 0.0 <= stats.refinement_fraction <= 1.0

    def test_refinements_detected(self, analyzer, sessions):
        stats = analyzer.statistics(sessions)
        # ~25% of sessions are specialize-chains; most should be detected.
        assert stats.refinement_fraction > 0.4

    def test_refining_sessions_start_underspecified(self, analyzer, sessions):
        stats = analyzer.statistics(sessions)
        # The premise of rollup: refiners overwhelmingly start with a
        # bare entity.
        assert stats.started_underspecified_fraction > 0.7

    def test_specializations_are_attribute_words(self, analyzer, sessions):
        stats = analyzer.statistics(sessions)
        names = [name for name, _count in stats.top_specializations()]
        assert names  # cast/plot/awards/movie...
        assert any(name in ("cast", "movie", "award", "plot", "soundtrack",
                            "box office", "movie.release_year", "location",
                            "trivia", "quotes", "movie.rating", "filmography",
                            "biography")
                   for name in names)

    def test_rollup_weights_per_anchor(self, analyzer, sessions):
        weights = analyzer.rollup_weights(sessions)
        assert "movie" in weights or "person" in weights
        for counter in weights.values():
            assert all(count > 0 for count in counter.values())

    def test_empty_rejected(self, analyzer):
        with pytest.raises(DatasetError):
            analyzer.statistics([])

    def test_explicit_specialization_detected(self, analyzer):
        sessions = [QuerySession(1, ("star wars", "star wars cast"))]
        stats = analyzer.statistics(sessions)
        assert stats.refinement_fraction == 1.0
        assert stats.started_underspecified_fraction == 1.0

    def test_reformulation_is_not_specialization(self, analyzer):
        sessions = [QuerySession(1, ("sta wars", "star wars"))]
        stats = analyzer.statistics(sessions)
        assert stats.refinement_fraction == 0.0

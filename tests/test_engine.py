"""Tests for the end-to-end qunit search engine."""



class TestFigureOneWalkthrough:
    def test_star_wars_cast(self, expert_engine):
        # The paper's Fig. 1: "star wars cast" -> "[movie.name] [cast]" ->
        # the cast qunit instance for Star Wars.
        answer = expert_engine.best("star wars cast")
        assert answer.meta("definition") == "movie_full_credits"
        assert ("person", "name", "mark hamill") in answer.atoms

    def test_explanation_records_pipeline(self, expert_engine):
        explanation = expert_engine.explain("star wars cast")
        assert explanation.template == "[movie.title] cast"
        assert explanation.query_class == "entity_attribute"
        assert explanation.candidates[0][0] == "movie_full_credits"
        assert explanation.answers[0] == "movie_full_credits::star_wars"


class TestQueryShapes:
    def test_underspecified_single_entity(self, expert_engine):
        answer = expert_engine.best("george clooney")
        assert answer.meta("definition") == "person_main_page"

    def test_attribute_query(self, expert_engine):
        answer = expert_engine.best("tom hanks awards")
        assert answer.meta("definition") == "person_awards"

    def test_aggregate_query(self, expert_engine):
        answer = expert_engine.best("top rated movies")
        assert answer.meta("definition") == "top_charts"

    def test_multi_entity_query(self, expert_engine):
        answer = expert_engine.best("angelina jolie tomb raider")
        assert not answer.is_empty
        assert ("movie", "title", "tomb raider") in answer.atoms

    def test_genre_query(self, expert_engine):
        answer = expert_engine.best("science fiction movies")
        assert answer.meta("definition") == "genre_movies"

    def test_freetext_falls_back_to_ir(self, expert_engine):
        # Misspelled/partial queries go through the flat instance index.
        answer = expert_engine.best("clooney oceans")
        assert not answer.is_empty

    def test_unknown_terms_yield_empty(self, expert_engine):
        answer = expert_engine.best("zzzz qqqq wwww")
        assert answer.is_empty or answer.score < 0.3

    def test_empty_instance_skipped(self, expert_engine):
        # movie_quotes-style defs with no data must not produce empty answers.
        answers = expert_engine.search("star wars trivia", limit=2)
        assert all(not a.is_empty for a in answers)


class TestAnswers:
    def test_system_branding(self, expert_engine):
        assert expert_engine.best("star wars").system == "qunits-expert"
        assert expert_engine.system_name == "qunits-expert"

    def test_limit_and_dedup(self, expert_engine):
        answers = expert_engine.search("star wars", limit=4)
        instance_ids = [a.meta("instance_id") for a in answers]
        assert len(instance_ids) == len(set(instance_ids))
        assert len(answers) <= 4

    def test_scores_descend_within_match(self, expert_engine):
        answers = expert_engine.search("george clooney", limit=3)
        assert answers  # several person qunits available

    def test_deterministic(self, expert_engine):
        first = [a.meta("instance_id") for a in expert_engine.search("batman", limit=3)]
        second = [a.meta("instance_id") for a in expert_engine.search("batman", limit=3)]
        assert first == second

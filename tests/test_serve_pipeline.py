"""Unit tests for the staged query pipeline (``repro.serve``): the
df-skew cost model, EngineConfig knobs, per-definition Bloom pruning,
stage middleware, the explanation trace, and the searcher pool."""

import pytest

from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine
from repro.core.store import CollectionStore, LoadOptions
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.wand import (
    AUTO_SKEW_MIN_DF,
    AUTO_SKEW_RATIO,
    AUTO_WAND_MIN_TERMS,
    resolve_strategy,
)
from repro.serve.pipeline import EngineConfig
from repro.serve.pool import SearcherPool


def _snapshot_with_dfs(df_map: dict[str, int]):
    """A snapshot whose terms have exactly the given document
    frequencies (one document per df unit, terms co-occurring)."""
    index = InvertedIndex(Analyzer(stem=False))
    total = max(df_map.values(), default=1)
    for i in range(total):
        body = " ".join(term for term, df in df_map.items() if i < df)
        index.add(Document.create(f"d{i:04d}", {"body": body or "pad"}))
    return index.snapshot()


class TestDfSkewCostModel:
    """Routing decisions at known df distributions: the cost model must
    send rare-term-driven short queries to WAND, keep balanced short
    queries on max-score, and leave explicit strategies untouched."""

    def test_explicit_strategy_passes_through(self):
        snapshot = _snapshot_with_dfs({"a": 100, "b": 2})
        assert resolve_strategy("maxscore", ["a", "b"],
                                snapshot) == "maxscore"
        assert resolve_strategy("blockmax", ["a"], snapshot) == "blockmax"

    def test_long_queries_route_to_wand_regardless_of_stats(self):
        terms = ["t"] * AUTO_WAND_MIN_TERMS
        assert resolve_strategy("auto", terms) == "wand"
        assert resolve_strategy("auto", terms,
                                _snapshot_with_dfs({"t": 1})) == "wand"

    def test_skewed_two_term_query_routes_to_wand(self):
        # rare df=2 vs common df=128: ratio 64 >= AUTO_SKEW_RATIO and
        # the common term clears AUTO_SKEW_MIN_DF.
        snapshot = _snapshot_with_dfs({"rare": 2, "common": 128})
        assert resolve_strategy("auto", ["rare", "common"],
                                snapshot) == "wand"

    def test_balanced_two_term_query_stays_on_maxscore(self):
        snapshot = _snapshot_with_dfs({"a": 128, "b": 100})
        assert resolve_strategy("auto", ["a", "b"], snapshot) == "maxscore"

    def test_skew_needs_a_long_enough_postings_list(self):
        # Ratio is huge but the common term is below AUTO_SKEW_MIN_DF:
        # nothing long enough to seek-skip, max-score wins.
        assert AUTO_SKEW_MIN_DF > 30
        snapshot = _snapshot_with_dfs({"rare": 1, "common": 30})
        assert resolve_strategy("auto", ["rare", "common"],
                                snapshot) == "maxscore"

    def test_ratio_threshold_is_strict_enough(self):
        # Just below the ratio: stays on max-score.
        common = AUTO_SKEW_MIN_DF * 2
        rare = int(common / AUTO_SKEW_RATIO) + 1
        snapshot = _snapshot_with_dfs({"rare": rare, "common": common})
        assert resolve_strategy("auto", ["rare", "common"],
                                snapshot) == "maxscore"

    def test_unindexed_terms_do_not_count_toward_skew(self):
        # Only one term actually matches: no pair to skew against.
        snapshot = _snapshot_with_dfs({"common": 128})
        assert resolve_strategy("auto", ["common", "zzzz"],
                                snapshot) == "maxscore"

    def test_single_term_and_no_stats_stay_length_only(self):
        snapshot = _snapshot_with_dfs({"common": 128})
        assert resolve_strategy("auto", ["common"], snapshot) == "maxscore"
        assert resolve_strategy("auto", ["rare", "common"]) == "maxscore"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            resolve_strategy("bogus", ["a"])


class TestEngineConfig:
    def test_defaults_match_historical_behavior(self):
        config = EngineConfig()
        assert config.min_match_score == QunitSearchEngine.MIN_MATCH_SCORE
        assert config.backfill_budget is None
        assert config.result_cache_size == 0
        assert config.max_query_terms is None

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(backfill_budget=-1)
        with pytest.raises(ValueError):
            EngineConfig(candidate_limit=0)
        with pytest.raises(ValueError):
            EngineConfig(result_cache_size=-5)
        with pytest.raises(ValueError):
            EngineConfig(max_query_terms=0)

    def test_min_match_score_is_configurable(self, expert_collection):
        # A threshold above every match score rejects all structural
        # candidates; answers must come from flat IR backfill only.
        strict = QunitSearchEngine(expert_collection, flavor="expert",
                                   config=EngineConfig(min_match_score=0.99))
        explanation = strict.explain("star wars cast")
        assert all(rejected for _n, _s, rejected in explanation.candidates)
        answers = strict.search("star wars cast", limit=3)
        assert answers  # backfill still serves the query

    def test_backfill_budget_zero_disables_backfill(self, imdb_db,
                                                    expert_collection):
        from tests.test_mixed_text import distinctive_tokens

        # Distinctive plot words: no structural match, but real IR hits —
        # answered exclusively by backfill.
        query = " ".join(distinctive_tokens(imdb_db, "Star Wars"))
        baseline = QunitSearchEngine(expert_collection, flavor="expert")
        assert baseline.search(query, limit=3)
        capped = QunitSearchEngine(expert_collection, flavor="expert",
                                   config=EngineConfig(backfill_budget=0))
        assert capped.search(query, limit=3) == []

    def test_backfill_budget_caps_but_keeps_structural(
            self, expert_collection):
        engine = QunitSearchEngine(expert_collection, flavor="expert",
                                   config=EngineConfig(backfill_budget=0))
        answer = engine.best("star wars cast")
        assert answer.meta("definition") == "movie_full_credits"


class TestDefinitionBloom:
    def test_no_bloom_before_any_index_exists(self, imdb_db):
        collection = QunitCollection(imdb_db, imdb_expert_qunits(),
                                     max_instances_per_definition=20)
        assert collection.definition_bloom("movie_full_credits") is None

    def test_bloom_built_lazily_from_live_index(self, imdb_db):
        collection = QunitCollection(imdb_db, imdb_expert_qunits(),
                                     max_instances_per_definition=20)
        index = collection.definition_index("movie_full_credits")
        bloom = collection.definition_bloom("movie_full_credits")
        assert bloom is not None
        for term in list(index.snapshot().terms())[:20]:
            assert term in bloom  # no false negatives

    def test_bloom_rebuilt_after_index_version_bump(self, imdb_db):
        collection = QunitCollection(imdb_db, imdb_expert_qunits(),
                                     max_instances_per_definition=20)
        index = collection.definition_index("movie_full_credits")
        first = collection.definition_bloom("movie_full_credits")
        index.add(Document.create("extra::doc",
                                  {"body": "zweihander flumph"}))
        rebuilt = collection.definition_bloom("movie_full_credits")
        assert rebuilt is not first
        assert "zweihander" in rebuilt

    def test_unknown_definition_fails_loudly(self, imdb_db):
        from repro.errors import DerivationError

        collection = QunitCollection(imdb_db, imdb_expert_qunits())
        with pytest.raises(DerivationError):
            collection.definition_bloom("nope")

    def test_loaded_collection_restores_persisted_blooms(self, imdb_db,
                                                         tmp_path):
        live = QunitCollection(imdb_db, imdb_expert_qunits(),
                               max_instances_per_definition=20)
        CollectionStore(tmp_path / "gen").save(live)
        loaded = CollectionStore(tmp_path / "gen").load(
            imdb_db, LoadOptions(lazy=False))
        for name in loaded.definitions:
            bloom = loaded.definition_bloom(name)
            assert bloom is not None
            snapshot = loaded._loaded_snapshots[name]
            for term in list(snapshot.terms())[:10]:
                assert term in bloom

    def test_delta_advanced_snapshot_discards_stale_persisted_bloom(
            self, imdb_db, tmp_path):
        # A persisted filter describes the base vocabulary only; once a
        # journal appends delta documents, restoring it would let the
        # plan stage prune retrieval for delta-only terms (real missing
        # answers).  The load must discard it and rebuild from the
        # delta-applied snapshot.
        from repro.ir.index import InvertedIndex
        from repro.ir.persist import (
            SnapshotJournal,
            load_snapshot,
            read_snapshot_header,
        )
        from repro.ir.shard import TermBloomFilter

        live = QunitCollection(imdb_db, imdb_expert_qunits(),
                               max_instances_per_definition=20)
        store = CollectionStore(tmp_path / "gen")
        out = tmp_path / "gen"
        store.save(live)
        name = sorted(live.definitions)[0]
        import json

        manifest = json.loads((out / "collection.json").read_text())
        snap_path = out / manifest["snapshots"]["definitions"][name]
        index = InvertedIndex.from_snapshot(load_snapshot(snap_path))
        SnapshotJournal(index, snap_path, compact_threshold=99)
        index.add(Document.create("delta::doc", {"body": "zweihander"}))

        loaded = store.load(imdb_db, LoadOptions(lazy=False))
        bloom = loaded.definition_bloom(name)
        assert bloom is not None
        assert "zweihander" in bloom  # stale filter would miss it

        # Compaction must refresh the persisted filter the same way.
        from repro.ir.persist import compact_snapshot

        assert compact_snapshot(snap_path) >= 1
        compacted = TermBloomFilter.from_dict(
            read_snapshot_header(snap_path)["bloom"])
        assert "zweihander" in compacted

    def test_bloom_pruned_engine_answers_identical(self, imdb_db, tmp_path):
        # The loaded engine plans with persisted per-definition Blooms
        # (skipping provably-unmatchable definition retrieval); answers
        # must be identical to the live, bloom-less engine.
        live_collection = QunitCollection(imdb_db, imdb_expert_qunits(),
                                          max_instances_per_definition=20)
        live = QunitSearchEngine(live_collection, flavor="expert")
        CollectionStore(tmp_path / "gen").save(live_collection)
        loaded = QunitSearchEngine.load(imdb_db, tmp_path / "gen",
                                        flavor="expert")
        queries = ["star wars cast", "george clooney", "tom hanks movies",
                   "science fiction movies", "zzzz qqqq"]
        for query in queries:
            a = [(x.meta("instance_id"), x.score)
                 for x in live.search(query, limit=4)]
            b = [(x.meta("instance_id"), x.score)
                 for x in loaded.search(query, limit=4)]
            assert a == b


class TestMiddleware:
    def test_result_cache_serves_identical_answers(self, expert_collection):
        engine = QunitSearchEngine(
            expert_collection, flavor="expert",
            config=EngineConfig(result_cache_size=8))
        first_answers, first_explanation = \
            engine.search_with_explanation("star wars cast", limit=3)
        assert "result cache" not in " ".join(first_explanation.notes)
        again_answers, again_explanation = \
            engine.search_with_explanation("star wars cast", limit=3)
        assert [(a.meta("instance_id"), a.score) for a in again_answers] == \
               [(a.meta("instance_id"), a.score) for a in first_answers]
        assert any("result cache" in note
                   for note in again_explanation.notes)

    def test_result_cache_keyed_on_limit(self, expert_collection):
        engine = QunitSearchEngine(
            expert_collection, flavor="expert",
            config=EngineConfig(result_cache_size=8))
        assert len(engine.search("star wars cast", limit=1)) == 1
        assert len(engine.search("star wars cast", limit=3)) == 3

    def test_admission_rejects_overlong_queries(self, expert_collection):
        engine = QunitSearchEngine(
            expert_collection, flavor="expert",
            config=EngineConfig(max_query_terms=4))
        answers, explanation = engine.search_with_explanation(
            "one two three four five six", limit=3)
        assert answers == []
        assert explanation.query_class == "rejected"
        assert any("admission" in note for note in explanation.notes)
        # Within the limit: served normally.
        assert engine.best("star wars cast").meta("definition") == \
               "movie_full_credits"

    def test_admitted_and_rejected_mix_keeps_batch_order(
            self, expert_collection):
        engine = QunitSearchEngine(
            expert_collection, flavor="expert",
            config=EngineConfig(max_query_terms=4))
        results = engine.search_many_with_explanations(
            ["star wars cast", "a b c d e f g", "george clooney"], limit=2)
        assert results[0][0] and results[2][0]
        assert results[1][0] == []
        assert results[1][1].query_class == "rejected"


class TestExplanationTrace:
    def test_stage_timings_cover_every_stage(self, expert_engine):
        explanation = expert_engine.explain("star wars cast")
        assert [timing.stage for timing in explanation.stages] == \
               ["segment", "match", "plan", "execute", "assemble"]
        assert all(timing.seconds >= 0 for timing in explanation.stages)

    def test_plan_and_strategy_surface(self, expert_engine):
        explanation = expert_engine.explain("star wars cast")
        assert explanation.plan  # at least the flat backfill line
        assert explanation.strategy in ("auto", "maxscore", "wand",
                                        "blockmax")
        assert any("materialize movie_full_credits" in line
                   for line in explanation.plan)

    def test_rejected_candidates_included_with_flag(self, expert_engine):
        explanation = expert_engine.explain("star wars cast")
        assert explanation.candidates[0][0] == "movie_full_credits"
        assert explanation.candidates[0][2] is False
        assert any(rejected for _n, score, rejected
                   in explanation.candidates if score <
                   QunitSearchEngine.MIN_MATCH_SCORE)

    def test_cache_counters_move(self, imdb_db):
        engine = QunitSearchEngine(
            QunitCollection(imdb_db, imdb_expert_qunits(),
                            max_instances_per_definition=20),
            flavor="expert")
        # Pure garbage free text: no structural match, so the answer (or
        # lack of one) comes from the flat backfill searcher.
        first = engine.explain("zzzz qqqq wwww")
        assert first.cache_misses >= 1
        second = engine.explain("zzzz qqqq wwww")
        assert second.cache_hits >= 1

    def test_cache_counters_cover_definition_searchers(self, imdb_db):
        # A structural query answered without any flat dispatch must
        # still report its definition-searcher cache traffic — the
        # counters sum over every searcher the batch touched.
        engine = QunitSearchEngine(
            QunitCollection(imdb_db, imdb_expert_qunits(),
                            max_instances_per_definition=20),
            flavor="expert")
        first = engine.explain("star wars cast")
        assert first.shard_tasks == 0  # structural answers filled the limit
        assert first.cache_misses >= 1
        second = engine.explain("star wars cast")
        assert second.cache_hits >= 1

    def test_cold_explain_reports_executed_strategy(self, imdb_db):
        # On a cold live collection the plan stage has no snapshot to
        # resolve the cost model against, but the trace must still
        # report the strategy the flat retrieval actually executed
        # (resolution is re-run at assemble, post-snapshot-build).
        def build():
            # A sky-high match threshold rejects every structural
            # candidate, so the query is guaranteed to execute the flat
            # backfill (whose strategy the trace must report).
            return QunitSearchEngine(
                QunitCollection(imdb_db, imdb_expert_qunits(),
                                max_instances_per_definition=20),
                flavor="expert",
                config=EngineConfig(min_match_score=2.0))

        # Pick a df-skewed term pair from a warmed twin collection, so
        # the cost model and the length-only fallback disagree on it.
        probe = build()
        snapshot = probe.collection.global_snapshot()
        by_df = sorted(snapshot.terms(),
                       key=lambda t: snapshot.document_frequency(t))
        rare, common = by_df[0], by_df[-1]
        query = f"{rare} {common}"
        from repro.ir.wand import resolve_strategy

        expected = resolve_strategy("auto", [rare, common], snapshot)
        assert expected == "wand"  # the pair is skewed enough to flip
        cold_engine = build()
        assert cold_engine.collection.peek_global_snapshot() is None
        assert cold_engine.explain(query).strategy == expected
        # Warm resolution matches the model too.
        assert probe.explain(query).strategy == expected

    def test_render_is_printable(self, expert_engine):
        text = expert_engine.explain("star wars cast").render()
        assert "plan     :" in text
        assert "stages   :" in text
        assert "retrieval:" in text


class TestSearcherPool:
    def _searcher(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(Document.create("d0", {"body": "hello world"}))
        from repro.ir.retrieval import Searcher

        return Searcher(index)

    def test_get_builds_once_and_reuses(self):
        pool = SearcherPool(max_size=4)
        built = []

        def factory():
            built.append(1)
            return self._searcher()

        first = pool.get("k", factory)
        second = pool.get("k", factory)
        assert first is second
        assert len(built) == 1
        assert "k" in pool and len(pool) == 1

    def test_overflow_evicts_least_recently_used(self):
        pool = SearcherPool(max_size=2)
        a = pool.get("a", self._searcher)
        pool.get("b", self._searcher)
        pool.get("a", lambda: pytest.fail("'a' must be cached"))
        pool.get("c", self._searcher)  # evicts "b", the LRU entry
        assert "a" in pool and "c" in pool and "b" not in pool
        assert pool.get("a", lambda: pytest.fail("evicted wrongly")) is a

    def test_close_is_idempotent(self):
        pool = SearcherPool()
        pool.get("a", self._searcher)
        pool.close()
        pool.close()

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SearcherPool(max_size=0)


class _TrackedSearcher:
    """A stand-in searcher that records whether it has been closed."""

    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestSearcherPoolLeases:
    """The acquire/release lease protocol: an evicted-but-leased
    searcher must stay open until the batch holding it finishes."""

    def test_eviction_defers_close_until_last_release(self):
        pool = SearcherPool(max_size=1)
        held = pool.acquire("a", _TrackedSearcher)
        pool.get("b", _TrackedSearcher)  # evicts "a" while leased
        assert "a" not in pool
        assert not held.closed  # the lease keeps it open
        pool.release(held)
        assert held.closed  # last release lands the deferred close

    def test_unleased_eviction_closes_immediately(self):
        pool = SearcherPool(max_size=1)
        victim = pool.get("a", _TrackedSearcher)
        pool.get("b", _TrackedSearcher)
        assert victim.closed

    def test_leases_nest(self):
        pool = SearcherPool(max_size=1)
        first = pool.acquire("a", _TrackedSearcher)
        second = pool.acquire("a", lambda: pytest.fail("must be cached"))
        assert first is second
        pool.get("b", _TrackedSearcher)  # evict while doubly leased
        pool.release(first)
        assert not first.closed  # one lease still outstanding
        pool.release(first)
        assert first.closed

    def test_release_of_still_pooled_searcher_keeps_it_open(self):
        pool = SearcherPool(max_size=4)
        held = pool.acquire("a", _TrackedSearcher)
        pool.release(held)
        assert not held.closed
        assert "a" in pool  # back to plain evictable pool residency

    def test_release_without_acquire_raises(self):
        pool = SearcherPool()
        searcher = pool.get("a", _TrackedSearcher)
        with pytest.raises(ValueError):
            pool.release(searcher)

    def test_close_sweep_respects_leases(self):
        pool = SearcherPool(max_size=4)
        held = pool.acquire("a", _TrackedSearcher)
        other = pool.get("b", _TrackedSearcher)
        pool.close()
        assert other.closed  # unleased: swept immediately
        assert not held.closed  # leased: survives the sweep...
        pool.release(held)
        assert held.closed  # ...until its last release

    def test_key_is_rebuildable_after_leased_eviction(self):
        pool = SearcherPool(max_size=1)
        old = pool.acquire("a", _TrackedSearcher)
        pool.get("b", _TrackedSearcher)
        rebuilt = pool.get("a", _TrackedSearcher)  # evicts "b"
        assert rebuilt is not old
        pool.release(old)
        assert old.closed and not rebuilt.closed

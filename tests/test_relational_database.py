"""Tests for the Database container: inserts, FK checking, index caching."""

import pytest

from repro.errors import IntegrityError, UnknownTableError
from repro.relational.database import Database

from tests.conftest import build_mini_schema


class TestInserts:
    def test_insert_many_counts(self):
        db = Database(build_mini_schema())
        n = db.insert_many("person", [
            {"id": 1, "name": "A"}, {"id": 2, "name": "B"},
        ])
        assert n == 2 and db.row_count("person") == 2

    def test_total_rows(self, mini_db):
        assert mini_db.total_rows() == 3 + 3 + 3 + 3 + 4

    def test_unknown_table(self, mini_db):
        with pytest.raises(UnknownTableError):
            mini_db.table("nope")

    def test_insert_invalidates_statistics(self, mini_db):
        before = mini_db.statistics.table("person").row_count
        mini_db.insert("person", {"id": 99, "name": "New Person"})
        after = mini_db.statistics.table("person").row_count
        assert after == before + 1

    def test_insert_invalidates_indexes(self, mini_db):
        index = mini_db.hash_index("person", "name")
        assert index.lookup("Zelda Zeta") == []
        mini_db.insert("person", {"id": 98, "name": "Zelda Zeta"})
        fresh = mini_db.hash_index("person", "name")
        assert len(fresh.lookup("Zelda Zeta")) == 1

    def test_insert_invalidates_text_index(self, mini_db):
        assert not mini_db.text_index().has_phrase("brand new movie")
        mini_db.insert("movie", {"id": 77, "title": "Brand New Movie"})
        assert mini_db.text_index().has_phrase("brand new movie")


class TestForeignKeys:
    def test_consistent_db_passes(self, mini_db):
        assert mini_db.check_foreign_keys() == []
        mini_db.assert_consistent()

    def test_violation_detected(self, mini_db):
        mini_db.insert("cast", {"id": 99, "person_id": 12345, "movie_id": 1,
                                "role": "actor"})
        violations = mini_db.check_foreign_keys()
        assert len(violations) == 1
        assert "12345" in violations[0]
        with pytest.raises(IntegrityError):
            mini_db.assert_consistent()

    def test_null_fk_is_not_violation(self, mini_db):
        mini_db.insert("cast", {"id": 98, "person_id": 1, "movie_id": 2,
                                "role": None})
        assert mini_db.check_foreign_keys() == []


class TestIndexes:
    def test_hash_index_cached(self, mini_db):
        assert mini_db.hash_index("movie", "title") is \
               mini_db.hash_index("movie", "title")

    def test_lookup_returns_rows(self, mini_db):
        rows = mini_db.lookup("movie", "title", "star wars")
        assert len(rows) == 1 and rows[0]["year"] == 1977

    def test_text_index_covers_searchable_tables(self, mini_db):
        index = mini_db.text_index()
        assert ("person", "name") in index.sources
        assert ("movie", "title") in index.sources
        # movie_genre has no searchable columns
        assert all(table != "movie_genre" for table, _c in index.sources)

    def test_repr_mentions_size(self, mini_db):
        assert "tables" in repr(mini_db)

"""The package docstring's usage example must actually work, and the
persistence/sharding/collection modules must keep full public docstring
coverage (module, classes, functions, and public methods)."""

import doctest
import inspect

import pytest

import repro
import repro.bench.regression
import repro.core.collection
import repro.ir.persist
import repro.ir.shard
import repro.ir.wand


def test_package_docstring_example():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 1
    assert results.failed == 0


def test_public_api_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"


# -- docstring coverage ------------------------------------------------------

COVERED_MODULES = [repro.ir.persist, repro.ir.shard, repro.ir.wand,
                   repro.core.collection, repro.bench.regression]


def _public_members(module):
    """(qualified name, object) for every public class/function defined in
    ``module``, plus the public methods and properties of those classes."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        members.append((f"{module.__name__}.{name}", obj))
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if isinstance(attr, property):
                    members.append(
                        (f"{module.__name__}.{name}.{attr_name}", attr.fget))
                elif inspect.isfunction(attr) or isinstance(
                        attr, (classmethod, staticmethod)):
                    func = attr.__func__ if isinstance(
                        attr, (classmethod, staticmethod)) else attr
                    members.append(
                        (f"{module.__name__}.{name}.{attr_name}", func))
    return members


@pytest.mark.parametrize("module", COVERED_MODULES,
                         ids=lambda module: module.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} has no module docstring"


@pytest.mark.parametrize("module", COVERED_MODULES,
                         ids=lambda module: module.__name__)
def test_public_api_docstrings(module):
    members = _public_members(module)
    assert members, f"{module.__name__} exposes no public API?"
    missing = [name for name, obj in members
               if not (getattr(obj, "__doc__", None) or "").strip()]
    assert not missing, (
        f"public APIs without docstrings: {missing} — every public "
        f"class/function/method in {module.__name__} must document itself "
        f"(Args/Returns/Raises where applicable)"
    )

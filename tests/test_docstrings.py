"""The package docstring's usage example must actually work."""

import doctest

import repro


def test_package_docstring_example():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 1
    assert results.failed == 0


def test_public_api_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"

"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.relational.sql.lexer import tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]  # drop eof


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [("keyword", "select")] * 3

    def test_identifiers_preserve_case(self):
        assert kinds("Movie") == [("ident", "Movie")]

    def test_qualified_name(self):
        assert kinds("movie.title") == [
            ("ident", "movie"), ("dot", "."), ("ident", "title"),
        ]

    def test_eof_token(self):
        assert tokenize("x")[-1].kind == "eof"


class TestLiterals:
    def test_single_and_double_quotes(self):
        assert kinds("'abc'") == [("string", "abc")]
        assert kinds('"abc"') == [("string", "abc")]

    def test_escaped_quote_by_doubling(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_integer_and_float(self):
        assert kinds("42 3.14") == [("number", "42"), ("number", "3.14")]

    def test_negative_number(self):
        assert kinds("-5") == [("number", "-5")]

    def test_dot_after_number_not_consumed_without_digits(self):
        # "1." followed by an identifier: the dot is punctuation.
        assert kinds("1.x")[0] == ("number", "1")


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("<= >= != <>") == [
            ("op", "<="), ("op", ">="), ("op", "!="), ("op", "!="),
        ]

    def test_single_char_operators(self):
        assert kinds("= < >") == [("op", "="), ("op", "<"), ("op", ">")]

    def test_bare_bang_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("!")


class TestParams:
    def test_param(self):
        assert kinds("$x $long_name") == [("param", "x"), ("param", "long_name")]

    def test_empty_param_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("$ x")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize("SELECT #")
        assert "position" in str(exc.value)

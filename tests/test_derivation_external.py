"""Tests for external-evidence derivation (Sec. 4.3)."""

import pytest

from repro.core.derivation.external import ExternalEvidenceDeriver
from repro.datasets.evidence import WikiCorpusGenerator, generate_wiki_corpus
from repro.errors import DerivationError
from repro.xmlview.tree import XmlNode


@pytest.fixture(scope="module")
def deriver(imdb_db):
    return ExternalEvidenceDeriver(imdb_db)


@pytest.fixture(scope="module")
def pages(imdb_db):
    return generate_wiki_corpus(imdb_db)


class TestSignatures:
    def test_movie_page_signature(self, imdb_db, deriver):
        generator = WikiCorpusGenerator(imdb_db)
        page = generator.movie_page(1, generator.rng.fork("test"))
        signature = deriver.signature(page)
        assert signature.label == ("movie", "title")
        # Star Wars' cast repeats: person.name is a list element.
        assert ("person", "name") in signature.list_elements

    def test_cast_list_page_signature(self, imdb_db, deriver):
        generator = WikiCorpusGenerator(imdb_db)
        page = generator.cast_list_page(1)
        signature = deriver.signature(page)
        assert signature.label == ("movie", "title")
        # person names dominate; character names may ride along
        assert ("person", "name") in signature.list_elements
        assert len(signature.list_elements) <= 2

    def test_empty_page(self, deriver):
        page = XmlNode("page", ())
        signature = deriver.signature(page)
        assert signature.label is None

    def test_headings_recognized(self, imdb_db, deriver):
        page = XmlNode("page", ())
        page.add_child("h1", "Star Wars")
        page.add_child("h2", "Plot")
        signature = deriver.signature(page)
        assert ("movie_info", "plot") in signature.headings


class TestDerive:
    def test_profile_definitions_for_both_anchors(self, deriver, pages):
        defs = deriver.derive(pages)
        names = {d.name for d in defs}
        assert "movie_title_evidence_profile" in names
        assert "person_name_evidence_profile" in names

    def test_fragment_cluster_from_cast_lists(self, deriver, pages):
        defs = deriver.derive(pages)
        assert any(d.name == "movie_title_person_evidence" for d in defs)

    def test_movie_profile_learns_cast(self, deriver, pages):
        defs = deriver.derive(pages)
        profile = next(d for d in defs
                       if d.name == "movie_title_evidence_profile")
        assert "person" in profile.tables()

    def test_definitions_materialize(self, imdb_db, deriver, pages):
        for definition in deriver.derive(pages):
            bindings = definition.bindings(imdb_db, limit=1)
            assert bindings
            definition.materialize(imdb_db, bindings[0])

    def test_too_few_pages_raises(self, imdb_db, deriver):
        with pytest.raises(DerivationError):
            deriver.derive([XmlNode("page", ())])

    def test_threshold_validation(self, imdb_db):
        with pytest.raises(DerivationError):
            ExternalEvidenceDeriver(imdb_db, label_threshold=3,
                                    list_threshold=3)

    def test_source_marked(self, deriver, pages):
        assert all(d.source == "external" for d in deriver.derive(pages))


class TestCorpusGenerator:
    def test_deterministic(self, imdb_db):
        first = generate_wiki_corpus(imdb_db, seed=5)
        second = generate_wiki_corpus(imdb_db, seed=5)
        assert len(first) == len(second)
        assert first[0].subtree_text() == second[0].subtree_text()

    def test_no_provenance_leakage(self, pages):
        # The deriver must rediscover structure: pages carry no provenance.
        for page in pages[:10]:
            assert all(node.provenance is None for node in page.walk())

    def test_fraction_validation(self, imdb_db):
        with pytest.raises(ValueError):
            WikiCorpusGenerator(imdb_db, movie_fraction=0.0)

    def test_page_mix(self, pages):
        headings = [page.children[0].text for page in pages]
        assert any(h.startswith("Full cast of") for h in headings)

"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.presentation import ConversionTemplate
from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.metrics import dcg, majority_agreement, ndcg, precision_at_k, recall_at_k
from repro.ir.retrieval import Searcher
from repro.ir.scoring import Bm25Scorer, PriorWeightedScorer, TfIdfScorer
from repro.utils.rng import DeterministicRng, zipf_weights
from repro.utils.text import normalize
from repro.xmlview.operators import lca
from repro.xmlview.tree import XmlNode

# -- strategies ---------------------------------------------------------------

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)
texts = st.lists(words, min_size=0, max_size=12).map(" ".join)
deweys = st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=8).map(tuple)


class TestTextProperties:
    @given(st.text(max_size=60))
    def test_normalize_idempotent(self, text):
        assert normalize(normalize(text)) == normalize(text)

    @given(st.text(max_size=60))
    def test_normalize_ascii_lowercase(self, text):
        result = normalize(text)
        assert result == result.lower()
        assert all(ord(ch) < 128 for ch in result)

    @given(st.text(max_size=60))
    def test_normalize_no_double_spaces(self, text):
        assert "  " not in normalize(text)


class TestRngProperties:
    @given(st.integers(min_value=1, max_value=200),
           st.floats(min_value=0.0, max_value=3.0))
    def test_zipf_weights_sum_to_one(self, n, exponent):
        assert math.isclose(sum(zipf_weights(n, exponent)), 1.0, rel_tol=1e-9)

    @given(st.integers(), st.text(max_size=12))
    def test_fork_deterministic(self, seed, label):
        assert DeterministicRng(seed).fork(label).seed == \
               DeterministicRng(seed).fork(label).seed

    @given(st.lists(words, min_size=1, max_size=20, unique=True),
           st.integers(min_value=0, max_value=20))
    def test_weighted_sample_size_and_distinctness(self, items, k):
        k = min(k, len(items))
        sample = DeterministicRng(0).weighted_sample(
            items, [1.0] * len(items), k)
        assert len(sample) == k
        assert len(set(sample)) == k
        assert set(sample) <= set(items)


class TestLcaProperties:
    @given(deweys, deweys)
    def test_lca_commutative(self, a, b):
        assert lca(a, b) == lca(b, a)

    @given(deweys, deweys)
    def test_lca_is_common_prefix(self, a, b):
        common = lca(a, b)
        assert a[:len(common)] == common
        assert b[:len(common)] == common

    @given(deweys)
    def test_lca_idempotent(self, a):
        assert lca(a, a) == a

    @given(deweys, deweys, deweys)
    def test_lca_associative(self, a, b, c):
        assert lca(lca(a, b), c) == lca(a, lca(b, c))


class TestIndexProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(texts, min_size=1, max_size=8))
    def test_index_validates_after_any_build(self, bodies):
        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        index.validate()
        assert index.document_count == len(bodies)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(texts, min_size=1, max_size=8), texts)
    def test_scorers_only_score_matching_docs(self, bodies, query):
        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        terms = index.analyzer.tokens(query)
        for scorer in (TfIdfScorer(), Bm25Scorer()):
            scores = scorer.scores(index, terms)
            for doc_id, value in scores.items():
                assert value > 0
                document = index.document(doc_id)
                doc_tokens = set(index.analyzer.tokens(document.full_text()))
                assert doc_tokens & set(terms)


def _scorer_for(kind: str, doc_count: int):
    """A scorer family member; priors derived deterministically from ids."""
    if kind == "tfidf":
        return TfIdfScorer()
    if kind == "bm25":
        return Bm25Scorer()
    if kind == "bm25-tuned":
        return Bm25Scorer(k1=0.4, b=0.2)
    priors = {f"d{i}": 1.0 + (i % 5) * 0.7 for i in range(0, doc_count, 2)}
    base = TfIdfScorer() if kind == "prior-tfidf" else Bm25Scorer()
    return PriorWeightedScorer(base, priors, default=0.5)


class TestTopKFastPathProperties:
    """The fast path must be *rank-identical* to exhaustive retrieval:
    same (doc_id, score) lists, same (-score, doc_id) tie-break, across
    documents, fractional field weights, scorers, and limits."""

    @settings(max_examples=60, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=10),
        weights=st.lists(
            st.sampled_from([0.1, 0.2, 0.5, 1.0, 2.5]), min_size=10, max_size=10),
        query=texts,
        kind=st.sampled_from(
            ["tfidf", "bm25", "bm25-tuned", "prior-tfidf", "prior-bm25"]),
        limit=st.integers(min_value=0, max_value=12),
    )
    def test_fast_path_rank_identical_to_exhaustive(
            self, bodies, weights, query, kind, limit):
        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body},
                                      {"body": weights[i]}))
        searcher = Searcher(index, _scorer_for(kind, len(bodies)))
        fast = searcher.search(query, limit)
        slow = searcher.search_exhaustive(query, limit)
        assert [(h.doc_id, h.score, h.rank) for h in fast] == \
               [(h.doc_id, h.score, h.rank) for h in slow]
        # And again through the cache / batch API.
        rerun, = searcher.search_many([query], limit)
        assert [(h.doc_id, h.score) for h in rerun] == \
               [(h.doc_id, h.score) for h in fast]

    @settings(max_examples=30, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=8),
        queries=st.lists(texts, min_size=0, max_size=5),
        limit=st.integers(min_value=1, max_value=6),
    )
    def test_search_many_equals_mapped_search(self, bodies, queries, limit):
        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        searcher = Searcher(index)
        batch = searcher.search_many(queries, limit)
        singles = [searcher.search(query, limit) for query in queries]
        assert [[(h.doc_id, h.score) for h in hits] for hits in batch] == \
               [[(h.doc_id, h.score) for h in hits] for hits in singles]


class TestWandProperties:
    """Document-at-a-time WAND and block-max must be rank- AND score-
    identical (float-exact, not tolerance) to the term-at-a-time max-score
    path and to exhaustive retrieval — duplicate-score tie-breaks,
    duplicate query terms, empty and one-term queries included."""

    @settings(max_examples=60, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=12),
        weights=st.lists(
            st.sampled_from([0.1, 0.2, 0.5, 1.0, 2.5]),
            min_size=12, max_size=12),
        query=texts,
        kind=st.sampled_from(
            ["tfidf", "bm25", "bm25-tuned", "prior-tfidf", "prior-bm25"]),
        limit=st.integers(min_value=0, max_value=12),
        block_size=st.sampled_from([0, 1, 3, 64]),
    )
    def test_wand_identical_to_maxscore_and_exhaustive(
            self, bodies, weights, query, kind, limit, block_size):
        from repro.ir.topk import topk_scores
        from repro.ir.wand import wand_scores

        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body},
                                      {"body": weights[i]}))
        snapshot = index.snapshot()
        scorer = _scorer_for(kind, len(bodies))
        terms = snapshot.analyzer.tokens(query)
        expected = topk_scores(snapshot, scorer, terms, limit)
        got = wand_scores(snapshot, scorer, terms, limit,
                          block_size=block_size)
        assert got == expected  # same docs, bit-identical floats
        searcher = Searcher(index, scorer)
        exhaustive = [(h.doc_id, h.score)
                      for h in searcher.search_exhaustive(query, limit)]
        assert got == exhaustive

    @settings(max_examples=40, deadline=None)
    @given(
        # Duplicated bodies force score ties, so the (-score, doc_id)
        # tie-break is exercised hard.
        body_pool=st.lists(texts, min_size=1, max_size=4),
        count=st.integers(min_value=2, max_value=12),
        query=texts,
        limit=st.integers(min_value=1, max_value=8),
        strategy=st.sampled_from(["maxscore", "wand", "blockmax", "auto"]),
    )
    def test_strategies_identical_under_duplicate_scores(
            self, body_pool, count, query, limit, strategy):
        index = InvertedIndex(Analyzer(stem=False))
        for i in range(count):
            index.add(Document.create(
                f"d{i}", {"body": body_pool[i % len(body_pool)]}))
        reference = Searcher(index, strategy="maxscore", cache_size=0)
        candidate = Searcher(index, strategy=strategy, cache_size=0)
        expected = [(h.doc_id, h.score, h.rank)
                    for h in reference.search(query, limit)]
        got = [(h.doc_id, h.score, h.rank)
               for h in candidate.search(query, limit)]
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=10),
        queries=st.lists(texts, min_size=0, max_size=5),
        kind=st.sampled_from(["tfidf", "bm25", "prior-bm25"]),
        shards=st.integers(min_value=1, max_value=5),
        limit=st.integers(min_value=0, max_value=10),
        strategy=st.sampled_from(["wand", "blockmax", "auto"]),
    )
    def test_sharded_bloom_routed_wand_identical(
            self, bodies, queries, kind, shards, limit, strategy):
        # WAND dispatched per shard (Bloom routing on) must reproduce the
        # unsharded max-score results exactly, batch API included.
        from repro.ir.shard import ShardedTopK
        from repro.ir.topk import topk_scores

        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        snapshot = index.snapshot()
        scorer = _scorer_for(kind, len(bodies))
        term_lists = [snapshot.analyzer.tokens(query) for query in queries]
        expected = [topk_scores(snapshot, scorer, terms, limit)
                    for terms in term_lists]
        with ShardedTopK(snapshot, shards, "serial") as sharded:
            got = sharded.topk_many(scorer, term_lists, limit, strategy)
        assert got == expected


class TestPersistenceProperties:
    """save → load → search must be *float-exact* rank-identical to the
    in-memory path, for any documents, weights, scorer, and query."""

    @settings(max_examples=40, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=8),
        weights=st.lists(
            st.sampled_from([0.1, 0.5, 1.0, 2.5]), min_size=8, max_size=8),
        query=texts,
        kind=st.sampled_from(["tfidf", "bm25", "bm25-tuned"]),
        limit=st.integers(min_value=0, max_value=10),
    )
    def test_loaded_snapshot_rank_identical(
            self, bodies, weights, query, kind, limit):
        import tempfile
        from pathlib import Path

        from repro.ir.persist import load_snapshot, save_snapshot

        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body},
                                      {"body": weights[i]}))
        with tempfile.TemporaryDirectory() as tmp:
            path = save_snapshot(index.snapshot(), Path(tmp) / "prop.snap")
            loaded = load_snapshot(path)
        scorer = _scorer_for(kind, len(bodies))
        live = Searcher(index, scorer).search(query, limit)
        cold = Searcher(loaded, scorer).search(query, limit)
        assert [(h.doc_id, h.score, h.rank) for h in cold] == \
               [(h.doc_id, h.score, h.rank) for h in live]


class TestMigrationProperties:
    """v1/v2 snapshots migrated to the v3 columnar container must stay
    *float-exact* rank-and-score identical to the live index — direct
    retrieval, every WAND strategy, and sharded Bloom-routed dispatch."""

    @settings(max_examples=30, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=8),
        weights=st.lists(
            st.sampled_from([0.1, 0.5, 1.0, 2.5]), min_size=8, max_size=8),
        query=texts,
        kind=st.sampled_from(["tfidf", "bm25", "bm25-tuned", "prior-bm25"]),
        limit=st.integers(min_value=0, max_value=10),
        legacy_version=st.sampled_from([1, 2]),
        strategy=st.sampled_from(["maxscore", "wand", "blockmax", "auto"]),
    )
    def test_migrated_snapshot_rank_identical(
            self, bodies, weights, query, kind, limit, legacy_version,
            strategy):
        import tempfile
        from pathlib import Path

        from repro.ir.persist import (compact_snapshot, load_snapshot,
                                      read_snapshot_header, save_snapshot_v1,
                                      save_snapshot_v2)
        from repro.ir.topk import topk_scores
        from repro.ir.wand import retrieve

        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body},
                                      {"body": weights[i]}))
        snapshot = index.snapshot()
        scorer = _scorer_for(kind, len(bodies))
        terms = snapshot.analyzer.tokens(query)
        expected = topk_scores(snapshot, scorer, terms, limit)
        save = save_snapshot_v1 if legacy_version == 1 else save_snapshot_v2
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "legacy.snap"
            save(snapshot, path)
            compact_snapshot(path)  # what ``repro migrate`` runs
            header = read_snapshot_header(path)
            assert header["format_version"] == 3
            migrated = load_snapshot(path)
            got = retrieve(migrated, scorer, terms, limit, strategy=strategy)
        assert got == expected  # same docs, bit-identical floats

    @settings(max_examples=20, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=10),
        queries=st.lists(texts, min_size=0, max_size=4),
        kind=st.sampled_from(["tfidf", "bm25"]),
        shards=st.integers(min_value=1, max_value=4),
        limit=st.integers(min_value=0, max_value=8),
        legacy_version=st.sampled_from([1, 2]),
    )
    def test_migrated_snapshot_sharded_bloom_routed_identical(
            self, bodies, queries, kind, shards, limit, legacy_version):
        # Sharding + Bloom routing over a migrated v3 load must reproduce
        # the live serial results exactly, batch API included.
        import tempfile
        from pathlib import Path

        from repro.ir.persist import (compact_snapshot, load_snapshot,
                                      save_snapshot_v1, save_snapshot_v2)
        from repro.ir.shard import ShardedTopK
        from repro.ir.topk import topk_scores

        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        snapshot = index.snapshot()
        scorer = _scorer_for(kind, len(bodies))
        term_lists = [snapshot.analyzer.tokens(query) for query in queries]
        expected = [topk_scores(snapshot, scorer, terms, limit)
                    for terms in term_lists]
        save = save_snapshot_v1 if legacy_version == 1 else save_snapshot_v2
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "legacy.snap"
            save(snapshot, path)
            compact_snapshot(path)
            migrated = load_snapshot(path)
            with ShardedTopK(migrated, shards, "serial") as sharded:
                got = sharded.topk_many(scorer, term_lists, limit)
        assert got == expected


class TestShardingProperties:
    """Sharded retrieval must be *float-exact* rank-identical to the serial
    single-snapshot path — same scores, same (-score, doc_id) tie-breaks —
    for any shard count, scorer, and query mix."""

    @settings(max_examples=40, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=10),
        query=texts,
        kind=st.sampled_from(
            ["tfidf", "bm25", "bm25-tuned", "prior-tfidf", "prior-bm25"]),
        shards=st.integers(min_value=1, max_value=6),
        limit=st.integers(min_value=0, max_value=12),
    )
    def test_sharded_rank_identical_to_serial(
            self, bodies, query, kind, shards, limit):
        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        scorer = _scorer_for(kind, len(bodies))
        serial = Searcher(index, scorer).search(query, limit)
        with Searcher(index, scorer, shards=shards,
                      parallelism="serial") as sharded_searcher:
            sharded = sharded_searcher.search(query, limit)
        assert [(h.doc_id, h.score, h.rank) for h in sharded] == \
               [(h.doc_id, h.score, h.rank) for h in serial]

    @settings(max_examples=20, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=8),
        queries=st.lists(texts, min_size=0, max_size=5),
        shards=st.integers(min_value=2, max_value=4),
        limit=st.integers(min_value=1, max_value=6),
    )
    def test_sharded_search_many_equals_serial_batch(
            self, bodies, queries, shards, limit):
        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        serial = Searcher(index).search_many(queries, limit)
        with Searcher(index, shards=shards,
                      parallelism="serial") as sharded_searcher:
            sharded = sharded_searcher.search_many(queries, limit)
        assert [[(h.doc_id, h.score) for h in hits] for hits in sharded] == \
               [[(h.doc_id, h.score) for h in hits] for hits in serial]

    @settings(max_examples=40, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=12),
        queries=st.lists(texts, min_size=0, max_size=6),
        kind=st.sampled_from(["tfidf", "bm25", "prior-bm25"]),
        shards=st.integers(min_value=1, max_value=6),
        limit=st.integers(min_value=0, max_value=10),
    )
    def test_bloom_routing_rank_identical_to_broadcast(
            self, bodies, queries, kind, shards, limit):
        # Bloom filters have no false negatives, so routing a batch only
        # to shards that might match must reproduce the broadcast results
        # exactly — same (doc_id, score) lists, tie-breaks included.
        from repro.ir.shard import ShardedTopK

        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        snapshot = index.snapshot()
        scorer = _scorer_for(kind, len(bodies))
        term_lists = [snapshot.analyzer.tokens(query) for query in queries]
        with ShardedTopK(snapshot, shards, "serial") as routed, \
                ShardedTopK(snapshot, shards, "serial",
                            route=False) as broadcast:
            assert routed.topk_many(scorer, term_lists, limit) == \
                   broadcast.topk_many(scorer, term_lists, limit)


class TestHybridProperties:
    """The invariants that replace rank-identical-to-exhaustive for the
    fused ``"hybrid"`` strategy (see the ``repro.ir.retrieval`` module
    docs): weight-0 degenerates to lexical verbatim; fused rankings are
    deterministic and invariant under shard count and executor; vector
    partitions merge float-exactly to the global cosine scan; and the
    embedder is bit-identical across processes."""

    @staticmethod
    def _index(bodies):
        index = InvertedIndex(Analyzer(stem=False))
        for i, body in enumerate(bodies):
            index.add(Document.create(f"d{i}", {"body": body}))
        return index

    @settings(max_examples=30, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=10),
        query=texts,
        shards=st.integers(min_value=0, max_value=5),
        limit=st.integers(min_value=0, max_value=10),
    )
    def test_weight_zero_identical_to_lexical(
            self, bodies, query, shards, limit):
        # vector_weight == 0 must return the lexical ranking verbatim —
        # same docs, same scores, same tie-breaks — at any shard count.
        index = self._index(bodies)
        lexical = Searcher(index).search(query, limit)
        with Searcher(index, shards=shards, parallelism="serial",
                      strategy="hybrid", vector_weight=0.0) as hybrid:
            fused = hybrid.search(query, limit)
        assert [(h.doc_id, h.score, h.rank) for h in fused] == \
               [(h.doc_id, h.score, h.rank) for h in lexical]

    @settings(max_examples=25, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=10),
        query=texts,
        shards=st.integers(min_value=1, max_value=6),
        limit=st.integers(min_value=1, max_value=8),
    )
    def test_fused_ranking_invariant_under_shard_count(
            self, bodies, query, shards, limit):
        # Cosine is per-document and the lexical side is already
        # shard-invariant, so the fused ranking must be float-exact
        # identical however the index is partitioned.
        index = self._index(bodies)
        unsharded = Searcher(index, strategy="hybrid").search(query, limit)
        with Searcher(index, shards=shards, parallelism="serial",
                      strategy="hybrid") as sharded_searcher:
            sharded = sharded_searcher.search(query, limit)
        assert [(h.doc_id, h.score, h.rank) for h in sharded] == \
               [(h.doc_id, h.score, h.rank) for h in unsharded]

    def test_fused_ranking_invariant_under_process_executor(self):
        # One concrete corpus through a real process pool: the executor
        # must not perturb fusion (workers score lexically; fusion
        # happens once, in the parent).
        bodies = ["star wars saga", "ocean trek adventure",
                  "deep ocean documentary", "wars of the roses",
                  "star light star bright", "silent archive"]
        index = self._index(bodies)
        serial = Searcher(index, strategy="hybrid").search("star ocean", 5)
        with Searcher(index, shards=3, parallelism="process",
                      strategy="hybrid") as sharded_searcher:
            sharded = sharded_searcher.search("star ocean", 5)
        assert [(h.doc_id, h.score, h.rank) for h in sharded] == \
               [(h.doc_id, h.score, h.rank) for h in serial]

    @settings(max_examples=30, deadline=None)
    @given(
        bodies=st.lists(texts, min_size=1, max_size=12),
        query=texts,
        count=st.integers(min_value=1, max_value=6),
        limit=st.integers(min_value=1, max_value=10),
    )
    def test_vector_partitions_merge_to_global_topk(
            self, bodies, query, count, limit):
        from repro.ir.embed import HashingEmbedder
        from repro.ir.topk import merge_ranked
        from repro.ir.vector import VectorIndex

        embedder = HashingEmbedder()
        documents = {f"d{i}": Document.create(f"d{i}", {"body": body})
                     for i, body in enumerate(bodies)}
        vectors = VectorIndex.build(embedder, documents)
        query_vector = embedder.embed_query(query)
        merged = merge_ranked(
            [part.topk(query_vector, limit)
             for part in vectors.shard(count)], limit)
        assert merged == vectors.topk(query_vector, limit)

    @settings(max_examples=50, deadline=None)
    @given(
        docs=st.lists(words, min_size=0, max_size=10, unique=True),
        split=st.integers(min_value=0, max_value=10),
        weight=st.floats(min_value=0.0, max_value=4.0),
        rrf_k=st.integers(min_value=1, max_value=120),
        limit=st.integers(min_value=1, max_value=10),
    )
    def test_rrf_deterministic_sorted_and_weight_zero_is_lexical(
            self, docs, split, weight, rrf_k, limit):
        from repro.ir.vector import reciprocal_rank_fusion

        # Two overlapping rankings built from one unique doc pool.
        lexical = [(doc, float(len(docs) - i))
                   for i, doc in enumerate(docs[:max(split, 1)])]
        vector = [(doc, 1.0 - i / 20.0)
                  for i, doc in enumerate(reversed(docs))]
        fused = reciprocal_rank_fusion(lexical, vector, limit,
                                       vector_weight=weight, rrf_k=rrf_k)
        # Deterministic: same inputs, same output.
        assert fused == reciprocal_rank_fusion(
            lexical, vector, limit, vector_weight=weight, rrf_k=rrf_k)
        # Sorted by (-score, doc_id), length-capped, drawn from the union.
        assert fused == sorted(fused, key=lambda hit: (-hit[1], hit[0]))
        assert len(fused) <= limit
        assert {doc for doc, _ in fused} <= \
               {doc for doc, _ in lexical} | {doc for doc, _ in vector}
        if weight == 0.0:
            # The vector ranking contributes nothing: fused order is the
            # lexical order (RRF scores are strictly rank-monotonic).
            assert [doc for doc, _ in fused] == \
                   [doc for doc, _ in lexical][:limit]

    def test_embedder_bit_identical_across_processes(self):
        # The embedder must be reproducible across interpreter runs
        # (PYTHONHASHSEED-proof) or persisted vector extents would be
        # garbage to the next process.  Compare exact IEEE-754 bytes.
        import struct
        import subprocess
        import sys

        from repro.ir.embed import HashingEmbedder

        probe = "star wars cast & crew — épisode 4"
        local = HashingEmbedder().embed_query(probe)
        script = (
            "import struct, sys\n"
            "from repro.ir.embed import HashingEmbedder\n"
            f"vector = HashingEmbedder().embed_query({probe!r})\n"
            "sys.stdout.write(struct.pack('<%dd' % len(vector),"
            " *vector).hex())\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True, env={"PYTHONPATH": "src", "PYTHONHASHSEED": "1"})
        assert result.stdout == \
               struct.pack("<%dd" % len(local), *local).hex()


#: Query shapes covering every pipeline path: fully-bound structural
#: matches, partially-bound matches (definition IR), dimension entities,
#: aggregates, free text, garbage, and the empty query.
PIPELINE_QUERY_POOL = (
    "star wars cast",
    "george clooney",
    "tom hanks movies",
    "science fiction movies",
    "the terminator box office",
    "top rated movies",
    "angelina jolie tomb raider",
    "clooney oceans",
    "star wars",
    "zzzz qqqq wwww",
    "",
)


_PIPELINE_ENGINES: dict = {}


def _pipeline_engine(imdb_db, shards: int, strategy: str):
    """A cached engine variant over the shared scale-0.15 database (one
    collection per (shards, strategy), serial shard executors)."""
    _cache = _PIPELINE_ENGINES
    key = (id(imdb_db), shards, strategy)
    if key not in _cache:
        from repro.core import QunitCollection
        from repro.core.derivation import imdb_expert_qunits
        from repro.core.search import QunitSearchEngine

        collection = QunitCollection(
            imdb_db, imdb_expert_qunits(),
            max_instances_per_definition=60,
            shards=shards, parallelism="serial", strategy=strategy)
        _cache[key] = QunitSearchEngine(collection, flavor="expert")
    return _cache[key]


def _answer_keys(answers):
    return [(a.meta("instance_id"), a.score, a.system) for a in answers]


class TestPipelineProperties:
    """The staged pipeline's batched path must be *answer- and
    order-identical* to the sequential per-query path — same instance
    ids, same float-exact scores, same order — across retrieval
    strategies, shard counts, and Bloom routing."""

    @settings(max_examples=25, deadline=None)
    @given(
        queries=st.lists(st.sampled_from(PIPELINE_QUERY_POOL),
                         min_size=0, max_size=5),
        shards=st.sampled_from([0, 2, 3]),
        strategy=st.sampled_from(["auto", "maxscore", "wand", "blockmax"]),
        limit=st.integers(min_value=1, max_value=5),
    )
    def test_search_many_identical_to_mapped_search(
            self, imdb_db, queries, shards, strategy, limit):
        engine = _pipeline_engine(imdb_db, shards, strategy)
        batch = engine.search_many(queries, limit)
        singles = [engine.search(query, limit) for query in queries]
        assert [_answer_keys(answers) for answers in batch] == \
               [_answer_keys(answers) for answers in singles]

    @settings(max_examples=15, deadline=None)
    @given(
        queries=st.lists(st.sampled_from(PIPELINE_QUERY_POOL),
                         min_size=1, max_size=4),
        shards=st.sampled_from([2, 3]),
        strategy=st.sampled_from(["auto", "wand", "blockmax"]),
        limit=st.integers(min_value=1, max_value=5),
    )
    def test_sharded_bloom_routed_engine_identical_to_serial(
            self, imdb_db, queries, shards, strategy, limit):
        # The sharded engine Bloom-routes its flat dispatches; answers
        # must match the unsharded max-score engine exactly.
        serial = _pipeline_engine(imdb_db, 0, "maxscore")
        sharded = _pipeline_engine(imdb_db, shards, strategy)
        assert [_answer_keys(answers)
                for answers in sharded.search_many(queries, limit)] == \
               [_answer_keys(answers)
                for answers in serial.search_many(queries, limit)]


class TestMetricProperties:
    @given(st.lists(words, min_size=1, max_size=15, unique=True),
           st.sets(words, max_size=10),
           st.integers(min_value=1, max_value=15))
    def test_precision_recall_bounds(self, ranked, relevant, k):
        assert 0.0 <= precision_at_k(ranked, relevant, k) <= 1.0
        assert 0.0 <= recall_at_k(ranked, relevant, k) <= 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0),
                    min_size=1, max_size=12))
    def test_ndcg_bounds(self, gains):
        assert 0.0 <= ndcg(gains) <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0),
                    min_size=1, max_size=12))
    def test_dcg_monotone_under_sorting(self, gains):
        assert dcg(sorted(gains, reverse=True)) >= dcg(gains) - 1e-9

    @given(st.lists(st.sampled_from([0.0, 0.5, 1.0]), min_size=1, max_size=25))
    def test_agreement_bounds(self, ratings):
        value = majority_agreement(ratings)
        assert 1.0 / len(set(ratings)) <= value + 1e-9
        assert value <= 1.0


class TestTemplateProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(words, words), min_size=0, max_size=6,
    ))
    def test_foreach_renders_each_distinct_tuple_once(self, pairs):
        template = ConversionTemplate(
            "<foreach:tuple>[$t.a|$t.b]</foreach:tuple>")
        rows = [{"t.a": a, "t.b": b} for a, b in pairs]
        rendered = template.render({}, rows)
        distinct = list(dict.fromkeys(f"[{a}|{b}]" for a, b in pairs))
        assert rendered == "".join(distinct)

    @given(words)
    def test_param_roundtrip(self, value):
        template = ConversionTemplate("<x>$p</x>")
        assert template.render({"p": value}, []) == f"<x>{value}</x>"


class TestXmlTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.recursive(
        st.just([]),
        lambda children: st.lists(children, max_size=4),
        max_leaves=20,
    ))
    def test_dewey_invariants(self, shape):
        root = XmlNode("root", ())

        def build(node, spec):
            for i, child_spec in enumerate(spec):
                child = node.add_child(f"c{i}")
                build(child, child_spec)

        build(root, shape)
        for node in root.walk():
            assert root.find_by_dewey(node.dewey) is node
            for child in node.children:
                assert node.is_ancestor_of(child)
                assert child.dewey[:-1] == node.dewey

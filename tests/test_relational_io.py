"""Tests for database persistence (save/load round trips)."""


import pytest

from repro.errors import DatasetError
from repro.relational.io import load_database, save_database


class TestRoundTrip:
    def test_mini_db_round_trips(self, mini_db, tmp_path):
        save_database(mini_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        assert loaded.total_rows() == mini_db.total_rows()
        assert loaded.schema.table_names == mini_db.schema.table_names
        original = mini_db.lookup("movie", "title", "star wars")[0]
        restored = loaded.lookup("movie", "title", "star wars")[0]
        assert original == restored

    def test_imdb_round_trips(self, imdb_db, tmp_path):
        save_database(imdb_db, tmp_path / "imdb")
        loaded = load_database(tmp_path / "imdb")
        assert loaded.total_rows() == imdb_db.total_rows()
        assert loaded.check_foreign_keys() == []

    def test_schema_metadata_preserved(self, mini_db, tmp_path):
        save_database(mini_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        person = loaded.schema.table("person")
        assert person.primary_key == "id"
        assert person.column("name").searchable
        cast = loaded.schema.table("cast")
        assert {fk.ref_table for fk in cast.foreign_keys} == {"person", "movie"}

    def test_nulls_round_trip(self, mini_db, tmp_path):
        mini_db.insert("cast", {"id": 77, "person_id": 1, "movie_id": 1,
                                "role": None})
        save_database(mini_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        row = [r for r in loaded.table("cast") if r["id"] == 77][0]
        assert row["role"] is None

    def test_special_characters_round_trip(self, mini_db, tmp_path):
        mini_db.insert("movie", {
            "id": 50, "title": "Tabs\tand\nnewlines \\ backslash", "year": 1999,
        })
        save_database(mini_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        row = loaded.table("movie").by_primary_key(50)
        assert row["title"] == "Tabs\tand\nnewlines \\ backslash"

    def test_floats_and_bools(self, imdb_db, tmp_path):
        save_database(imdb_db, tmp_path / "db")
        loaded = load_database(tmp_path / "db")
        original = imdb_db.table("award").row(0)
        restored = loaded.table("award").row(0)
        assert original["won"] == restored["won"]
        assert isinstance(restored["won"], bool)


class TestFailureModes:
    def test_missing_schema(self, tmp_path):
        with pytest.raises(DatasetError):
            load_database(tmp_path)

    def test_missing_table_file(self, mini_db, tmp_path):
        save_database(mini_db, tmp_path / "db")
        (tmp_path / "db" / "cast.tsv").unlink()
        with pytest.raises(DatasetError):
            load_database(tmp_path / "db")

    def test_header_mismatch(self, mini_db, tmp_path):
        save_database(mini_db, tmp_path / "db")
        path = tmp_path / "db" / "genre.tsv"
        lines = path.read_text().splitlines()
        lines[0] = "id\twrong_column"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DatasetError):
            load_database(tmp_path / "db")

    def test_arity_mismatch(self, mini_db, tmp_path):
        save_database(mini_db, tmp_path / "db")
        path = tmp_path / "db" / "genre.tsv"
        path.write_text(path.read_text() + "99\n")
        with pytest.raises(DatasetError):
            load_database(tmp_path / "db")

    def test_corrupted_fk_detected(self, mini_db, tmp_path):
        from repro.errors import IntegrityError

        save_database(mini_db, tmp_path / "db")
        path = tmp_path / "db" / "cast.tsv"
        text = path.read_text().replace("\t3\t1\tactress", "\t999\t1\tactress")
        path.write_text(text)
        with pytest.raises(IntegrityError):
            load_database(tmp_path / "db")

    def test_bad_boolean_cell(self, imdb_db, tmp_path):
        save_database(imdb_db, tmp_path / "db")
        path = tmp_path / "db" / "award.tsv"
        text = path.read_text().replace("\ttrue", "\tmaybe", 1)
        path.write_text(text)
        with pytest.raises(DatasetError):
            load_database(tmp_path / "db")

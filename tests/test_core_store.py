"""Tests for the typed collection store: delta journal, lazy loads,
online ingestion (``repro.core.store``)."""

import json

import pytest

from repro.core.collection import QunitCollection
from repro.core.store import (
    CollectionStore,
    LoadOptions,
    SaveOptions,
)
from repro.errors import SnapshotError
from repro.ir.documents import Document

from test_core_collection import definitions

QUERIES = ("star wars", "person", "movie summary", "george lucas", "zzz")


def ranked(collection, query, limit=5):
    return [(hit.doc_id, hit.score)
            for hit in collection.searcher().search(query, limit=limit)]


def ingest_doc(i: int) -> Document:
    return Document.create(
        f"ingest:doc:{i}",
        {"body": f"freshly ingested movie special {i} star"})


@pytest.fixture()
def collection(mini_db):
    return QunitCollection(mini_db, definitions())


@pytest.fixture()
def store(tmp_path):
    return CollectionStore(tmp_path / "snap")


class TestTypedOptions:
    def test_save_options_validate(self):
        assert SaveOptions().mode == "auto"
        with pytest.raises(ValueError):
            SaveOptions(mode="incremental")
        with pytest.raises(ValueError):
            SaveOptions(vectors="yes")

    def test_load_options_validate(self):
        assert LoadOptions().lazy is True
        with pytest.raises(ValueError):
            LoadOptions(parallelism="thread")
        with pytest.raises(ValueError):
            LoadOptions(strategy="psychic")
        with pytest.raises(ValueError):
            LoadOptions(shards=-1)

    def test_round_trip_elides_defaults(self):
        assert SaveOptions().to_dict() == {}
        assert LoadOptions().to_dict() == {}
        save = SaveOptions(vectors=False, mode="delta")
        assert SaveOptions.from_dict(save.to_dict()) == save
        load = LoadOptions(shards=2, parallelism="process", lazy=False)
        assert LoadOptions.from_dict(load.to_dict()) == load

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SaveOptions.from_dict({"modes": "auto"})
        with pytest.raises(ValueError, match="unknown"):
            LoadOptions.from_dict({"lazily": True})

    def test_old_collection_api_removed(self):
        # The deprecated QunitCollection.save/load/load_shard wrappers
        # are gone; persistence goes through CollectionStore only.
        assert not hasattr(QunitCollection, "save")
        assert not hasattr(QunitCollection, "load")
        assert not hasattr(QunitCollection, "load_shard")


class TestDeltaSave:
    def test_auto_resave_is_a_delta_noop(self, collection, store):
        first = store.save(collection)
        assert first.mode == "full"
        again = store.save(collection)
        assert again.mode == "delta"
        assert again.appended_documents == 0
        assert again.files_written == ()

    def test_grown_collection_appends_a_delta(self, mini_db, collection,
                                              store, tmp_path):
        # Divergence without a writer on *this* directory: snapshot the
        # saved state aside, grow the collection through a writer
        # elsewhere, then auto-save against the stale copy — save()
        # must diff out exactly the new documents and append them.
        import shutil

        store.save(collection, SaveOptions(vectors=False))
        stale = tmp_path / "stale"
        shutil.copytree(store.path, stale)
        writer = store.writer(collection)
        writer.stage("movie_page", ingest_doc(1))
        writer.stage("movie_page", ingest_doc(2))
        writer.commit()

        stale_store = CollectionStore(stale)
        report = stale_store.save(collection, SaveOptions(vectors=False))
        assert report.mode == "delta"
        assert report.appended_documents == 2
        assert report.generation.endswith("+1")
        manifest = stale_store.manifest()
        assert manifest["format_version"] == 3
        assert (stale / manifest["journal"]["file"]).exists()

    def test_delta_load_rank_identical(self, mini_db, collection, store):
        store.save(collection, SaveOptions(vectors=False))
        writer = store.writer(collection)
        writer.stage("movie_page", ingest_doc(1))
        writer.commit()
        for lazy in (False, True):
            loaded = store.load(mini_db, LoadOptions(lazy=lazy))
            for query in (*QUERIES, "ingested"):
                assert ranked(loaded, query) == ranked(collection, query)

    def test_full_mode_forces_a_rewrite(self, collection, store):
        store.save(collection, SaveOptions(vectors=False))
        report = store.save(collection,
                            SaveOptions(vectors=False, mode="full"))
        assert report.mode == "full"
        assert not report.generation.endswith("+1")

    def test_delta_mode_raises_when_ineligible(self, collection, store):
        with pytest.raises(SnapshotError, match="delta"):
            store.save(collection, SaveOptions(mode="delta"))

    def test_compact_folds_journal(self, mini_db, collection, store):
        store.save(collection, SaveOptions(vectors=False))
        writer = store.writer(collection)
        writer.stage("movie_page", ingest_doc(1))
        writer.commit()
        grown = collection
        folded = store.compact()
        assert folded > 0
        manifest = store.manifest()
        assert manifest["format_version"] == 2
        assert "journal" not in manifest
        assert not list(store.path.glob("*.jrnl"))
        loaded = store.load(mini_db, LoadOptions(lazy=False))
        for query in QUERIES:
            assert ranked(loaded, query) == ranked(grown, query)
        assert store.compact() == 0  # idempotent: nothing left to fold


class TestLazyLoads:
    def test_lazy_load_pins_no_snapshot_bodies(self, mini_db, collection,
                                               store):
        store.save(collection, SaveOptions(vectors=False))
        lazy = store.load(mini_db)
        assert lazy._loaded_snapshots == {}
        assert lazy.lazy_loads == 0

    def test_first_demand_loads_and_counts(self, mini_db, collection,
                                           store):
        store.save(collection, SaveOptions(vectors=False))
        lazy = store.load(mini_db)
        assert ranked(lazy, "star wars") == ranked(collection, "star wars")
        assert lazy.lazy_loads == 1  # the global snapshot, nothing else
        assert None in lazy._loaded_snapshots
        assert "movie_page" not in lazy._loaded_snapshots
        lazy.definition_searcher("movie_page").search("star wars")
        assert lazy.lazy_loads == 2

    def test_header_bloom_serves_before_any_load(self, mini_db, collection,
                                                 store):
        store.save(collection, SaveOptions(vectors=False))
        lazy = store.load(mini_db)
        bloom = lazy.definition_bloom("movie_page")
        assert bloom is not None
        assert lazy.lazy_loads == 0  # the header Bloom is not a body load

    @pytest.mark.parametrize("shards", [0, 2, 3])
    def test_lazy_eager_rank_and_score_identical(self, mini_db, shards,
                                                 tmp_path):
        # The lazy-load property across shard counts: laziness moves
        # *when* bytes map, never what they say.
        built = QunitCollection(mini_db, definitions(), shards=shards)
        store = CollectionStore(tmp_path / f"snap{shards}")
        store.save(built, SaveOptions(vectors=False))
        options = {"shards": shards}
        eager = store.load(mini_db, LoadOptions(lazy=False, **options))
        lazy = store.load(mini_db, LoadOptions(lazy=True, **options))
        for query in QUERIES:
            assert ranked(lazy, query) == ranked(eager, query)
        for name in built.definitions:
            for query in QUERIES:
                lazy_hits = lazy.definition_searcher(name).search(query)
                eager_hits = eager.definition_searcher(name).search(query)
                assert [(h.doc_id, h.score) for h in lazy_hits] == \
                       [(h.doc_id, h.score) for h in eager_hits]
        eager.close()
        lazy.close()


class TestCrashRecovery:
    def journaled_store(self, mini_db, tmp_path):
        store = CollectionStore(tmp_path / "snap")
        collection = QunitCollection(mini_db, definitions())
        store.save(collection, SaveOptions(vectors=False))
        writer = store.writer(collection)
        writer.stage("movie_page", ingest_doc(1))
        writer.commit()
        return store, collection

    def journal_path(self, store):
        manifest = store.manifest()
        return store.path / manifest["journal"]["file"]

    def test_torn_append_past_commit_point_is_ignored(self, mini_db,
                                                      tmp_path):
        store, collection = self.journaled_store(mini_db, tmp_path)
        with open(self.journal_path(store), "ab") as handle:
            handle.write(b'{"t": "delta", "seq": 9, "tar')  # torn mid-line
        loaded = store.load(mini_db, LoadOptions(lazy=False))
        for query in QUERIES:
            assert ranked(loaded, query) == ranked(collection, query)

    def test_garbage_past_commit_point_is_ignored(self, mini_db, tmp_path):
        store, collection = self.journaled_store(mini_db, tmp_path)
        with open(self.journal_path(store), "ab") as handle:
            handle.write(b"\x00\xff not even json \xfe")
        loaded = store.load(mini_db, LoadOptions(lazy=False))
        assert ranked(loaded, "ingested") == ranked(collection, "ingested")

    def test_corruption_within_committed_prefix_raises(self, mini_db,
                                                       tmp_path):
        store, _ = self.journaled_store(mini_db, tmp_path)
        path = self.journal_path(store)
        data = bytearray(path.read_bytes())
        target = data.rindex(b"ingested")
        data[target:target + 8] = b"tampered"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError):
            store.load(mini_db, LoadOptions(lazy=False))

    def test_truncated_committed_prefix_raises(self, mini_db, tmp_path):
        store, _ = self.journaled_store(mini_db, tmp_path)
        path = self.journal_path(store)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 10])
        with pytest.raises(SnapshotError):
            store.load(mini_db, LoadOptions(lazy=False))

    def test_crash_before_manifest_swap_serves_old_state(self, mini_db,
                                                         tmp_path):
        # The commit point is the manifest, not the journal: a commit
        # that dies after the fsynced append but before the manifest
        # swap must leave the previous state fully loadable.
        store, collection = self.journaled_store(mini_db, tmp_path)
        before = {query: ranked(collection, query) for query in QUERIES}
        manifest_before = store.manifest()

        real_write = store._write_manifest

        def dying_write(manifest):
            raise OSError("simulated crash before the manifest swap")

        writer = store.writer(collection)
        writer.stage("movie_page", ingest_doc(2))
        store._write_manifest = dying_write
        try:
            with pytest.raises((SnapshotError, OSError)):
                writer.commit()
        finally:
            store._write_manifest = real_write
        assert writer.pending == 1  # staged docs survive a failed commit
        assert store.manifest() == manifest_before
        loaded = store.load(mini_db, LoadOptions(lazy=False))
        for query in QUERIES:
            assert ranked(loaded, query) == before[query]
        # The next commit truncates the orphaned bytes and lands.
        report = writer.commit()
        assert report.appended_documents == 1
        loaded = store.load(mini_db, LoadOptions(lazy=False))
        assert any("ingest:doc:2" == doc_id
                   for doc_id, _ in ranked(loaded, "ingested"))


class TestOnlineIngestion:
    def test_commit_swaps_generation_and_serves_new_docs(self, mini_db,
                                                         collection,
                                                         store):
        store.save(collection, SaveOptions(vectors=False))
        base_generation = collection.generation
        writer = store.writer(collection)
        writer.stage("movie_page", ingest_doc(1))
        report = writer.commit()
        assert report.mode == "delta"
        assert collection.generation == f"{base_generation}+1"
        assert any(doc_id == "ingest:doc:1"
                   for doc_id, _ in ranked(collection, "ingested"))
        hits = collection.definition_searcher("movie_page") \
            .search("ingested")
        assert any(hit.doc_id == "ingest:doc:1" for hit in hits)
        # And the swap is durable: a fresh load sees the same ranking.
        loaded = store.load(mini_db, LoadOptions(lazy=False))
        for query in (*QUERIES, "ingested"):
            assert ranked(loaded, query) == ranked(collection, query)

    def test_reads_serve_old_generation_until_swap(self, mini_db,
                                                   collection, store):
        # The ingest atomicity claim, pinned at the swap boundary: at
        # the instant the journal transaction is already durable on
        # disk, in-memory reads still rank-match the old generation;
        # one swap later they see the new documents.
        store.save(collection, SaveOptions(vectors=False))
        before = {query: ranked(collection, query) for query in QUERIES}
        mid_swap = {}

        real_swap = collection._swap_generation

        def observing_swap(snapshots, generation):
            mid_swap.update(
                (query, ranked(collection, query)) for query in QUERIES)
            mid_swap["disk txns"] = \
                store.manifest()["journal"]["txns"]
            real_swap(snapshots, generation)

        collection._swap_generation = observing_swap
        writer = store.writer(collection)
        writer.stage("movie_page", ingest_doc(7))
        try:
            writer.commit()
        finally:
            collection._swap_generation = real_swap
        assert mid_swap.pop("disk txns") == 1  # journal already durable
        assert mid_swap == before  # ...yet reads still serve the old gen
        after = ranked(collection, "ingested")
        assert any(doc_id == "ingest:doc:7" for doc_id, _ in after)

    def test_concurrent_reads_stay_coherent_across_commits(self, mini_db,
                                                           collection,
                                                           store):
        # Reads racing generation swaps: every observed ranking must be
        # exactly some committed generation's ranking — never a blend.
        import threading

        store.save(collection, SaveOptions(vectors=False))
        states = [ranked(collection, "ingested")]
        writer = store.writer(collection)
        commits = 3
        stop = threading.Event()
        observed = []
        errors = []

        def read_loop():
            try:
                while not stop.is_set():
                    observed.append(ranked(collection, "ingested"))
            except BaseException as exc:
                errors.append(exc)

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            for i in range(commits):
                writer.stage("movie_page", ingest_doc(100 + i))
                writer.commit()
                states.append(ranked(collection, "ingested"))
        finally:
            stop.set()
            reader.join()
        assert not errors, errors
        assert collection.generation.endswith(f"+{commits}")
        valid = {tuple(state) for state in states}
        for snapshot_view in observed:
            assert tuple(snapshot_view) in valid

    def test_result_cache_invalidated_on_swap(self, mini_db, collection,
                                              store):
        from repro.core.search import QunitSearchEngine, SearchRequest
        from repro.serve.pipeline import EngineConfig

        store.save(collection, SaveOptions(vectors=False))
        engine = QunitSearchEngine(
            collection, config=EngineConfig(result_cache_size=32))
        request = SearchRequest(query="ingested", limit=3)
        engine.execute([request])
        cached = engine.execute([request])[0]
        assert cached.cached
        from repro.core.qunit import QunitInstance

        writer = store.writer(collection)
        writer.stage_instance(QunitInstance(
            collection.definition("movie_page"),
            {"x": "Brand New Film"},
            [{"title": "Brand New Film",
              "summary": "freshly ingested special"}]))
        writer.commit()
        fresh = engine.execute([request])[0]
        assert not fresh.cached  # the swap cleared the result cache
        # The staged instance registered at commit, so its answer
        # renders without a database round-trip.
        assert any("Brand New Film" in answer.text
                   for answer in fresh.answers)

    @pytest.mark.parametrize("compacted", [False, True])
    def test_ingested_instance_renders_after_restart(self, mini_db,
                                                     collection, store,
                                                     compacted):
        # Regression: an instance staged in one process must still
        # *render* in the next — the loaded collection rebuilds it from
        # its persisted document (metadata carries definition + params,
        # the body carries the rendered text) instead of failing the
        # database derivation lookup.
        from repro.core.qunit import QunitInstance
        from repro.core.search import QunitSearchEngine, SearchRequest

        store.save(collection, SaveOptions(vectors=False))
        staged = QunitInstance(
            collection.definition("movie_page"),
            {"x": "Galactic Verification"},
            [{"title": "Galactic Verification",
              "summary": "a movie that exists only in the journal"}])
        writer = store.writer(collection)
        writer.stage_instance(staged)
        writer.commit()
        if compacted:
            store.compact()
        loaded = store.load(mini_db, LoadOptions(lazy=False))
        engine = QunitSearchEngine(loaded)
        response = engine.execute(
            [SearchRequest(query="galactic verification journal",
                           limit=1)])[0]
        assert response.answers
        answer = response.answers[0]
        assert answer.text == staged.text()
        assert dict(answer.provenance)["definition"] == "movie_page"

    def test_explain_reports_generation_and_lazy_counters(self, mini_db,
                                                          collection,
                                                          store):
        from repro.core.search import QunitSearchEngine, SearchRequest

        store.save(collection, SaveOptions(vectors=False))
        lazy = store.load(mini_db)
        engine = QunitSearchEngine(lazy)
        response = engine.execute(
            [SearchRequest(query="star wars", limit=3, explain=True)])[0]
        explanation = response.explanation
        assert explanation.generation == lazy.generation
        assert explanation.lazy_loads >= 1  # this batch forced the load
        rendered = explanation.render()
        assert f"generation={lazy.generation}" in rendered
        assert "lazy loads" in rendered
        warm = engine.execute(
            [SearchRequest(query="star wars", limit=3, explain=True)])[0]
        assert warm.explanation.lazy_loads == 0


class TestManifestCompat:
    def test_journal_manifest_version_gates_old_readers(self, mini_db,
                                                        tmp_path):
        store = CollectionStore(tmp_path / "snap")
        collection = QunitCollection(mini_db, definitions())
        store.save(collection, SaveOptions(vectors=False))
        manifest_path = store.path / "collection.json"
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format_version"] == 2  # journal-free stays v2
        writer = store.writer(collection)
        writer.stage("movie_page", ingest_doc(1))
        writer.commit()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format_version"] == 3  # a journal is not ignorable
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            store.load(mini_db)

"""Scale smoke tests: the full pipeline at generator scale 1.0.

The paper ran on 34M tuples; our substrate is a simulator, so these tests
verify the *direction* — everything still builds and answers correctly at
the largest scale exercised in CI (≈4,600 rows, 6x the unit-test scale) —
while PERF (benchmarks) documents the latency curves.
"""

import pytest

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def big_db():
    from repro.datasets.imdb import generate_imdb

    return generate_imdb(scale=1.0, seed=7)


def test_generation_scales_linearly(big_db):
    assert big_db.row_count("movie") == 200
    assert big_db.row_count("person") == 320
    assert big_db.total_rows() > 4000
    assert big_db.check_foreign_keys() == []


def test_qunit_pipeline_at_scale(big_db):
    from repro.core import QunitCollection
    from repro.core.derivation import imdb_expert_qunits
    from repro.core.search import QunitSearchEngine

    engine = QunitSearchEngine(
        QunitCollection(big_db, imdb_expert_qunits(),
                        max_instances_per_definition=250),
        flavor="expert")
    answer = engine.best("star wars cast")
    assert answer.meta("definition") == "movie_full_credits"
    assert ("person", "name", "mark hamill") in answer.atoms


def test_baselines_at_scale(big_db):
    from repro.baselines import BanksSearch, XmlMlcaSearch
    from repro.graph.data_graph import DataGraph
    from repro.xmlview import build_xml_view
    from repro.xmlview.index import TreeTextIndex

    banks = BanksSearch(DataGraph(big_db))
    assert not banks.best("star wars").is_empty
    root = build_xml_view(big_db)
    mlca = XmlMlcaSearch(root, TreeTextIndex(root))
    assert not mlca.best("star wars cast").is_empty


def test_log_statistics_hold_at_scale(big_db):
    from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator

    generator = QueryLogGenerator(big_db, seed=8)
    log = generator.generate(generator.recommended_unique())
    stats = QueryLogAnalyzer(big_db).statistics(log)
    assert stats.fraction("single_entity") >= 0.30
    assert stats.movie_related_fraction >= 0.85

"""Tests for qunit evolution over time (Sec. 7 future work)."""

import pytest

from repro.core.evolution import QunitEvolutionTracker


def epoch_movies_heavy():
    """Demand focused on movie cast/plot."""
    return [
        ("star wars cast", 10), ("batman cast", 8), ("cast away plot", 6),
        ("the terminator plot", 5), ("tomb raider cast", 4),
    ]


def epoch_people_heavy():
    """Demand shifts to people and awards."""
    return [
        ("george clooney awards", 10), ("tom hanks awards", 9),
        ("angelina jolie movies", 7), ("julio iglesias biography", 5),
        ("tom hanks movies", 6),
    ]


@pytest.fixture()
def tracker(imdb_db):
    from repro.core.derivation.query_log import QueryLogDeriver

    deriver = QueryLogDeriver(imdb_db, min_anchor_support=3,
                              min_fragment_support=3)
    return QunitEvolutionTracker(imdb_db, smoothing=0.6, drop_below=0.1,
                                 deriver=deriver)


class TestEpochs:
    def test_first_epoch_adds_definitions(self, tracker):
        report = tracker.observe_epoch(epoch_movies_heavy())
        assert report.epoch == 1
        assert report.added
        assert not report.removed
        assert any("movie" in name for name in report.added)

    def test_interest_shift_changes_set(self, tracker):
        tracker.observe_epoch(epoch_movies_heavy())
        report = tracker.observe_epoch(epoch_people_heavy())
        assert any("person" in name for name in report.added)

    def test_stale_definitions_decay_and_drop(self, tracker):
        tracker.observe_epoch(epoch_movies_heavy())
        movie_defs = [d.name for d in tracker.definitions
                      if d.name.startswith("movie")]
        assert movie_defs
        # Several epochs with zero movie demand: utilities decay to drop.
        for _ in range(6):
            tracker.observe_epoch(epoch_people_heavy())
        remaining = {d.name for d in tracker.definitions}
        assert not any(name in remaining for name in movie_defs)

    def test_sustained_demand_keeps_definitions(self, tracker):
        for _ in range(5):
            tracker.observe_epoch(epoch_movies_heavy())
        names = {d.name for d in tracker.definitions}
        assert any(name.startswith("movie") for name in names)

    def test_trajectory_tracks_decay(self, tracker):
        tracker.observe_epoch(epoch_movies_heavy())
        first_added = tracker.reports[0].added[0]
        tracker.observe_epoch(epoch_people_heavy())
        tracker.observe_epoch(epoch_people_heavy())
        trajectory = tracker.trajectory(first_added)
        assert len(trajectory) == 3
        # A movie definition's utility must not rise under person-only demand.
        assert trajectory[1] <= trajectory[0] or trajectory[2] <= trajectory[1]

    def test_empty_epoch_decays_everything(self, tracker):
        tracker.observe_epoch(epoch_movies_heavy())
        before = dict(tracker.reports[-1].utilities)
        tracker.observe_epoch([("zzz unknown query", 1)])
        after = dict(tracker.reports[-1].utilities)
        for name, utility in after.items():
            if name in before:
                assert utility <= before[name]

    def test_definitions_sorted_by_utility(self, tracker):
        tracker.observe_epoch(epoch_movies_heavy())
        utilities = [d.utility for d in tracker.definitions]
        assert utilities == sorted(utilities, reverse=True)

    def test_churn_accounting(self, tracker):
        tracker.observe_epoch(epoch_movies_heavy())
        tracker.observe_epoch(epoch_people_heavy())
        assert tracker.total_churn() == sum(r.churn for r in tracker.reports)


class TestValidation:
    def test_smoothing_bounds(self, imdb_db):
        with pytest.raises(ValueError):
            QunitEvolutionTracker(imdb_db, smoothing=0.0)
        with pytest.raises(ValueError):
            QunitEvolutionTracker(imdb_db, smoothing=1.5)

    def test_drop_below_bounds(self, imdb_db):
        with pytest.raises(ValueError):
            QunitEvolutionTracker(imdb_db, drop_below=-0.1)

"""Tests for hash and inverted text indexes."""

import pytest

from repro.relational.indexes import HashIndex, TextIndex


class TestHashIndex:
    def test_lookup_exact(self, mini_db):
        index = HashIndex(mini_db.table("movie"), "year")
        assert index.lookup(1977) == [0]
        assert index.lookup(1900) == []

    def test_text_normalized(self, mini_db):
        index = HashIndex(mini_db.table("movie"), "title")
        assert index.lookup("STAR WARS") == [0]
        assert index.lookup("Ocean's Eleven!") == index.lookup("ocean's eleven")

    def test_distinct_keys(self, mini_db):
        index = HashIndex(mini_db.table("cast"), "movie_id")
        assert index.distinct_keys == 3
        assert len(index) == 4

    def test_nulls_skipped(self, mini_db):
        mini_db.insert("cast", {"id": 50, "person_id": 1, "movie_id": 1,
                                "role": None})
        index = HashIndex(mini_db.table("cast"), "role")
        assert len(index) == 4  # the null row is not indexed

    def test_unknown_column(self, mini_db):
        from repro.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            HashIndex(mini_db.table("movie"), "nope")


class TestTextIndex:
    def test_token_postings(self, mini_db):
        index = mini_db.text_index()
        postings = index.rows_with_token("wars")
        assert ("movie", "title", 0) in postings

    def test_phrase_requires_full_value(self, mini_db):
        index = mini_db.text_index()
        assert index.has_phrase("star wars")
        assert not index.has_phrase("star")

    def test_document_frequency(self, mini_db):
        index = mini_db.text_index()
        # 'actor' appears as the role of cast rows 2..4: one posting each.
        assert index.document_frequency("actor") == 3
        assert index.document_frequency("wars") == 1
        assert index.document_frequency("nonexistent") == 0

    def test_contains(self, mini_db):
        index = mini_db.text_index()
        assert "clooney" in index
        assert "zzzzz" not in index

    def test_explicit_columns(self, mini_db):
        index = TextIndex()
        indexed = index.add_table(mini_db.table("person"), ["name"])
        assert indexed == 3
        assert index.has_phrase("tom hanks")

    def test_validate_consistency(self, mini_db):
        index = mini_db.text_index()
        index.validate()  # must not raise

    def test_vocabulary_size_positive(self, mini_db):
        assert mini_db.text_index().vocabulary_size() > 5

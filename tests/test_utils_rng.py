"""Tests for the deterministic RNG utilities."""

import math

import pytest

from repro.utils.rng import DeterministicRng, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(10)
        assert math.isclose(sum(weights), 1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(20)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_single_rank(self):
        assert zipf_weights(1) == [1.0]

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(4, exponent=0.0)
        assert all(math.isclose(w, 0.25) for w in weights)

    def test_higher_exponent_more_skew(self):
        flat = zipf_weights(10, exponent=0.5)
        steep = zipf_weights(10, exponent=2.0)
        assert steep[0] > flat[0]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(10)] == \
               [b.randint(0, 100) for _ in range(10)]

    def test_different_seed_differs(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_stable(self):
        # The critical property: fork seeds must not depend on the process
        # hash seed (hash() randomization broke this once).
        child = DeterministicRng(7).fork("movies")
        again = DeterministicRng(7).fork("movies")
        assert child.seed == again.seed

    def test_fork_labels_independent(self):
        root = DeterministicRng(7)
        assert root.fork("a").seed != root.fork("b").seed

    def test_fork_does_not_consume_parent_stream(self):
        a = DeterministicRng(3)
        before = DeterministicRng(3).random()
        a.fork("x")
        assert a.random() == before


class TestSampling:
    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(0)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).weighted_choice(["a"], [1.0, 2.0])

    def test_weighted_sample_distinct(self):
        rng = DeterministicRng(5)
        sample = rng.weighted_sample(list(range(20)), [1.0] * 20, 10)
        assert len(sample) == len(set(sample)) == 10

    def test_weighted_sample_whole_population(self):
        rng = DeterministicRng(5)
        sample = rng.weighted_sample(["x", "y", "z"], [1, 2, 3], 3)
        assert sorted(sample) == ["x", "y", "z"]

    def test_weighted_sample_prefers_heavy(self):
        rng = DeterministicRng(5)
        heavy_first = 0
        for trial in range(200):
            pick = rng.weighted_sample(["heavy", "light"], [100.0, 1.0], 1)[0]
            heavy_first += pick == "heavy"
        assert heavy_first > 150

    def test_weighted_sample_too_many(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).weighted_sample([1, 2], [1, 1], 3)

    def test_weighted_sample_negative_k(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).weighted_sample([1], [1], -1)

    def test_zipf_rank_in_range(self):
        rng = DeterministicRng(9)
        ranks = [rng.zipf_rank(10) for _ in range(100)]
        assert all(0 <= r < 10 for r in ranks)
        # Rank 0 must be the most common.
        assert ranks.count(0) >= max(ranks.count(r) for r in range(1, 10))


class TestDistributions:
    def test_poisson_zero_lambda(self):
        assert DeterministicRng(0).poisson(0) == 0

    def test_poisson_negative_raises(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).poisson(-1)

    def test_poisson_mean_approximately(self):
        rng = DeterministicRng(1)
        draws = [rng.poisson(4.0) for _ in range(2000)]
        assert 3.5 < sum(draws) / len(draws) < 4.5

    def test_noisy_count_clamped(self):
        rng = DeterministicRng(2)
        for _ in range(100):
            assert rng.noisy_count(3, spread=2.0, minimum=1) >= 1

    def test_noisy_count_zero_spread(self):
        assert DeterministicRng(0).noisy_count(7, spread=0.0) == 7

    def test_coin_probability_extremes(self):
        rng = DeterministicRng(3)
        assert not any(rng.coin(0.0) for _ in range(20))
        assert all(rng.coin(1.0) for _ in range(20))

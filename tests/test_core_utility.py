"""Tests for the qunit utility model."""

import pytest

from repro.core.qunit import ParamBinder, QunitDefinition
from repro.core.utility import UtilityModel


def definition(name, sql, binders=(), keywords=()):
    return QunitDefinition(name=name, base_sql=sql, binders=binders,
                           keywords=keywords)


@pytest.fixture()
def model(mini_db):
    return UtilityModel(mini_db)


PERSON_MOVIE = definition(
    "person_movie",
    ('SELECT * FROM person, cast, movie WHERE cast.person_id = person.id '
     'AND cast.movie_id = movie.id AND person.name = "$x"'),
    binders=(ParamBinder("x", "person", "name"),),
    keywords=("movie", "filmography"),
)

GENRE_ONLY = definition(
    "genre_only",
    'SELECT * FROM genre WHERE genre.name = "$x"',
    binders=(ParamBinder("x", "genre", "name"),),
    keywords=("genre",),
)


class TestStructuralUtility:
    def test_entity_rich_definitions_score_higher(self, model):
        assert model.structural_utility(PERSON_MOVIE) > \
               model.structural_utility(GENRE_ONLY)

    def test_junctions_ignored(self, model):
        cast_only = definition(
            "cast_only", "SELECT * FROM cast")
        assert model.structural_utility(cast_only) == 0.0

    def test_weight_validation(self, mini_db):
        with pytest.raises(ValueError):
            UtilityModel(mini_db, structural_weight=1.5)


class TestDemandUtility:
    def test_covered_templates_count(self, model):
        frequencies = {"[person.name] movie": 60, "[person.name] award": 40}
        # PERSON_MOVIE's vocabulary covers "movie" but not "award".
        value = model.demand_utility(PERSON_MOVIE, frequencies)
        assert value == pytest.approx(0.6)

    def test_bare_entity_templates_credit_anchored_definitions(self, model):
        frequencies = {"[person.name]": 100}
        assert model.demand_utility(PERSON_MOVIE, frequencies) == 1.0
        assert model.demand_utility(GENRE_ONLY, frequencies) == 0.0

    def test_empty_frequencies(self, model):
        assert model.demand_utility(PERSON_MOVIE, {}) == 0.0


class TestAssign:
    def test_orders_by_combined_score(self, model):
        frequencies = {"[person.name] movie": 80, "[genre.name]": 20}
        assigned = model.assign([GENRE_ONLY, PERSON_MOVIE], frequencies)
        assert assigned[0].name == "person_movie"
        assert assigned[0].utility >= assigned[1].utility

    def test_without_log_uses_structure_only(self, model):
        assigned = model.assign([GENRE_ONLY, PERSON_MOVIE])
        assert assigned[0].name == "person_movie"

    def test_returns_copies(self, model):
        assigned = model.assign([PERSON_MOVIE])
        assert assigned[0] is not PERSON_MOVIE
        assert PERSON_MOVIE.utility == 1.0  # original untouched

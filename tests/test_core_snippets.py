"""Tests for result snippet extraction."""

import pytest

from repro.core.search.snippets import SnippetExtractor

LONG_TEXT = (
    "a retired detective must confront a conspiracy reaching the highest "
    "levels of government before time runs out and the city watches as "
    "Mark Hamill plays Luke Skywalker in the space epic while the score "
    "was recorded in a single session and critics were divided"
)


class TestSnippet:
    def test_short_text_returned_whole(self):
        extractor = SnippetExtractor(window=50)
        snippet = extractor.snippet("Mark Hamill as Luke", "hamill")
        assert "**Hamill**" in snippet
        assert not snippet.startswith("...")

    def test_window_centers_on_matches(self):
        extractor = SnippetExtractor(window=8)
        snippet = extractor.snippet(LONG_TEXT, "hamill skywalker")
        assert "**Hamill**" in snippet
        assert "**Skywalker**" in snippet
        assert "detective" not in snippet

    def test_truncation_markers(self):
        extractor = SnippetExtractor(window=6)
        snippet = extractor.snippet(LONG_TEXT, "skywalker")
        assert snippet.startswith("... ")
        assert snippet.endswith(" ...")

    def test_distinct_coverage_beats_repeats(self):
        text = "alpha alpha alpha alpha beta gamma filler filler alpha"
        extractor = SnippetExtractor(window=3)
        snippet = extractor.snippet(text, "beta gamma")
        assert "**beta**" in snippet and "**gamma**" in snippet

    def test_no_match_returns_head(self):
        extractor = SnippetExtractor(window=4)
        snippet = extractor.snippet("one two three four five six", "zzz")
        assert snippet.startswith("one")

    def test_empty_text(self):
        assert SnippetExtractor().snippet("", "query") == ""

    def test_stemming_aware(self):
        extractor = SnippetExtractor(window=10)
        snippet = extractor.snippet("the awards ceremony was long", "award")
        assert "**awards**" in snippet

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SnippetExtractor(window=0)


class TestCoverage:
    def test_full_coverage(self):
        extractor = SnippetExtractor()
        assert extractor.coverage("mark hamill luke", "hamill luke") == 1.0

    def test_partial_coverage(self):
        extractor = SnippetExtractor()
        assert extractor.coverage("mark hamill", "hamill missing") == 0.5

    def test_empty_query(self):
        assert SnippetExtractor().coverage("text", "") == 0.0

    def test_on_qunit_answer(self, expert_engine):
        extractor = SnippetExtractor(window=12)
        answer = expert_engine.best("star wars cast")
        snippet = extractor.snippet(answer.text, "hamill")
        assert "**" in snippet

"""Tests for ASCII table / bar-chart rendering."""

import pytest

from repro.utils.tables import ascii_bar_chart, ascii_table, format_float


class TestFormatFloat:
    def test_trims_trailing_zeros(self):
        assert format_float(0.500) == "0.5"

    def test_keeps_one_decimal(self):
        assert format_float(1.0) == "1.0"

    def test_digits(self):
        assert format_float(0.12345, digits=2) == "0.12"


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        out = ascii_table(("a", "b"), [(1, "x"), (22, "yy")])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[-1]

    def test_column_width_fits_longest(self):
        out = ascii_table(("h",), [("longvalue",)])
        header_line = out.splitlines()[0]
        assert len(header_line) >= len("longvalue")

    def test_title(self):
        out = ascii_table(("x",), [("1",)], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_row_arity_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(("a", "b"), [(1,)])

    def test_floats_formatted(self):
        out = ascii_table(("v",), [(0.250,)])
        assert "0.25" in out


class TestAsciiBarChart:
    def test_bar_lengths_proportional(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 0.5], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_max_value_override(self):
        out = ascii_bar_chart(["a"], [0.5], width=10, max_value=1.0)
        assert out.count("#") == 5

    def test_zero_values(self):
        out = ascii_bar_chart(["a"], [0.0], width=10)
        assert "#" not in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_bad_width(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0], width=0)

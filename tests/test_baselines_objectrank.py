"""Tests for the ObjectRank-style authority baseline."""

import pytest

from repro.answer import atom
from repro.baselines.objectrank import ObjectRankSearch
from repro.graph.data_graph import DataGraph, TupleNode


@pytest.fixture()
def objectrank(mini_db):
    return ObjectRankSearch(DataGraph(mini_db))


class TestAuthority:
    def test_global_rank_sums_to_one(self, objectrank):
        ranks = objectrank.global_rank()
        assert abs(sum(ranks.values()) - 1.0) < 1e-6

    def test_global_rank_cached(self, objectrank):
        assert objectrank.global_rank() is objectrank.global_rank()

    def test_hubs_rank_higher(self, objectrank):
        ranks = objectrank.global_rank()
        # Ocean's Eleven (2 cast + 1 genre edge) beats a leaf genre tuple.
        assert ranks[TupleNode("movie", 2)] > ranks[TupleNode("genre", 0)]

    def test_keyword_rank_concentrates_near_matches(self, objectrank):
        ranks = objectrank.keyword_rank("clooney")
        # Authority concentrates at the seed and its immediate join
        # neighborhood (mass legitimately flows into connected hubs).
        top3 = sorted(ranks, key=lambda n: -ranks[n])[:3]
        assert TupleNode("person", 0) in top3
        neighborhood = {TupleNode("person", 0)} | set(
            objectrank.data_graph.neighbors(TupleNode("person", 0)))
        assert top3[0] in neighborhood

    def test_unknown_keyword_empty(self, objectrank):
        assert objectrank.keyword_rank("xyzzy") == {}

    def test_damping_validation(self, mini_db):
        with pytest.raises(ValueError):
            ObjectRankSearch(DataGraph(mini_db), damping=1.0)


class TestSearch:
    def test_single_keyword(self, objectrank):
        answer = objectrank.best("clooney")
        assert atom("person", "name", "George Clooney") in answer.atoms
        assert answer.system == "objectrank"

    def test_object_resolves_own_references(self, objectrank):
        # The top object for "actress" is a cast tuple; its person and
        # movie references are resolved to names, not left as ids.
        answer = objectrank.best("actress")
        assert atom("cast", "role", "actress") in answer.atoms
        assert atom("person", "name", "Carrie Fisher") in answer.atoms

    def test_and_semantics(self, objectrank):
        assert objectrank.search("clooney xyzzy") == []
        assert objectrank.search("") == []

    def test_multi_keyword_connects(self, objectrank):
        answer = objectrank.best("clooney eleven")
        assert not answer.is_empty

    def test_scores_descend(self, objectrank):
        answers = objectrank.search("actor", limit=3)
        scores = [a.score for a in answers]
        assert scores == sorted(scores, reverse=True)

    def test_returns_single_objects_not_trees(self, objectrank):
        # ObjectRank answers are one object + resolved refs: for a person
        # query the answer must not contain unrelated movie plots etc.
        answer = objectrank.best("hanks")
        assert answer.meta("object") is not None

    def test_imdb_scale(self, imdb_db):
        objectrank = ObjectRankSearch(DataGraph(imdb_db))
        answer = objectrank.best("star wars")
        assert not answer.is_empty

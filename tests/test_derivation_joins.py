"""Tests for the shared join-SQL builder."""

import pytest

from repro.core.derivation.joins import build_join_sql
from repro.errors import DerivationError
from repro.graph.schema_graph import SchemaGraph
from repro.relational.sql import run_sql

from tests.conftest import build_mini_schema


@pytest.fixture()
def graph():
    return SchemaGraph(build_mini_schema())


class TestBuildJoinSql:
    def test_direct_neighbor(self, graph, mini_db):
        sql = build_join_sql(graph, "movie", ["genre"])
        rows = run_sql(sql, mini_db)
        assert len(rows) == 3  # one genre per movie in mini_db
        assert "genre.name" in rows[0]

    def test_transitive_neighbor_includes_junction(self, graph):
        sql = build_join_sql(graph, "person", ["movie"])
        assert "cast" in sql
        assert "cast.person_id = person.id" in sql
        assert "cast.movie_id = movie.id" in sql

    def test_binder_clause(self, graph, mini_db):
        sql = build_join_sql(graph, "movie", ["genre"], binder_column="title")
        assert 'movie.title = "$x"' in sql
        rows = run_sql(sql, mini_db, {"x": "star wars"})
        assert len(rows) == 1

    def test_extra_where(self, graph, mini_db):
        sql = build_join_sql(graph, "movie", ["genre"],
                             extra_where=["genre.name = 'drama'"])
        rows = run_sql(sql, mini_db)
        assert len(rows) == 1

    def test_multiple_neighbors(self, graph, mini_db):
        sql = build_join_sql(graph, "movie", ["genre", "person"])
        rows = run_sql(sql, mini_db)
        # cross product of genre x cast per movie
        assert rows and all("person.name" in r for r in rows)

    def test_anchor_duplicated_in_others_ignored(self, graph):
        sql = build_join_sql(graph, "movie", ["movie", "genre"])
        assert sql.count("FROM") == 1

    def test_disconnected_raises(self):
        from repro.relational.schema import Column, ColumnType, Schema, TableSchema

        schema = Schema([
            TableSchema("a", [Column("id", ColumnType.INTEGER)]),
            TableSchema("b", [Column("id", ColumnType.INTEGER)]),
        ])
        with pytest.raises(DerivationError):
            build_join_sql(SchemaGraph(schema), "a", ["b"])

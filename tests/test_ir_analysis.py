"""Tests for the analysis pipeline."""

import pytest

from repro.ir.analysis import STOPWORDS, Analyzer


class TestTokens:
    def test_basic_tokenization(self):
        assert Analyzer(stem=False).tokens("Star Wars!") == ["star", "wars"]

    def test_stopwords_removed(self):
        tokens = Analyzer(stem=False).tokens("the cast of the movie")
        assert "the" not in tokens and "of" not in tokens
        assert "cast" in tokens  # domain words are never stopwords

    def test_stopwords_kept_when_disabled(self):
        tokens = Analyzer(remove_stopwords=False, stem=False).tokens("the movie")
        assert tokens == ["the", "movie"]

    def test_min_token_length(self):
        analyzer = Analyzer(stem=False, remove_stopwords=False, min_token_length=3)
        assert analyzer.tokens("go to la") == []

    def test_min_token_length_validation(self):
        with pytest.raises(ValueError):
            Analyzer(min_token_length=0)

    def test_empty_text(self):
        assert Analyzer().tokens("") == []
        assert Analyzer().tokens("   !!! ") == []

    def test_raw_tokens_no_filtering(self):
        analyzer = Analyzer()
        assert analyzer.raw_tokens("The Cast") == ["the", "cast"]


class TestStemmer:
    def test_plural_s(self):
        assert Analyzer.stem_token("movies") == "movy"  # via ies->y
        assert Analyzer.stem_token("awards") == "award"

    def test_ing(self):
        assert Analyzer.stem_token("filming") == "film"

    def test_ed(self):
        assert Analyzer.stem_token("directed") == "direct"

    def test_short_tokens_untouched(self):
        assert Analyzer.stem_token("was") == "was"
        assert Analyzer.stem_token("ed") == "ed"

    def test_never_strips_below_three_chars(self):
        assert len(Analyzer.stem_token("wars")) >= 3

    def test_idempotent(self):
        for token in ["movies", "filming", "directed", "stars", "cast"]:
            once = Analyzer.stem_token(token)
            assert Analyzer.stem_token(once) == once


class TestStopwordList:
    def test_domain_words_absent(self):
        for word in ("cast", "movie", "year", "plot"):
            assert word not in STOPWORDS

    def test_function_words_present(self):
        for word in ("the", "of", "and", "is"):
            assert word in STOPWORDS

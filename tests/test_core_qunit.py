"""Tests for qunit definitions and instances."""

import pytest

from repro.core.qunit import ParamBinder, QunitDefinition
from repro.errors import DerivationError, QueryError


def cast_definition(**kwargs):
    return QunitDefinition(
        name=kwargs.pop("name", "cast_of_movie"),
        base_sql=(
            'SELECT person.name, cast.role, movie.title '
            'FROM person, cast, movie '
            'WHERE cast.movie_id = movie.id AND cast.person_id = person.id '
            'AND movie.title = "$x"'
        ),
        binders=(ParamBinder("x", "movie", "title"),),
        **kwargs,
    )


class TestDefinitionValidation:
    def test_params_must_match_binders(self):
        with pytest.raises(DerivationError):
            QunitDefinition(
                name="bad",
                base_sql='SELECT * FROM movie WHERE movie.title = "$x"',
                binders=(),  # $x undeclared
            )
        with pytest.raises(DerivationError):
            QunitDefinition(
                name="bad2",
                base_sql="SELECT * FROM movie",
                binders=(ParamBinder("x", "movie", "title"),),
            )

    def test_name_required(self):
        with pytest.raises(DerivationError):
            QunitDefinition(name="", base_sql="SELECT * FROM movie")

    def test_invalid_sql_rejected_eagerly(self):
        from repro.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            QunitDefinition(name="x", base_sql="SELEKT nonsense")

    def test_tables_footprint(self):
        definition = cast_definition()
        assert definition.tables() == ["person", "cast", "movie"]

    def test_from_combined_sql(self):
        definition = QunitDefinition.from_combined_sql(
            "combo",
            'SELECT * FROM movie WHERE movie.title = "$x" '
            'RETURN <m>$movie.title</m>',
            binders=(ParamBinder("x", "movie", "title"),),
        )
        assert definition.conversion == "<m>$movie.title</m>"
        assert "RETURN" not in definition.base_sql

    def test_schema_terms(self):
        definition = cast_definition(keywords=("credits", "full cast"))
        terms = definition.schema_terms()
        assert {"person", "cast", "movie", "credits", "full"} <= terms

    def test_with_utility(self):
        definition = cast_definition()
        assert definition.with_utility(0.3).utility == 0.3


class TestBindings:
    def test_enumerates_distinct_binder_values(self, mini_db):
        bindings = cast_definition().bindings(mini_db)
        values = {b["x"] for b in bindings}
        assert values == {"Star Wars", "Cast Away", "Ocean's Eleven"}

    def test_limit(self, mini_db):
        assert len(cast_definition().bindings(mini_db, limit=2)) == 2

    def test_no_binders_single_instance(self, mini_db):
        definition = QunitDefinition(
            name="charts",
            base_sql="SELECT movie.title FROM movie ORDER BY movie.rating DESC",
        )
        assert definition.bindings(mini_db) == [{}]
        instances = definition.instances(mini_db)
        assert len(instances) == 1 and len(instances[0].rows) == 3

    def test_multi_binder_needs_enumerator(self, mini_db):
        definition = QunitDefinition(
            name="pair",
            base_sql=('SELECT * FROM person, movie '
                      'WHERE person.name = "$a" AND movie.title = "$b"'),
            binders=(ParamBinder("a", "person", "name"),
                     ParamBinder("b", "movie", "title")),
        )
        with pytest.raises(DerivationError):
            definition.bindings(mini_db)

    def test_enumerator_sql(self, mini_db):
        definition = QunitDefinition(
            name="pair",
            base_sql=('SELECT * FROM person, cast, movie '
                      'WHERE cast.person_id = person.id '
                      'AND cast.movie_id = movie.id '
                      'AND person.name = "$a" AND movie.title = "$b"'),
            binders=(ParamBinder("a", "person", "name"),
                     ParamBinder("b", "movie", "title")),
            enumerator_sql=(
                "SELECT person.name AS a, movie.title AS b "
                "FROM person, cast, movie "
                "WHERE cast.person_id = person.id AND cast.movie_id = movie.id"
            ),
        )
        bindings = definition.bindings(mini_db)
        assert {"a": "Tom Hanks", "b": "Cast Away"} in bindings
        instance = definition.materialize(mini_db, bindings[0])
        assert not instance.is_empty


class TestInstances:
    def test_materialize(self, mini_db):
        instance = cast_definition().materialize(mini_db, {"x": "Ocean's Eleven"})
        names = {row["person.name"] for row in instance.rows}
        assert names == {"George Clooney", "Tom Hanks"}

    def test_unbound_param_rejected(self, mini_db):
        with pytest.raises(QueryError):
            cast_definition().materialize(mini_db, {})

    def test_instance_id_stable(self, mini_db):
        instance = cast_definition().materialize(mini_db, {"x": "Star Wars"})
        assert instance.instance_id == "cast_of_movie::star_wars"

    def test_atoms_exclude_ids(self, mini_db):
        instance = cast_definition().materialize(mini_db, {"x": "Star Wars"})
        atoms = instance.atoms()
        assert ("person", "name", "carrie fisher") in atoms
        assert all(col != "id" and not col.endswith("_id")
                   for _t, col, _v in atoms)

    def test_default_text_rendering(self, mini_db):
        instance = cast_definition().materialize(mini_db, {"x": "Star Wars"})
        assert "Carrie Fisher" in instance.text()

    def test_conversion_rendering(self, mini_db):
        definition = cast_definition(
            name="cast_markup",
            conversion=('<cast movie="$x"><foreach:tuple>'
                        "<person>$person.name</person></foreach:tuple></cast>"),
        )
        instance = definition.materialize(mini_db, {"x": "Star Wars"})
        assert instance.markup() == (
            '<cast movie="Star Wars"><person>Carrie Fisher</person></cast>'
        )
        assert instance.text() == "Carrie Fisher"

    def test_as_document(self, mini_db):
        instance = cast_definition().materialize(mini_db, {"x": "Star Wars"})
        document = instance.as_document()
        assert document.doc_id == instance.instance_id
        assert document.meta("definition") == "cast_of_movie"
        assert document.weight("title") == 3.0

    def test_to_answer(self, mini_db):
        instance = cast_definition().materialize(mini_db, {"x": "Star Wars"})
        answer = instance.to_answer(score=0.9, system="qunits-test")
        assert answer.score == 0.9
        assert answer.meta("definition") == "cast_of_movie"
        assert not answer.is_empty

    def test_empty_instance(self, mini_db):
        definition = QunitDefinition(
            name="ghost",
            base_sql='SELECT * FROM movie WHERE movie.title = "$x"',
            binders=(ParamBinder("x", "movie", "title"),),
        )
        instance = definition.materialize(mini_db, {"x": "No Such Movie"})
        assert instance.is_empty

"""Tests for query-log rollup derivation (Sec. 4.2)."""

import pytest

from repro.core.derivation.query_log import QueryLogDeriver, SchemaLink
from repro.errors import DerivationError


@pytest.fixture(scope="module")
def deriver(imdb_db):
    return QueryLogDeriver(imdb_db, min_anchor_support=3,
                           min_fragment_support=2)


def paper_log():
    """The paper's Sec. 4.2 example: george clooney / tom hanks queries."""
    return [
        ("george clooney actor", 1),
        ("george clooney batman", 2),
        ("tom hanks cast away", 1),
        ("george clooney movies", 3),
        ("tom hanks movies", 2),
    ]


class TestSchemaLinks:
    def test_annotated_link_structure(self, deriver):
        links = deriver.schema_links(paper_log())
        person_links = links[("person", "name")]
        # person.name links to movie (via titles + "movies" attribute) more
        # than to role_type ("actor") - the paper's rollup ordering.
        assert person_links[SchemaLink("movie")] > \
            person_links[SchemaLink("role_type")]

    def test_frequency_weighting(self, deriver):
        light = deriver.schema_links([("george clooney movies", 1)])
        heavy = deriver.schema_links([("george clooney movies", 10)])
        key = ("person", "name")
        assert heavy[key][SchemaLink("movie")] == \
            10 * light[key][SchemaLink("movie")]

    def test_queries_without_entities_ignored(self, deriver):
        links = deriver.schema_links([("weather forecast", 50)])
        assert links == {}

    def test_co_entities_link_both_ways(self, deriver):
        links = deriver.schema_links([("george clooney batman", 1)])
        assert links[("person", "name")][SchemaLink("movie")] >= 1
        assert links[("movie", "title")][SchemaLink("person")] >= 1


class TestDerive:
    def test_rollup_definition_emitted(self, deriver):
        defs = deriver.derive(paper_log())
        names = {d.name for d in defs}
        assert "person_name_rollup" in names

    def test_rollup_contains_top_links(self, deriver):
        defs = deriver.derive(paper_log())
        rollup = next(d for d in defs if d.name == "person_name_rollup")
        assert "movie" in rollup.tables()

    def test_fragment_definitions_emitted(self, deriver):
        defs = deriver.derive(paper_log())
        fragments = [d for d in defs if d.name != "person_name_rollup"
                     and d.binders[0].table == "person"]
        assert any("movie" in d.tables() for d in fragments)

    def test_info_type_filter_included(self, deriver):
        defs = deriver.derive([
            ("star wars plot", 5), ("batman plot", 4), ("cast away plot", 3),
        ])
        plot_defs = [d for d in defs if "plot" in " ".join(d.keywords)]
        assert plot_defs
        assert any("info_type.name IN ('plot')" in d.base_sql
                   for d in plot_defs)

    def test_support_threshold_filters(self, imdb_db):
        strict = QueryLogDeriver(imdb_db, min_anchor_support=1000)
        with pytest.raises(DerivationError):
            strict.derive(paper_log())

    def test_empty_log_raises(self, deriver):
        with pytest.raises(DerivationError):
            deriver.derive([])

    def test_source_and_utilities(self, deriver):
        for definition in deriver.derive(paper_log()):
            assert definition.source == "query_log"
            assert 0.0 < definition.utility <= 1.0

    def test_definitions_executable(self, imdb_db, deriver):
        for definition in deriver.derive(paper_log()):
            bindings = definition.bindings(imdb_db, limit=1)
            if bindings:
                definition.materialize(imdb_db, bindings[0])

    def test_synthetic_log_end_to_end(self, imdb_db):
        from repro.datasets.querylog import QueryLogGenerator

        generator = QueryLogGenerator(imdb_db, seed=3)
        log = generator.generate(generator.recommended_unique())
        defs = QueryLogDeriver(imdb_db).derive(log.as_list())
        anchors = {d.binders[0].table for d in defs}
        assert "person" in anchors and "movie" in anchors

"""Tests for the qunit collection."""

from pathlib import Path

import pytest

from repro.core.collection import QunitCollection
from repro.core.qunit import ParamBinder, QunitDefinition
from repro.core.store import CollectionStore, LoadOptions, SaveOptions
from repro.errors import DerivationError


def _save(collection, path, vectors=True):
    """Persist through the store API; returns the directory path."""
    report = CollectionStore(path).save(collection,
                                        SaveOptions(vectors=vectors))
    return Path(report.path)


def _load(database, path, **options):
    """Eager load through the store API — the contract these tests were
    written against (the whole generation in memory up front)."""
    return CollectionStore(path).load(
        database, LoadOptions(lazy=False, **options))


def _load_shard(path, shard_index):
    return CollectionStore(path).load_shard(shard_index)


def definitions():
    return [
        QunitDefinition(
            name="movie_page",
            base_sql='SELECT * FROM movie WHERE movie.title = "$x"',
            binders=(ParamBinder("x", "movie", "title"),),
            keywords=("movie", "summary"),
        ),
        QunitDefinition(
            name="person_page",
            base_sql='SELECT * FROM person WHERE person.name = "$x"',
            binders=(ParamBinder("x", "person", "name"),),
        ),
    ]


@pytest.fixture()
def collection(mini_db):
    return QunitCollection(mini_db, definitions())


class TestDefinitions:
    def test_lookup(self, collection):
        assert collection.definition("movie_page").name == "movie_page"
        assert "movie_page" in collection
        assert len(collection) == 2

    def test_unknown_definition(self, collection):
        with pytest.raises(DerivationError):
            collection.definition("nope")

    def test_duplicate_rejected(self, mini_db):
        with pytest.raises(DerivationError):
            QunitCollection(mini_db, definitions() + definitions()[:1])


class TestInstances:
    def test_instances_of(self, collection):
        instances = collection.instances_of("movie_page")
        assert len(instances) == 3
        assert collection.instances_of("movie_page") is instances  # cached

    def test_all_instances(self, collection):
        assert len(collection.all_instances()) == 6
        assert collection.instance_count() == 6

    def test_max_instances_cap(self, mini_db):
        capped = QunitCollection(mini_db, definitions(),
                                 max_instances_per_definition=1)
        assert len(capped.instances_of("movie_page")) == 1

    def test_instance_by_id(self, collection):
        instance = collection.instance("movie_page::star_wars")
        assert instance.params == {"x": "Star Wars"}

    def test_instance_unknown(self, collection):
        with pytest.raises(DerivationError):
            collection.instance("movie_page::no_such")
        with pytest.raises(DerivationError):
            collection.instance("ghost_def::x")

    def test_materialize_on_demand(self, collection):
        instance = collection.materialize("movie_page", {"x": "Star Wars"})
        assert collection.instance(instance.instance_id) is instance

    def test_empty_instances_skipped(self, mini_db):
        # person_page over a db where one person has no row... all have
        # rows here, so add a definition guaranteed empty for some values.
        definition = QunitDefinition(
            name="award_page",
            base_sql=('SELECT * FROM movie, cast '
                      'WHERE cast.movie_id = movie.id '
                      'AND cast.role = "$x"'),
            binders=(ParamBinder("x", "cast", "role"),),
        )
        collection = QunitCollection(mini_db, [definition])
        assert all(not i.is_empty for i in collection.all_instances())


class TestIndexes:
    def test_global_index_covers_all_instances(self, collection):
        index = collection.global_index()
        assert index.document_count == 6
        index.validate()

    def test_definition_index(self, collection):
        index = collection.definition_index("movie_page")
        assert index.document_count == 3

    def test_keywords_decorate_documents(self, collection):
        index = collection.definition_index("movie_page")
        document = index.document("movie_page::star_wars")
        assert "summary" in document.field("title")

    def test_searcher_finds_instance(self, collection):
        searcher = collection.searcher()
        best = searcher.best("star wars")
        assert best is not None
        assert best.doc_id == "movie_page::star_wars"

    def test_describe(self, collection):
        rows = collection.describe()
        assert ("movie_page", "manual", 3) in rows


class TestSearcherCaching:
    def test_searcher_reused_across_calls(self, collection):
        assert collection.searcher() is collection.searcher()

    def test_definition_searcher_reused(self, collection):
        first = collection.definition_searcher("movie_page")
        assert collection.definition_searcher("movie_page") is first

    def test_distinct_scorer_params_get_distinct_searchers(self, collection):
        from repro.ir.scoring import Bm25Scorer

        default = collection.searcher()
        tuned = collection.searcher(Bm25Scorer(k1=0.3, b=0.1))
        assert tuned is not default
        # Equal parameters share a cached searcher.
        assert collection.searcher(Bm25Scorer(k1=0.3, b=0.1)) is tuned

    def test_search_many_matches_singles(self, collection):
        queries = ["star wars", "ocean", "nothing matches this zzz"]
        batch = collection.search_many(queries, limit=2)
        searcher = collection.searcher()
        for query, hits in zip(queries, batch):
            singles = searcher.search(query, limit=2)
            assert [(h.doc_id, h.score) for h in hits] == \
                   [(h.doc_id, h.score) for h in singles]


class TestPersistence:
    def test_save_load_round_trip(self, mini_db, tmp_path):
        import json

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        assert (out / "collection.json").exists()
        manifest = json.loads((out / "collection.json").read_text())
        assert (out / manifest["snapshots"]["global"]).exists()
        assert (out / manifest["snapshots"]["definitions"]["movie_page"]
                ).exists()

        loaded = _load(mini_db, out)
        assert sorted(loaded.definitions) == sorted(collection.definitions)
        assert loaded.definitions["movie_page"] == \
               collection.definitions["movie_page"]
        assert loaded.analyzer.stem == collection.analyzer.stem

    def test_loaded_collection_search_rank_identical(self, mini_db, tmp_path):
        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out)
        for query in ("star wars", "person", "movie summary", "zzz"):
            fresh = collection.searcher().search(query, limit=4)
            cold = loaded.searcher().search(query, limit=4)
            assert [(h.doc_id, h.score) for h in cold] == \
                   [(h.doc_id, h.score) for h in fresh]

    def test_loaded_collection_serves_without_materializing(self, mini_db,
                                                            tmp_path):
        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out)
        assert loaded.searcher().best("star wars") is not None
        # The query was answered from the loaded snapshot: nothing was
        # re-materialized and no live index was built.
        assert loaded._instances == {}
        assert loaded._global_index is None

    def test_load_pins_generation_against_resave_pruning(self, mini_db,
                                                         tmp_path):
        # Regression: load() reads every referenced snapshot eagerly, so a
        # re-save that prunes the old generation's files cannot break an
        # already-loaded collection mid-serving.
        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out)
        assert "movie_page" in loaded._loaded_snapshots
        _save(QunitCollection(mini_db, definitions()[:1]), out)  # prunes gen 1
        hits = loaded.definition_searcher("movie_page").search("star wars")
        assert hits
        assert loaded.searcher().best("star wars") is not None

    def test_loaded_collection_still_materializes_instances(self, mini_db,
                                                            tmp_path):
        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out)
        hit = loaded.searcher().best("star wars")
        instance = loaded.instance(hit.doc_id)
        assert instance.instance_id == hit.doc_id
        assert not instance.is_empty

    def test_resave_swaps_generations_and_prunes(self, mini_db, tmp_path):
        import json

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        first = json.loads((out / "collection.json").read_text())
        _save(QunitCollection(mini_db, definitions()[:1]), out)
        second = json.loads((out / "collection.json").read_text())
        # A fresh generation replaced the old one, and every snapshot on
        # disk is referenced by the new manifest — no mixed generations.
        assert second["snapshots"]["global"] != first["snapshots"]["global"]
        referenced = {second["snapshots"]["global"],
                      *second["snapshots"]["definitions"].values()}
        on_disk = {entry.name for entry in out.glob("*.snap")}
        assert on_disk == referenced
        loaded = _load(mini_db, out)
        assert sorted(loaded.definitions) == ["movie_page"]

    def test_empty_collection_round_trips_without_rebuild(self, mini_db,
                                                          tmp_path):
        # Regression: an *empty* loaded snapshot is falsy; index resolution
        # must still serve it rather than rebuilding from the database.
        empty = QunitCollection(mini_db, [])
        out = _save(empty, tmp_path / "empty")
        loaded = _load(mini_db, out)
        assert loaded.searcher().search("star wars") == []
        assert loaded._global_index is None
        assert loaded._instances == {}

    def test_load_rejects_analyzer_mismatch(self, mini_db, tmp_path):
        import json

        from repro.errors import SnapshotError

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        manifest_path = out / "collection.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["analyzer"]["stem"] = not manifest["analyzer"]["stem"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="analyzer"):
            _load(mini_db, out)

    def test_global_snapshot_public_accessor(self, mini_db, tmp_path):
        collection = QunitCollection(mini_db, definitions())
        built = collection.global_snapshot()
        assert built.document_count == collection.instance_count()
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out)
        assert loaded.global_snapshot().document_count == built.document_count

    def test_load_rejects_different_database(self, mini_db, tmp_path):
        from repro.datasets.imdb import generate_imdb
        from repro.errors import SnapshotError

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        other = generate_imdb(scale=0.05, seed=1)
        with pytest.raises(SnapshotError, match="derived from database"):
            _load(other, out)

    def test_load_missing_manifest(self, mini_db, tmp_path):
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError, match="manifest"):
            _load(mini_db, tmp_path / "nowhere")

    def test_load_bad_manifest_version(self, mini_db, tmp_path):
        import json

        from repro.errors import SnapshotError

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        manifest_path = out / "collection.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format version"):
            _load(mini_db, out)

    def test_load_manifest_missing_definitions_is_clean_error(self, mini_db,
                                                              tmp_path):
        import json

        from repro.errors import SnapshotError

        out = _save(QunitCollection(mini_db, definitions()), tmp_path / "snap")
        manifest_path = out / "collection.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["definitions"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="definitions"):
            _load(mini_db, out)

    def test_load_retries_when_racing_a_resave(self, mini_db, tmp_path,
                                               monkeypatch):
        # Simulate losing the race: the first snapshot read hits a file a
        # concurrent re-save just pruned; the retry (fresh manifest) wins.
        from repro.core import store as store_module
        from repro.errors import SnapshotError

        out = _save(QunitCollection(mini_db, definitions()), tmp_path / "snap")
        real_load = store_module.load_snapshot_with_header
        calls = {"n": 0}

        def flaky_load(path, store=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SnapshotError(
                    f"cannot read snapshot file {str(path)!r}: gone"
                ) from FileNotFoundError(2, "gone")
            return real_load(path, store=store)

        monkeypatch.setattr(store_module, "load_snapshot_with_header",
                            flaky_load)
        loaded = _load(mini_db, out)
        assert loaded.searcher().best("star wars") is not None
        assert calls["n"] > 1

    def test_unknown_definition_still_fails_after_load(self, mini_db,
                                                       tmp_path):
        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out)
        with pytest.raises(DerivationError):
            loaded.definition_searcher("nope")

    def test_definition_dict_round_trip(self):
        from repro.core.qunit import QunitDefinition

        for definition in definitions():
            assert QunitDefinition.from_dict(definition.to_dict()) == \
                   definition


class TestHybridPersistence:
    """The collection-level contract of the hybrid strategy: vectors
    saved by default serve hybrid without complaint; a generation saved
    with ``vectors=False`` degrades to lexical with one warning."""

    def test_default_save_serves_hybrid_without_warning(self, mini_db,
                                                        tmp_path):
        import warnings

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out, strategy="hybrid")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            hits = loaded.searcher().search("star wars", 4)
        assert hits
        assert loaded.searcher().hybrid_fallbacks == 0

    def test_save_without_vectors_degrades_to_lexical(self, mini_db,
                                                      tmp_path):
        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap", vectors=False)
        lexical = _load(mini_db, out)
        expected = [(h.doc_id, h.score)
                    for h in lexical.searcher().search("star wars", 4)]
        hybrid = _load(mini_db, out, strategy="hybrid")
        with pytest.warns(RuntimeWarning, match="no vector extents"):
            hits = hybrid.searcher().search("star wars", 4)
        assert [(h.doc_id, h.score) for h in hits] == expected
        assert hybrid.searcher().hybrid_fallbacks >= 1


class TestSharding:
    def test_sharded_collection_search_matches_serial(self, mini_db):
        serial = QunitCollection(mini_db, definitions())
        sharded = QunitCollection(mini_db, definitions(), shards=2,
                                  parallelism="serial")
        for query in ("star wars", "person", "zzz"):
            assert [(h.doc_id, h.score)
                    for h in sharded.searcher().search(query, limit=4)] == \
                   [(h.doc_id, h.score)
                    for h in serial.searcher().search(query, limit=4)]
        sharded.close()

    def test_definition_searchers_stay_serial(self, mini_db):
        sharded = QunitCollection(mini_db, definitions(), shards=4)
        assert sharded.searcher().shards == 4
        assert sharded.definition_searcher("movie_page").shards == 0
        sharded.close()


class TestSnapshotV2Layout:
    def test_save_writes_document_store_and_refs(self, mini_db, tmp_path):
        import json

        from repro.ir.persist import FORMAT_VERSION, read_snapshot_header

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        manifest = json.loads((out / "collection.json").read_text())
        assert manifest["format_version"] == 2
        store_name = manifest["docstore"]
        assert (out / store_name).exists()
        # Snapshot files reference the store instead of inlining documents.
        global_header = read_snapshot_header(
            out / manifest["snapshots"]["global"])
        assert global_header["format_version"] == FORMAT_VERSION
        assert global_header["docstore"] == store_name

    def test_documents_stored_once_directory_smaller_than_standalone(
            self, mini_db, tmp_path):
        # The dedup property, format-for-format: a generation whose
        # snapshots reference the shared store must be smaller than the
        # same snapshots saved standalone (documents inlined per file).
        from repro.ir.persist import save_snapshot

        collection = QunitCollection(mini_db, definitions())
        # vectors=False: this test measures the document-dedup property
        # alone; vector extents (saved by default, skipped by
        # save_snapshot below) would drown the comparison.
        out = _save(collection, tmp_path / "deduped", vectors=False)
        deduped_bytes = sum(entry.stat().st_size for entry in out.iterdir()
                            if entry.name != "collection.json")

        standalone = tmp_path / "standalone"
        standalone.mkdir()
        save_snapshot(collection.global_snapshot(),
                      standalone / "global.snap")
        for name in sorted(collection.definitions):
            save_snapshot(collection.definition_index(name).snapshot(),
                          standalone / f"def-{name}.snap")
        standalone_bytes = sum(entry.stat().st_size
                               for entry in standalone.iterdir())
        assert deduped_bytes < standalone_bytes

    def test_load_shares_documents_across_snapshots(self, mini_db, tmp_path):
        # Regression for the double-pin: eager load used to hold two full
        # copies of every document (global + per-definition snapshots).
        # With the deduplicated store, every loaded snapshot must share
        # the same Document objects, and the number of distinct pinned
        # documents must equal the store size exactly.
        import json

        from repro.ir.persist import load_document_store

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        manifest = json.loads((out / "collection.json").read_text())
        store = load_document_store(out / manifest["docstore"])

        loaded = _load(mini_db, out)
        global_snapshot = loaded._loaded_snapshots[None]
        unique_objects = {id(document)
                          for document in global_snapshot.documents()}
        for name in loaded.definitions:
            definition_snapshot = loaded._loaded_snapshots[name]
            for document in definition_snapshot.documents():
                # Shared with the global snapshot, not a second copy.
                assert global_snapshot.document(document.doc_id) is document
                unique_objects.add(id(document))
        assert len(unique_objects) == len(store)

    def test_v1_generation_still_loads(self, mini_db, tmp_path):
        # A directory written by the previous build: version-1 manifest,
        # version-1 snapshot files with inline documents.
        import json

        from repro.ir.persist import save_snapshot_v1

        collection = QunitCollection(mini_db, definitions())
        out = tmp_path / "legacy"
        out.mkdir()
        save_snapshot_v1(collection.global_snapshot(), out / "global.snap")
        names = {}
        for name in sorted(collection.definitions):
            save_snapshot_v1(collection.definition_index(name).snapshot(),
                             out / f"def-{name}.snap")
            names[name] = f"def-{name}.snap"
        manifest = {
            "magic": "qunits-collection",
            "format_version": 1,
            "analyzer": collection.analyzer.config(),
            "database": collection._database_fingerprint(mini_db),
            "max_instances_per_definition": None,
            "definitions": [collection.definitions[name].to_dict()
                            for name in sorted(collection.definitions)],
            "snapshots": {"global": "global.snap", "definitions": names},
        }
        (out / "collection.json").write_text(json.dumps(manifest))

        loaded = _load(mini_db, out)
        for query in ("star wars", "person", "zzz"):
            assert [(h.doc_id, h.score)
                    for h in loaded.searcher().search(query, limit=4)] == \
                   [(h.doc_id, h.score)
                    for h in collection.searcher().search(query, limit=4)]

    def test_resave_prunes_stale_store_files(self, mini_db, tmp_path):
        import json

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        _save(QunitCollection(mini_db, definitions()[:1]), out)
        manifest = json.loads((out / "collection.json").read_text())
        on_disk = {entry.name for entry in out.glob("*.store")}
        assert on_disk == {manifest["docstore"]}


class TestShardPersistence:
    def test_save_with_shards_writes_shard_files(self, mini_db, tmp_path):
        import json

        collection = QunitCollection(mini_db, definitions(), shards=2,
                                     parallelism="serial")
        out = _save(collection, tmp_path / "snap")
        manifest = json.loads((out / "collection.json").read_text())
        assert manifest["shards"]["count"] == 2
        assert len(manifest["shards"]["files"]) == 2
        from repro.ir.persist import read_snapshot_header

        for i, file_name in enumerate(manifest["shards"]["files"]):
            header = read_snapshot_header(out / file_name)
            assert header["shard"] == {"index": i, "count": 2}
            assert header["bloom"] is not None

    def test_unsharded_save_has_no_shard_files(self, mini_db, tmp_path):
        import json

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        manifest = json.loads((out / "collection.json").read_text())
        assert manifest["shards"] is None
        assert not list(out.glob("shard-*"))

    def test_load_restores_persisted_shards(self, mini_db, tmp_path):
        collection = QunitCollection(mini_db, definitions(), shards=2,
                                     parallelism="serial")
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out, shards=2,
                                      parallelism="serial")
        assert loaded._loaded_sharded is not None
        assert len(loaded._loaded_sharded.shards) == 2
        # The flat searcher serves from the restored shards, and results
        # match the serial path exactly.
        serial = _load(mini_db, out)
        for query in ("star wars", "person", "zzz"):
            assert [(h.doc_id, h.score)
                    for h in loaded.searcher().search(query, limit=4)] == \
                   [(h.doc_id, h.score)
                    for h in serial.searcher().search(query, limit=4)]
        loaded.close()

    def test_load_with_other_shard_count_repartitions(self, mini_db,
                                                      tmp_path):
        collection = QunitCollection(mini_db, definitions(), shards=2,
                                     parallelism="serial")
        out = _save(collection, tmp_path / "snap")
        loaded = _load(mini_db, out, shards=3,
                                      parallelism="serial")
        assert loaded._loaded_sharded is None  # falls back to in-memory
        serial = _load(mini_db, out)
        for query in ("star wars", "person"):
            assert [(h.doc_id, h.score)
                    for h in loaded.searcher().search(query, limit=4)] == \
                   [(h.doc_id, h.score)
                    for h in serial.searcher().search(query, limit=4)]
        loaded.close()

    def test_load_shard_returns_single_partition(self, mini_db, tmp_path):
        from repro.ir.shard import shard_snapshot

        collection = QunitCollection(mini_db, definitions(), shards=2,
                                     parallelism="serial")
        out = _save(collection, tmp_path / "snap")
        expected = shard_snapshot(collection.global_snapshot(), 2)
        for i in range(2):
            snapshot, bloom = _load_shard(out, i)
            assert sorted(d.doc_id for d in snapshot.documents()) == \
                   sorted(d.doc_id for d in expected[i].documents())
            # Collection-wide statistics, not partition-local ones.
            assert snapshot.document_count == \
                   collection.global_snapshot().document_count
            assert bloom is not None
            for term in snapshot.terms():
                assert term in bloom

    def test_load_shard_errors(self, mini_db, tmp_path):
        from repro.errors import SnapshotError

        collection = QunitCollection(mini_db, definitions())
        out = _save(collection, tmp_path / "snap")
        with pytest.raises(SnapshotError, match="no persisted shard"):
            _load_shard(out, 0)
        sharded_out = _save(QunitCollection(
            mini_db, definitions(), shards=2), tmp_path / "sharded")
        with pytest.raises(SnapshotError, match="out of range"):
            _load_shard(sharded_out, 9)

"""Tests for the qunit collection."""

import pytest

from repro.core.collection import QunitCollection
from repro.core.qunit import ParamBinder, QunitDefinition
from repro.errors import DerivationError


def definitions():
    return [
        QunitDefinition(
            name="movie_page",
            base_sql='SELECT * FROM movie WHERE movie.title = "$x"',
            binders=(ParamBinder("x", "movie", "title"),),
            keywords=("movie", "summary"),
        ),
        QunitDefinition(
            name="person_page",
            base_sql='SELECT * FROM person WHERE person.name = "$x"',
            binders=(ParamBinder("x", "person", "name"),),
        ),
    ]


@pytest.fixture()
def collection(mini_db):
    return QunitCollection(mini_db, definitions())


class TestDefinitions:
    def test_lookup(self, collection):
        assert collection.definition("movie_page").name == "movie_page"
        assert "movie_page" in collection
        assert len(collection) == 2

    def test_unknown_definition(self, collection):
        with pytest.raises(DerivationError):
            collection.definition("nope")

    def test_duplicate_rejected(self, mini_db):
        with pytest.raises(DerivationError):
            QunitCollection(mini_db, definitions() + definitions()[:1])


class TestInstances:
    def test_instances_of(self, collection):
        instances = collection.instances_of("movie_page")
        assert len(instances) == 3
        assert collection.instances_of("movie_page") is instances  # cached

    def test_all_instances(self, collection):
        assert len(collection.all_instances()) == 6
        assert collection.instance_count() == 6

    def test_max_instances_cap(self, mini_db):
        capped = QunitCollection(mini_db, definitions(),
                                 max_instances_per_definition=1)
        assert len(capped.instances_of("movie_page")) == 1

    def test_instance_by_id(self, collection):
        instance = collection.instance("movie_page::star_wars")
        assert instance.params == {"x": "Star Wars"}

    def test_instance_unknown(self, collection):
        with pytest.raises(DerivationError):
            collection.instance("movie_page::no_such")
        with pytest.raises(DerivationError):
            collection.instance("ghost_def::x")

    def test_materialize_on_demand(self, collection):
        instance = collection.materialize("movie_page", {"x": "Star Wars"})
        assert collection.instance(instance.instance_id) is instance

    def test_empty_instances_skipped(self, mini_db):
        # person_page over a db where one person has no row... all have
        # rows here, so add a definition guaranteed empty for some values.
        definition = QunitDefinition(
            name="award_page",
            base_sql=('SELECT * FROM movie, cast '
                      'WHERE cast.movie_id = movie.id '
                      'AND cast.role = "$x"'),
            binders=(ParamBinder("x", "cast", "role"),),
        )
        collection = QunitCollection(mini_db, [definition])
        assert all(not i.is_empty for i in collection.all_instances())


class TestIndexes:
    def test_global_index_covers_all_instances(self, collection):
        index = collection.global_index()
        assert index.document_count == 6
        index.validate()

    def test_definition_index(self, collection):
        index = collection.definition_index("movie_page")
        assert index.document_count == 3

    def test_keywords_decorate_documents(self, collection):
        index = collection.definition_index("movie_page")
        document = index.document("movie_page::star_wars")
        assert "summary" in document.field("title")

    def test_searcher_finds_instance(self, collection):
        searcher = collection.searcher()
        best = searcher.best("star wars")
        assert best is not None
        assert best.doc_id == "movie_page::star_wars"

    def test_describe(self, collection):
        rows = collection.describe()
        assert ("movie_page", "manual", 3) in rows


class TestSearcherCaching:
    def test_searcher_reused_across_calls(self, collection):
        assert collection.searcher() is collection.searcher()

    def test_definition_searcher_reused(self, collection):
        first = collection.definition_searcher("movie_page")
        assert collection.definition_searcher("movie_page") is first

    def test_distinct_scorer_params_get_distinct_searchers(self, collection):
        from repro.ir.scoring import Bm25Scorer

        default = collection.searcher()
        tuned = collection.searcher(Bm25Scorer(k1=0.3, b=0.1))
        assert tuned is not default
        # Equal parameters share a cached searcher.
        assert collection.searcher(Bm25Scorer(k1=0.3, b=0.1)) is tuned

    def test_search_many_matches_singles(self, collection):
        queries = ["star wars", "ocean", "nothing matches this zzz"]
        batch = collection.search_many(queries, limit=2)
        searcher = collection.searcher()
        for query, hits in zip(queries, batch):
            singles = searcher.search(query, limit=2)
            assert [(h.doc_id, h.score) for h in hits] == \
                   [(h.doc_id, h.score) for h in singles]

"""Tests for the schema graph."""

import pytest

from repro.errors import PlanError
from repro.graph.schema_graph import SchemaGraph

from tests.conftest import build_mini_schema


@pytest.fixture()
def graph():
    return SchemaGraph(build_mini_schema())


class TestStructure:
    def test_all_tables_are_nodes(self, graph):
        assert set(graph.tables) == {"person", "movie", "genre",
                                     "movie_genre", "cast"}

    def test_degree(self, graph):
        assert graph.degree("cast") == 2
        assert graph.degree("genre") == 1

    def test_neighbors_sorted(self, graph):
        assert graph.neighbors("movie") == ["cast", "movie_genre"]

    def test_edges_between(self, graph):
        fks = graph.edges_between("cast", "person")
        assert len(fks) == 1 and fks[0].column == "person_id"
        assert graph.edges_between("person", "genre") == []


class TestPaths:
    def test_direct_path(self, graph):
        assert graph.join_path("cast", "movie") == ["cast", "movie"]

    def test_two_hop_path(self, graph):
        assert graph.join_path("person", "movie") == ["person", "cast", "movie"]

    def test_path_to_self(self, graph):
        assert graph.join_path("movie", "movie") == ["movie"]

    def test_disconnected_raises(self):
        from repro.relational.schema import Column, ColumnType, Schema, TableSchema

        schema = Schema([
            TableSchema("a", [Column("id", ColumnType.INTEGER)]),
            TableSchema("b", [Column("id", ColumnType.INTEGER)]),
        ])
        with pytest.raises(PlanError):
            SchemaGraph(schema).join_path("a", "b")

    def test_join_plan_covers_all(self, graph):
        plan = graph.join_plan(["person", "genre"])
        assert set(plan) >= {"person", "genre"}
        # must pass through the connecting junctions
        assert "cast" in plan and "movie_genre" in plan

    def test_join_plan_empty(self, graph):
        assert graph.join_plan([]) == []

    def test_is_connected(self, graph):
        assert graph.is_connected(["person", "movie"])
        assert graph.is_connected(["movie"])


class TestClassification:
    def test_junction_detection(self, graph):
        assert graph.is_junction("cast")
        assert graph.is_junction("movie_genre")
        assert not graph.is_junction("movie")
        assert not graph.is_junction("genre")

    def test_entity_tables(self, graph):
        entities = graph.entity_tables()
        assert "person" in entities and "movie" in entities
        assert "cast" not in entities

    def test_imdb_junctions(self, imdb_db):
        graph = SchemaGraph(imdb_db.schema)
        for junction in ("cast", "movie_genre", "movie_location",
                         "movie_info", "person_info", "movie_company"):
            assert graph.is_junction(junction), junction
        for entity in ("movie", "person", "award", "company"):
            assert not graph.is_junction(entity), entity

"""Tests for the top-k fast path: bounded heap, snapshots, caching, batch."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.retrieval import Searcher
from repro.ir.scoring import Bm25Scorer, PriorWeightedScorer, TfIdfScorer
from repro.ir.topk import TopKHeap, merge_ranked, topk_scores


def build_index(bodies: dict[str, str], weights: dict[str, float] | None = None):
    index = InvertedIndex(Analyzer(stem=False))
    for doc_id, body in bodies.items():
        index.add(Document.create(
            doc_id, {"body": body},
            {"body": weights[doc_id]} if weights and doc_id in weights else None,
        ))
    return index


class TestTopKHeap:
    def test_keeps_best_k(self):
        heap = TopKHeap(2)
        for doc_id, score in [("a", 1.0), ("b", 5.0), ("c", 3.0), ("d", 4.0)]:
            heap.offer(doc_id, score)
        assert heap.ranked() == [("b", 5.0), ("d", 4.0)]

    def test_tie_break_prefers_smaller_doc_id(self):
        heap = TopKHeap(2)
        for doc_id in ["c", "a", "b"]:
            heap.offer(doc_id, 1.0)
        assert heap.ranked() == [("a", 1.0), ("b", 1.0)]

    def test_worst_tracks_kth_best(self):
        heap = TopKHeap(2)
        heap.offer("a", 3.0)
        heap.offer("b", 1.0)
        assert heap.worst() == (1.0, "b")
        heap.offer("c", 2.0)
        assert heap.worst() == (2.0, "c")

    def test_zero_capacity(self):
        heap = TopKHeap(0)
        heap.offer("a", 1.0)
        assert heap.ranked() == []
        assert heap.full

    def test_worst_on_empty_raises(self):
        with pytest.raises(IndexError):
            TopKHeap(3).worst()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TopKHeap(-1)


class TestMergeRanked:
    """Cross-shard merge of independently ranked lists (disjoint doc_ids)."""

    def test_merges_to_global_topk(self):
        shard_a = [("d1", 5.0), ("d4", 2.0)]
        shard_b = [("d2", 4.0), ("d3", 3.0)]
        assert merge_ranked([shard_a, shard_b], 3) == \
               [("d1", 5.0), ("d2", 4.0), ("d3", 3.0)]

    def test_k_zero(self):
        assert merge_ranked([[("a", 1.0)], [("b", 2.0)]], 0) == []

    def test_k_one(self):
        assert merge_ranked([[("b", 1.0)], [("a", 3.0)], []], 1) == [("a", 3.0)]

    def test_k_one_tie_breaks_on_doc_id(self):
        assert merge_ranked([[("b", 2.0)], [("a", 2.0)]], 1) == [("a", 2.0)]
        assert merge_ranked([[("a", 2.0)], [("b", 2.0)]], 1) == [("a", 2.0)]

    def test_cross_shard_ties_sorted_by_doc_id(self):
        shards = [[("c", 1.0)], [("a", 1.0)], [("b", 1.0)]]
        assert merge_ranked(shards, 2) == [("a", 1.0), ("b", 1.0)]

    def test_empty_inputs(self):
        assert merge_ranked([], 3) == []
        assert merge_ranked([[], []], 3) == []


class TestSnapshot:
    def test_postings_sorted_and_cached(self):
        index = build_index({"b": "star", "a": "star wars"})
        snapshot = index.snapshot()
        postings = snapshot.postings("star")
        assert [p.doc_id for p in postings] == ["a", "b"]
        assert snapshot.postings("star") is postings

    def test_snapshot_cached_until_add(self):
        index = build_index({"a": "star"})
        first = index.snapshot()
        assert index.snapshot() is first
        index.add(Document.create("b", {"body": "wars"}))
        second = index.snapshot()
        assert second is not first
        assert second.version == index.version == first.version + 1

    def test_contribution_bounds(self):
        index = build_index({"a": "star", "b": "star star star"})
        snapshot = index.snapshot()
        scorer = Bm25Scorer()
        cached = snapshot.term_contributions(scorer, "star")
        assert cached.doc_ids == ("a", "b")
        assert cached.bound == max(cached.contributions)
        assert snapshot.term_contributions(scorer, "star") is cached

    def test_equal_parameter_scorers_share_cache(self):
        index = build_index({"a": "star"})
        snapshot = index.snapshot()
        first = snapshot.term_contributions(Bm25Scorer(), "star")
        second = snapshot.term_contributions(Bm25Scorer(), "star")
        assert first is second

    def test_snapshot_is_a_frozen_self_contained_copy(self):
        from repro.errors import IndexError_

        index = build_index({"a": "star"})
        snapshot = index.snapshot()
        index.add(Document.create("b", {"body": "star wars"}))
        # The old snapshot keeps serving exactly the contents it froze —
        # it never mixes in (or even sees) the post-add state.
        assert [p.doc_id for p in snapshot.postings("star")] == ["a"]
        assert snapshot.postings("wars") == ()
        assert snapshot.document_frequency("star") == 1
        assert snapshot.document_count == 1
        assert "b" not in snapshot
        with pytest.raises(IndexError_):
            snapshot.document_length("b")
        # A fresh snapshot reflects the add.
        assert index.snapshot().document_frequency("wars") == 1

    def test_snapshot_serves_without_the_index(self):
        index = build_index({"a": "star wars", "b": "star"})
        snapshot = index.snapshot()
        del index
        searcher = Searcher(snapshot)
        assert [h.doc_id for h in searcher.search("star")] == ["b", "a"]
        assert snapshot.document("a").doc_id == "a"
        assert snapshot.snapshot() is snapshot

    def test_unknown_term_contributions_empty(self):
        index = build_index({"a": "star"})
        cached = index.snapshot().term_contributions(TfIdfScorer(), "zzz")
        assert cached.doc_ids == ()
        assert cached.bound == 0.0


class TestTopKScores:
    def test_matches_exhaustive_order(self):
        index = build_index({"a": "star wars", "b": "star", "c": "wars wars"})
        scorer = Bm25Scorer()
        ranked = topk_scores(index.snapshot(), scorer, ["star", "wars"], 2)
        full = sorted(scorer.scores(index, ["star", "wars"]).items(),
                      key=lambda item: (-item[1], item[0]))
        assert ranked == full[:2]

    def test_limit_zero(self):
        index = build_index({"a": "star"})
        assert topk_scores(index.snapshot(), Bm25Scorer(), ["star"], 0) == []

    def test_early_termination_does_not_lose_late_term_docs(self):
        # "rare" appears only in low-ranked docs and only via the second
        # term; pruning must still admit/score them correctly when the
        # bound allows.
        bodies = {f"d{i}": "common " * (10 - i) for i in range(8)}
        bodies["z1"] = "rare"
        bodies["z2"] = "rare common"
        index = build_index(bodies)
        scorer = Bm25Scorer()
        terms = ["common", "rare"]
        ranked = topk_scores(index.snapshot(), scorer, terms, 3)
        full = sorted(scorer.scores(index, terms).items(),
                      key=lambda item: (-item[1], item[0]))
        assert ranked == full[:3]


class TestSearcherFastPath:
    def test_search_uses_fast_path_and_matches_reference(self):
        index = build_index({"a": "star wars", "b": "star trek", "c": "trek"})
        searcher = Searcher(index)
        fast = searcher.search("star trek", limit=2)
        slow = searcher.search_exhaustive("star trek", limit=2)
        assert [(h.doc_id, h.score, h.rank) for h in fast] == \
               [(h.doc_id, h.score, h.rank) for h in slow]

    def test_unsupported_scorer_falls_back(self):
        class OpaqueScorer(Bm25Scorer):
            def supports_topk(self):
                return False

        index = build_index({"a": "star wars", "b": "star"})
        searcher = Searcher(index, OpaqueScorer())
        reference = Searcher(index).search("star wars", limit=2)
        assert [(h.doc_id, h.score) for h in searcher.search("star wars", limit=2)] == \
               [(h.doc_id, h.score) for h in reference]

    def test_cache_hit_returns_same_results(self):
        index = build_index({"a": "star wars", "b": "star"})
        searcher = Searcher(index)
        first = searcher.search("star", limit=2)
        second = searcher.search("star", limit=2)
        assert [(h.doc_id, h.score) for h in first] == \
               [(h.doc_id, h.score) for h in second]

    def test_cache_invalidated_by_add(self):
        index = build_index({"b": "star"})
        searcher = Searcher(index)
        assert [h.doc_id for h in searcher.search("star")] == ["b"]
        index.add(Document.create("a", {"body": "star star"}))
        assert [h.doc_id for h in searcher.search("star")] == ["a", "b"]

    def test_cache_eviction_respects_size(self):
        index = build_index({"a": "star wars trek ocean"})
        searcher = Searcher(index, cache_size=2)
        for query in ["star", "wars", "trek", "ocean"]:
            searcher.search(query)
        assert len(searcher._cache) == 2

    def test_cache_disabled(self):
        index = build_index({"a": "star"})
        searcher = Searcher(index, cache_size=0)
        searcher.search("star")
        assert searcher._cache == {}

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            Searcher(build_index({"a": "star"}), cache_size=-1)

    def test_prior_weighted_fast_path(self):
        index = build_index({"a": "star wars", "b": "star"})
        scorer = PriorWeightedScorer(Bm25Scorer(), {"b": 9.0})
        searcher = Searcher(index, scorer)
        fast = searcher.search("star", limit=2)
        slow = searcher.search_exhaustive("star", limit=2)
        assert [(h.doc_id, h.score) for h in fast] == \
               [(h.doc_id, h.score) for h in slow]
        assert fast[0].doc_id == "b"  # the prior flips the ranking


class TestSearchMany:
    def test_batch_matches_singles(self):
        index = build_index({"a": "star wars", "b": "star trek", "c": "ocean"})
        searcher = Searcher(index)
        queries = ["star", "ocean", "star", "zzz"]
        batch = searcher.search_many(queries, limit=2)
        assert len(batch) == len(queries)
        for query, hits in zip(queries, batch):
            single = searcher.search(query, limit=2)
            assert [(h.doc_id, h.score) for h in hits] == \
                   [(h.doc_id, h.score) for h in single]
        assert batch[3] == []

    def test_exhaustive_negative_limit_rejected(self):
        searcher = Searcher(build_index({"a": "star"}))
        with pytest.raises(ValueError):
            searcher.search_exhaustive("star", limit=-1)

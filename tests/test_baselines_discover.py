"""Tests for the DISCOVER/DBXplorer-style candidate-network baseline."""

import pytest

from repro.answer import atom
from repro.baselines.discover import DiscoverSearch


@pytest.fixture()
def discover(mini_db):
    return DiscoverSearch(mini_db)


class TestTupleSets:
    def test_per_table_row_sets(self, discover):
        sets = discover._tuple_sets("clooney")
        assert sets == {"person": {0}}

    def test_keyword_across_tables(self, discover):
        sets = discover._tuple_sets("actor")
        assert "cast" in sets and len(sets["cast"]) == 3


class TestCandidateNetworks:
    def test_single_keyword_single_table(self, discover):
        networks = discover._candidate_networks([{"person": {0}}])
        assert networks and networks[0].tables == ("person",)
        assert networks[0].size == 1

    def test_connector_tables_added(self, discover):
        networks = discover._candidate_networks([
            {"person": {0}}, {"movie": {2}},
        ])
        assert networks
        smallest = networks[0]
        assert "cast" in smallest.tables  # the junction connects them
        assert smallest.size == 3

    def test_ordered_smallest_first(self, discover):
        networks = discover._candidate_networks([
            {"person": {0}, "movie": {0}}, {"movie": {2}},
        ])
        sizes = [network.size for network in networks]
        assert sizes == sorted(sizes)

    def test_same_table_keywords_intersect(self, discover):
        networks = discover._candidate_networks([
            {"movie": {0, 1}}, {"movie": {1, 2}},
        ])
        assert networks
        assert networks[0].restriction_for("movie") == frozenset({1})

    def test_empty_intersection_dropped(self, discover):
        networks = discover._candidate_networks([
            {"movie": {0}}, {"movie": {1}},
        ])
        assert networks == []


class TestSearch:
    def test_single_entity_query(self, discover):
        answer = discover.best("clooney")
        assert atom("person", "name", "George Clooney") in answer.atoms
        assert answer.meta("network_size") == 1

    def test_multi_keyword_join(self, discover):
        answer = discover.best("clooney eleven")
        assert atom("person", "name", "George Clooney") in answer.atoms
        assert atom("movie", "title", "Ocean's Eleven") in answer.atoms
        assert answer.meta("network_size") == 3

    def test_and_semantics(self, discover):
        assert discover.search("clooney xyzzy") == []

    def test_empty_query(self, discover):
        assert discover.search("") == []

    def test_smaller_networks_rank_first(self, discover):
        answers = discover.search("actor", limit=5)
        sizes = [a.meta("network_size") for a in answers]
        assert sizes == sorted(sizes)

    def test_deduplication(self, discover):
        answers = discover.search("hanks", limit=5)
        atom_sets = [a.atoms for a in answers]
        assert len(atom_sets) == len(set(atom_sets))

    def test_imdb_scale(self, imdb_db):
        discover = DiscoverSearch(imdb_db)
        answer = discover.best("star wars")
        assert not answer.is_empty
        assert ("movie", "title", "star wars") in answer.atoms

    def test_system_name(self, discover):
        assert discover.best("clooney").system == "discover"

"""Tests for the stopwatch."""

import pytest

from repro.utils.timing import Stopwatch


def test_context_manager_accumulates():
    watch = Stopwatch()
    with watch:
        pass
    with watch:
        pass
    assert watch.elapsed >= 0.0
    assert len(watch.laps) == 2


def test_mean_lap():
    watch = Stopwatch()
    assert watch.mean_lap == 0.0
    with watch:
        pass
    assert watch.mean_lap == watch.elapsed


def test_double_start_raises():
    watch = Stopwatch()
    watch.start()
    with pytest.raises(RuntimeError):
        watch.start()


def test_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()

"""Tests for sharded snapshots and parallel top-k retrieval."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.retrieval import Searcher
from repro.ir.scoring import Bm25Scorer, PriorWeightedScorer, TfIdfScorer
from repro.ir.shard import ShardedTopK, shard_id, shard_snapshot
from repro.ir.topk import topk_scores


def build_index(bodies: dict[str, str]):
    index = InvertedIndex(Analyzer(stem=False))
    for doc_id, body in bodies.items():
        index.add(Document.create(doc_id, {"body": body}))
    return index


BODIES = {f"d{i}": text for i, text in enumerate([
    "star wars cast", "star trek", "ocean wars wars", "star star wars ocean",
    "trek ocean", "wars", "star ocean trek wars", "cast cast star",
])}
QUERIES = (["star", "wars"], ["ocean"], ["trek", "star", "wars"], ["zzz"], [])


@pytest.fixture()
def snapshot():
    return build_index(BODIES).snapshot()


class TestShardSnapshot:
    def test_partition_is_exact_and_stable(self, snapshot):
        shards = shard_snapshot(snapshot, 3)
        assert len(shards) == 3
        seen: dict[str, int] = {}
        for i, shard in enumerate(shards):
            for document in shard.documents():
                assert document.doc_id not in seen
                seen[document.doc_id] = i
                assert shard_id(document.doc_id, 3) == i
        assert set(seen) == set(BODIES)

    def test_shards_carry_global_statistics(self, snapshot):
        for shard in shard_snapshot(snapshot, 3):
            assert shard.document_count == snapshot.document_count
            assert shard.average_document_length == \
                   snapshot.average_document_length
            assert shard.min_document_length == snapshot.min_document_length
            for term in snapshot.terms():
                assert shard.document_frequency(term) == \
                       snapshot.document_frequency(term)

    def test_shard_postings_are_the_partition(self, snapshot):
        shards = shard_snapshot(snapshot, 2)
        for term in snapshot.terms():
            merged = sorted(
                (posting for shard in shards
                 for posting in shard.postings(term)),
                key=lambda posting: posting.doc_id,
            )
            assert merged == list(snapshot.postings(term))

    def test_single_shard_is_the_whole_snapshot(self, snapshot):
        (shard,) = shard_snapshot(snapshot, 1)
        assert len(shard) == len(snapshot)
        assert sorted(shard.terms()) == sorted(snapshot.terms())

    def test_invalid_shard_count(self, snapshot):
        with pytest.raises(ValueError):
            shard_snapshot(snapshot, 0)

    def test_more_shards_than_documents(self, snapshot):
        shards = shard_snapshot(snapshot, 50)
        assert sum(len(shard) for shard in shards) == len(snapshot)


class TestShardedTopK:
    @pytest.mark.parametrize("parallelism", ["serial", "process"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_rank_identical_to_unsharded(self, snapshot, parallelism, shards):
        scorer = Bm25Scorer()
        with ShardedTopK(snapshot, shards, parallelism) as sharded:
            for terms in QUERIES:
                assert sharded.topk(scorer, list(terms), 4) == \
                       topk_scores(snapshot, scorer, list(terms), 4)

    def test_batch_matches_singles(self, snapshot):
        scorer = TfIdfScorer()
        with ShardedTopK(snapshot, 3, "serial") as sharded:
            batch = sharded.topk_many(scorer, [list(q) for q in QUERIES], 3)
            singles = [sharded.topk(scorer, list(q), 3) for q in QUERIES]
        assert batch == singles

    def test_empty_batch(self, snapshot):
        with ShardedTopK(snapshot, 2, "serial") as sharded:
            assert sharded.topk_many(Bm25Scorer(), [], 3) == []

    def test_prior_weighted_scorer(self, snapshot):
        scorer = PriorWeightedScorer(Bm25Scorer(), {"d1": 9.0, "d5": 4.0})
        with ShardedTopK(snapshot, 3, "serial") as sharded:
            assert sharded.topk(scorer, ["star", "wars"], 5) == \
                   topk_scores(snapshot, scorer, ["star", "wars"], 5)

    def test_limit_edges(self, snapshot):
        scorer = Bm25Scorer()
        with ShardedTopK(snapshot, 3, "serial") as sharded:
            assert sharded.topk(scorer, ["star"], 0) == []
            assert sharded.topk(scorer, ["star"], 1) == \
                   topk_scores(snapshot, scorer, ["star"], 1)

    def test_invalid_parallelism(self, snapshot):
        with pytest.raises(ValueError):
            ShardedTopK(snapshot, 2, "fibers")

    def test_thread_mode_rejected_like_any_unknown_mode(self, snapshot):
        # "thread" used to be a supported executor; it is gone — just
        # another unknown mode, with the menu in the error.
        with pytest.raises(ValueError, match="'serial', 'process'"):
            ShardedTopK(snapshot, 2, "thread")

    def test_close_is_idempotent(self, snapshot):
        sharded = ShardedTopK(snapshot, 2, "serial")
        sharded.topk(Bm25Scorer(), ["star"], 2)
        sharded.close()
        sharded.close()

    def test_close_is_idempotent_with_executor(self, snapshot):
        sharded = ShardedTopK(snapshot, 2, "process")
        sharded.topk(Bm25Scorer(), ["star"], 2)
        sharded.close()
        sharded.close()


class TestSearcherSharding:
    @pytest.mark.parametrize("parallelism", ["serial", "process"])
    def test_search_matches_serial_searcher(self, parallelism):
        index = build_index(BODIES)
        serial = Searcher(index)
        with Searcher(index, shards=3, parallelism=parallelism) as sharded:
            for query in ("star wars", "ocean trek", "zzz", "cast"):
                assert [(h.doc_id, h.score, h.rank)
                        for h in sharded.search(query, 4)] == \
                       [(h.doc_id, h.score, h.rank)
                        for h in serial.search(query, 4)]

    def test_search_many_matches_serial_searcher(self):
        index = build_index(BODIES)
        serial = Searcher(index)
        queries = ["star wars", "ocean", "star wars", "", "zzz"]
        with Searcher(index, shards=2) as sharded:
            batch = sharded.search_many(queries, 3)
        expected = serial.search_many(queries, 3)
        assert [[(h.doc_id, h.score) for h in hits] for hits in batch] == \
               [[(h.doc_id, h.score) for h in hits] for hits in expected]

    def test_search_many_survives_mid_batch_cache_eviction(self):
        # Regression: a query cached *before* the batch must not come back
        # empty when the batch's own stores evict its LRU entry.
        index = build_index(BODIES)
        vocabulary = sorted({token for body in BODIES.values()
                             for token in body.split()})
        with Searcher(index, cache_size=2, shards=2) as sharded:
            expected = [(h.doc_id, h.score)
                        for h in Searcher(index).search("star wars", 3)]
            sharded.search("star wars", 3)  # now cached
            batch_queries = ["star wars"] + vocabulary  # evicts it mid-batch
            batch = sharded.search_many(batch_queries, 3)
        assert [(h.doc_id, h.score) for h in batch[0]] == expected

    def test_sharded_search_many_uses_result_cache(self):
        index = build_index(BODIES)
        with Searcher(index, shards=2) as sharded:
            first = sharded.search_many(["star wars"], 3)
            second = sharded.search_many(["star wars"], 3)
        assert [(h.doc_id, h.score) for h in first[0]] == \
               [(h.doc_id, h.score) for h in second[0]]
        assert len(sharded._cache) == 1

    def test_shards_rebuilt_after_add(self):
        index = build_index({"a": "star"})
        with Searcher(index, shards=2) as sharded:
            assert [h.doc_id for h in sharded.search("star")] == ["a"]
            index.add(Document.create("b", {"body": "star star"}))
            assert [h.doc_id for h in sharded.search("star")] == ["b", "a"]

    def test_unsupported_scorer_falls_back_to_exhaustive(self):
        class OpaqueScorer(Bm25Scorer):
            def supports_topk(self):
                return False

        index = build_index(BODIES)
        reference = Searcher(index).search_many(["star wars", "ocean"], 3)
        with Searcher(index, OpaqueScorer(), shards=3) as sharded:
            batch = sharded.search_many(["star wars", "ocean"], 3)
        assert [[(h.doc_id, h.score) for h in hits] for hits in batch] == \
               [[(h.doc_id, h.score) for h in hits] for hits in reference]

    def test_scoring_view_scores_identically_without_documents(self, snapshot):
        from repro.errors import IndexError_

        view = snapshot.scoring_view()
        assert len(view) == 0
        with pytest.raises(IndexError_):
            view.document("d0")
        scorer = Bm25Scorer()
        assert topk_scores(view, scorer, ["star", "wars"], 4) == \
               topk_scores(snapshot, scorer, ["star", "wars"], 4)

    def test_prior_scorer_cache_key_stable_across_pickle(self):
        # Process-mode workers unpickle the scorer per call; the cache key
        # must survive the round trip or worker contribution caches never
        # warm up (and grow without bound).
        import pickle

        scorer = PriorWeightedScorer(Bm25Scorer(), {"d1": 2.0}, default=0.5)
        clone = pickle.loads(pickle.dumps(scorer))
        assert clone.cache_key() == scorer.cache_key()
        assert PriorWeightedScorer(Bm25Scorer(), {"d1": 2.0},
                                   default=0.5).cache_key() == \
               scorer.cache_key()
        assert PriorWeightedScorer(Bm25Scorer(), {"d1": 3.0},
                                   default=0.5).cache_key() != \
               scorer.cache_key()

    def test_scorer_subclass_never_shares_cache_with_base(self, snapshot):
        # A subclass that changes the scoring math must not be served the
        # base class's cached contributions (keys embed the class).
        class HalvedBm25(Bm25Scorer):
            def _contribution(self, idf, tf, length, avg_len):
                return super()._contribution(idf, tf, length, avg_len) / 2.0

        base, halved = Bm25Scorer(), HalvedBm25()
        assert base.cache_key() != halved.cache_key()
        full = snapshot.term_contributions(base, "star")
        half = snapshot.term_contributions(halved, "star")
        assert half.contributions == tuple(c / 2.0 for c in full.contributions)

    def test_default_cache_key_pins_the_scorer(self):
        # The fallback key holds the instance (not id()), so a recycled
        # address can never alias two scorers' cache entries; it is also
        # stable across calls.
        from repro.ir.scoring import Scorer

        scorer = Scorer()
        key = scorer.cache_key()
        assert key[-1].scorer is scorer
        assert scorer.cache_key() == key
        assert Scorer().cache_key() != key

    def test_default_cache_key_works_for_unhashable_scorers(self):
        # An __eq__-defining (hence unhashable) dataclass scorer must
        # still get a usable default key.
        from dataclasses import dataclass

        from repro.ir.scoring import Scorer

        @dataclass(frozen=True)
        class FancyScorer(Scorer):
            boost: float = 2.0

        scorer = FancyScorer()
        key = scorer.cache_key()
        assert scorer.cache_key() == key
        hash(key)  # usable as a dict key
        assert FancyScorer().cache_key() != key  # per-instance, by design

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            Searcher(build_index({"a": "star"}), shards=-1)

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            Searcher(build_index({"a": "star"}), parallelism="bogus")


class TestTermBloomFilter:
    def test_no_false_negatives(self, snapshot):
        from repro.ir.shard import TermBloomFilter

        terms = list(snapshot.terms())
        bloom = TermBloomFilter.build(terms)
        assert all(term in bloom for term in terms)

    def test_mostly_rejects_absent_terms(self):
        from repro.ir.shard import TermBloomFilter

        bloom = TermBloomFilter.build([f"term{i}" for i in range(500)],
                                      false_positive_rate=0.01)
        false_positives = sum(1 for i in range(1000)
                              if f"absent{i}" in bloom)
        assert false_positives < 50  # ~1% expected, generous margin

    def test_empty_vocabulary_matches_nothing(self):
        from repro.ir.shard import TermBloomFilter

        bloom = TermBloomFilter.build([])
        assert "anything" not in bloom
        assert not bloom.might_match_any(["a", "b"])

    def test_dict_round_trip(self):
        from repro.ir.shard import TermBloomFilter

        bloom = TermBloomFilter.build(["star", "wars", "ocean"])
        clone = TermBloomFilter.from_dict(bloom.to_dict())
        assert clone.bits == bloom.bits
        assert clone.hashes == bloom.hashes
        for term in ("star", "wars", "ocean", "trek", "zzz"):
            assert (term in clone) == (term in bloom)

    def test_from_dict_rejects_garbage(self):
        from repro.ir.shard import TermBloomFilter

        with pytest.raises(ValueError):
            TermBloomFilter.from_dict({"bits": 8})
        with pytest.raises(ValueError):
            TermBloomFilter.from_dict({"bits": 64, "hashes": 2, "data": "AA"})

    def test_invalid_sizes(self):
        from repro.ir.shard import TermBloomFilter

        with pytest.raises(ValueError):
            TermBloomFilter(0, 1)
        with pytest.raises(ValueError):
            TermBloomFilter(8, 0)


class TestBloomRouting:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_routed_rank_identical_to_broadcast(self, snapshot, shards):
        scorer = Bm25Scorer()
        with ShardedTopK(snapshot, shards, "serial") as routed, \
                ShardedTopK(snapshot, shards, "serial",
                            route=False) as broadcast:
            term_lists = [list(q) for q in QUERIES]
            assert routed.topk_many(scorer, term_lists, 4) == \
                   broadcast.topk_many(scorer, term_lists, 4)

    def test_routing_skips_nonmatching_shards(self, snapshot):
        # A term held by exactly one document can match at most one shard;
        # with several shards the other tasks must be skipped.
        scorer = Bm25Scorer()
        with ShardedTopK(snapshot, 4, "serial") as sharded:
            ranked = sharded.topk(scorer, ["cast"], 4)  # df("cast") == 2
            assert ranked
            stats = sharded.routing_stats
            assert stats["batches"] == 1
            assert stats["shard_tasks_skipped"] >= 1
            assert stats["query_pairs_skipped"] >= 1

    def test_unroutable_query_returns_empty(self, snapshot):
        with ShardedTopK(snapshot, 3, "serial") as sharded:
            assert sharded.topk(Bm25Scorer(), ["zzz"], 4) == []
            assert sharded.topk(Bm25Scorer(), [], 4) == []
            assert sharded.routing_stats["shard_tasks_skipped"] == 6

    @pytest.mark.parametrize("parallelism", ["serial", "process"])
    def test_routing_identical_across_executors(self, snapshot, parallelism):
        scorer = Bm25Scorer()
        expected = [topk_scores(snapshot, scorer, list(q), 4)
                    for q in QUERIES]
        with ShardedTopK(snapshot, 3, parallelism) as sharded:
            assert sharded.topk_many(scorer, [list(q) for q in QUERIES],
                                     4) == expected


class TestFromShards:
    def test_prebuilt_shards_rank_identical(self, snapshot):
        shards = shard_snapshot(snapshot, 3)
        scorer = Bm25Scorer()
        with ShardedTopK.from_shards(shards, "serial") as sharded:
            for terms in QUERIES:
                assert sharded.topk(scorer, list(terms), 4) == \
                       topk_scores(snapshot, scorer, list(terms), 4)

    def test_prebuilt_blooms_accepted(self, snapshot):
        from repro.ir.shard import TermBloomFilter

        shards = shard_snapshot(snapshot, 2)
        blooms = [TermBloomFilter.build(shard.terms()) for shard in shards]
        with ShardedTopK.from_shards(shards, "serial",
                                     blooms=blooms) as sharded:
            assert sharded.topk(Bm25Scorer(), ["star"], 3) == \
                   topk_scores(snapshot, Bm25Scorer(), ["star"], 3)

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError):
            ShardedTopK.from_shards([])

    def test_version_mismatch_rejected(self):
        a = build_index({"a": "star"}).snapshot()
        index_b = build_index({"b": "wars"})
        index_b.add(Document.create("c", {"body": "trek"}))
        b = index_b.snapshot()
        with pytest.raises(ValueError, match="version"):
            ShardedTopK.from_shards([a, b])

    def test_wrong_bloom_count_rejected(self, snapshot):
        from repro.ir.shard import TermBloomFilter

        shards = shard_snapshot(snapshot, 3)
        with pytest.raises(ValueError, match="bloom"):
            ShardedTopK.from_shards(shards,
                                    blooms=[TermBloomFilter.build([])])


class TestSharedShardOwnership:
    def test_searcher_close_leaves_shared_shards_running(self, snapshot):
        # Regression: a searcher handed a shared ShardedTopK (e.g. the
        # collection's restored partitions) must not shut it down on
        # close/eviction — only shard sets it built itself are its own.
        shared = ShardedTopK.from_shards(shard_snapshot(snapshot, 2),
                                         "serial")
        first = Searcher(snapshot, sharded=shared)
        expected = first.search("star wars", 3)
        first.close()
        second = Searcher(snapshot, sharded=shared)
        hits = second.search("star wars", 3)
        assert [(h.doc_id, h.score) for h in hits] == \
               [(h.doc_id, h.score) for h in expected]
        # The shared set is still the one serving (not silently replaced
        # by an in-memory re-partition).
        assert second._sharded is shared
        shared.close()

    def test_searcher_closes_shards_it_built(self):
        index = build_index(BODIES)
        searcher = Searcher(index, shards=2)
        searcher.search("star", 2)
        assert searcher._sharded is not None
        searcher.close()
        assert searcher._sharded is None

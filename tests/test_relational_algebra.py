"""Tests for plan operators and the executor."""

import pytest

from repro.errors import PlanError
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    Scan,
    Sort,
    execute,
)
from repro.relational.expr import ColumnRef, Comparison, Literal, Param


def rows(plan, db, params=None):
    return list(execute(plan, db, params))


class TestScan:
    def test_qualifies_columns(self, mini_db):
        result = rows(Scan("person"), mini_db)
        assert len(result) == 3
        assert "person.name" in result[0]

    def test_alias_prefix(self, mini_db):
        result = rows(Scan("person", alias="p"), mini_db)
        assert "p.name" in result[0]
        assert "person.name" not in result[0]


class TestFilter:
    def test_predicate(self, mini_db):
        plan = Filter(Scan("movie"),
                      Comparison(">", ColumnRef("movie", "year"), Literal(1990)))
        assert {r["movie.title"] for r in rows(plan, mini_db)} == \
               {"Cast Away", "Ocean's Eleven"}

    def test_param_binding(self, mini_db):
        plan = Filter(Scan("movie"),
                      Comparison("=", ColumnRef("movie", "title"), Param("t")))
        result = rows(plan, mini_db, {"t": "star wars"})
        assert len(result) == 1 and result[0]["movie.year"] == 1977


class TestProject:
    def test_keeps_columns(self, mini_db):
        plan = Project(Scan("movie"), ("movie.title",))
        result = rows(plan, mini_db)
        assert all(set(r) == {"movie.title"} for r in result)

    def test_renames(self, mini_db):
        plan = Project(Scan("movie"), (), (("name", "movie.title"),))
        assert rows(plan, mini_db)[0] == {"name": "Star Wars"}

    def test_missing_column_raises(self, mini_db):
        plan = Project(Scan("movie"), ("movie.nope",))
        with pytest.raises(PlanError):
            rows(plan, mini_db)


class TestHashJoin:
    def test_equi_join(self, mini_db):
        plan = HashJoin(Scan("cast"), Scan("person"),
                        "cast.person_id", "person.id")
        result = rows(plan, mini_db)
        assert len(result) == 4
        assert all("person.name" in r and "cast.role" in r for r in result)

    def test_three_way(self, mini_db):
        plan = HashJoin(
            HashJoin(Scan("cast"), Scan("person"), "cast.person_id", "person.id"),
            Scan("movie"), "cast.movie_id", "movie.id",
        )
        result = rows(plan, mini_db)
        pairs = {(r["person.name"], r["movie.title"]) for r in result}
        assert ("Tom Hanks", "Cast Away") in pairs
        assert ("George Clooney", "Ocean's Eleven") in pairs

    def test_null_keys_do_not_join(self, mini_db):
        # Insert a cast row via a fresh db is complex; use join on a column
        # guaranteed non-null and verify count stability instead.
        plan = HashJoin(Scan("movie_genre"), Scan("genre"),
                        "movie_genre.genre_id", "genre.id")
        assert len(rows(plan, mini_db)) == 3

    def test_text_keys_case_insensitive(self, mini_db):
        # Join movie to itself on title via differently-cased key copies.
        plan = HashJoin(Scan("movie", alias="a"), Scan("movie", alias="b"),
                        "a.title", "b.title")
        assert len(rows(plan, mini_db)) == 3


class TestNestedLoop:
    def test_theta_join(self, mini_db):
        plan = NestedLoopJoin(
            Scan("movie", alias="a"), Scan("movie", alias="b"),
            Comparison("<", ColumnRef("a", "year"), ColumnRef("b", "year")),
        )
        result = rows(plan, mini_db)
        assert all(r["a.year"] < r["b.year"] for r in result)
        assert len(result) == 3  # 1977<2000, 1977<2001, 2000<2001


class TestAggregate:
    def test_count_star_global(self, mini_db):
        plan = Aggregate(Scan("movie"), (), (AggregateSpec("count", None, "n"),))
        assert rows(plan, mini_db) == [{"n": 3}]

    def test_count_star_empty_input(self, mini_db):
        empty = Filter(Scan("movie"),
                       Comparison("=", ColumnRef("movie", "year"), Literal(1900)))
        plan = Aggregate(empty, (), (AggregateSpec("count", None, "n"),))
        assert rows(plan, mini_db) == [{"n": 0}]

    def test_group_by(self, mini_db):
        plan = Aggregate(Scan("cast"), ("cast.movie_id",),
                         (AggregateSpec("count", None, "n"),))
        counts = {r["cast.movie_id"]: r["n"] for r in rows(plan, mini_db)}
        assert counts == {1: 1, 2: 1, 3: 2}

    def test_min_max_avg_sum(self, mini_db):
        plan = Aggregate(Scan("movie"), (), (
            AggregateSpec("min", "movie.year", "lo"),
            AggregateSpec("max", "movie.year", "hi"),
            AggregateSpec("avg", "movie.year", "mean"),
            AggregateSpec("sum", "movie.year", "total"),
        ))
        result = rows(plan, mini_db)[0]
        assert result["lo"] == 1977 and result["hi"] == 2001
        assert result["total"] == 1977 + 2000 + 2001
        assert abs(result["mean"] - result["total"] / 3) < 1e-9

    def test_aggregate_over_all_nulls_is_none(self, mini_db):
        empty = Filter(Scan("movie"),
                       Comparison("=", ColumnRef("movie", "year"), Literal(1900)))
        plan = Aggregate(empty, (), (AggregateSpec("max", "movie.year", "m"),))
        assert rows(plan, mini_db) == [{"m": None}]

    def test_bad_function_rejected(self):
        with pytest.raises(PlanError):
            AggregateSpec("median", "a.b", "out")

    def test_non_count_requires_input(self):
        with pytest.raises(PlanError):
            AggregateSpec("sum", None, "out")


class TestSortLimitDistinct:
    def test_sort_ascending(self, mini_db):
        plan = Sort(Scan("movie"), ("movie.year",))
        years = [r["movie.year"] for r in rows(plan, mini_db)]
        assert years == sorted(years)

    def test_sort_descending(self, mini_db):
        plan = Sort(Scan("movie"), ("movie.rating",), descending=True)
        ratings = [r["movie.rating"] for r in rows(plan, mini_db)]
        assert ratings == sorted(ratings, reverse=True)

    def test_sort_mixed_types_no_error(self, mini_db):
        # Nulls sort first by design; must not raise TypeError.
        plan = Sort(Scan("cast"), ("cast.role",))
        rows(plan, mini_db)

    def test_limit(self, mini_db):
        plan = Limit(Scan("movie"), 2)
        assert len(rows(plan, mini_db)) == 2

    def test_limit_zero(self, mini_db):
        assert rows(Limit(Scan("movie"), 0), mini_db) == []

    def test_negative_limit_rejected(self, mini_db):
        with pytest.raises(PlanError):
            Limit(Scan("movie"), -1)

    def test_distinct(self, mini_db):
        plan = Distinct(Project(Scan("cast"), ("cast.role",)))
        roles = [r["cast.role"] for r in rows(plan, mini_db)]
        assert sorted(roles) == ["actor", "actress"]


class TestOutputColumns:
    def test_scan_output(self, mini_db):
        assert Scan("person").output_columns(mini_db) == \
               ["person.id", "person.name", "person.birth_year"]

    def test_join_concatenates(self, mini_db):
        plan = HashJoin(Scan("cast"), Scan("person"),
                        "cast.person_id", "person.id")
        columns = plan.output_columns(mini_db)
        assert "cast.role" in columns and "person.name" in columns

"""Smoke tests: every example script runs end to end and prints what its
docstring promises.  Keeps the examples from rotting as the API evolves."""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "[movie.title] cast" in out
    assert "movie_full_credits" in out
    assert "<cast movie=" in out


def test_derive_qunits(capsys):
    out = run_example("derive_qunits", capsys)
    assert "expert (manual" in out
    assert "schema + data" in out
    assert "query-log rollup" in out
    assert "external evidence" in out
    assert "george clooney movies" in out


def test_querylog_analysis(capsys):
    out = run_example("querylog_analysis", capsys)
    assert "single entity" in out
    assert "movie querylog benchmark" in out


def test_qunit_evolution(capsys):
    out = run_example("qunit_evolution", capsys)
    assert "epoch 1" in out
    assert "utility trajectories" in out


def test_custom_qunits(capsys):
    out = run_example("custom_qunits", capsys)
    assert "validation: clean" in out
    assert "seventies_chart" in out


@pytest.mark.slow
def test_full_evaluation(capsys):
    out = run_example("full_evaluation", capsys)
    assert "Figure 3" in out
    assert "theoretical-max" in out
    assert "Survey Options" in out

"""Tests for ranked retrieval."""

import pytest

from repro.ir.analysis import Analyzer
from repro.ir.documents import Document
from repro.ir.index import InvertedIndex
from repro.ir.retrieval import Searcher


@pytest.fixture()
def searcher():
    index = InvertedIndex(Analyzer(stem=False))
    index.add(Document.create("sw", {"title": "star wars",
                                     "body": "luke skywalker han solo"},
                              {"title": 3.0}))
    index.add(Document.create("ca", {"title": "cast away",
                                     "body": "tom hanks island"},
                              {"title": 3.0}))
    index.add(Document.create("oe", {"title": "oceans eleven",
                                     "body": "george clooney heist vegas"},
                              {"title": 3.0}))
    return Searcher(index)


class TestSearch:
    def test_best_hit(self, searcher):
        best = searcher.best("star wars")
        assert best is not None and best.doc_id == "sw"

    def test_ranks_are_sequential(self, searcher):
        hits = searcher.search("star wars tom hanks")
        assert [h.rank for h in hits] == list(range(len(hits)))

    def test_scores_descending(self, searcher):
        hits = searcher.search("star wars island")
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_limit_respected(self, searcher):
        assert len(searcher.search("star island heist", limit=2)) == 2

    def test_limit_zero(self, searcher):
        assert searcher.search("star", limit=0) == []

    def test_negative_limit_rejected(self, searcher):
        with pytest.raises(ValueError):
            searcher.search("star", limit=-1)

    def test_no_match_returns_empty(self, searcher):
        assert searcher.search("zzzz qqqq") == []
        assert searcher.best("zzzz") is None

    def test_empty_query(self, searcher):
        assert searcher.search("") == []

    def test_stopword_only_query(self):
        index = InvertedIndex()  # default analyzer removes stopwords
        index.add(Document.create("d", {"body": "content"}))
        assert Searcher(index).search("the of and") == []

    def test_deterministic_tie_break(self):
        index = InvertedIndex(Analyzer(stem=False))
        index.add(Document.create("b", {"body": "same text"}))
        index.add(Document.create("a", {"body": "same text"}))
        hits = Searcher(index).search("same")
        assert [h.doc_id for h in hits] == ["a", "b"]

    def test_title_weight_beats_body(self, searcher):
        # "cast" appears in ca's title; a body-only match would lose.
        hits = searcher.search("cast")
        assert hits[0].doc_id == "ca"

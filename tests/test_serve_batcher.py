"""Unit tests for the serving front end's batching and admission
primitives (``repro.serve.batcher``): micro-batch close conditions,
queue backpressure, graceful shutdown ordering, and the token-bucket
quotas — all against a fake runner, no engine involved."""

import asyncio
import threading

import pytest

from repro.serve.api import SearchRequest, SearchResponse
from repro.serve.batcher import (
    ClientQuotas,
    MicroBatcher,
    ServerClosed,
    ServerOverloaded,
    TokenBucket,
)


def echo_runner(requests):
    """The simplest valid runner: one empty response per request."""
    return [SearchResponse(query=request.query, answers=())
            for request in requests]


class _BlockingRunner:
    """A runner that parks in the worker thread until released, so
    tests can pile requests up behind an in-flight batch.  ``entered``
    is set the moment the first batch reaches the runner — the signal
    the tests poll for instead of sleeping a fixed interval."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()
        self.calls = []

    def __call__(self, requests):
        self.entered.set()
        self.release.wait(timeout=10)
        self.calls.append([request.query for request in requests])
        return echo_runner(requests)


async def _wait_until(condition, timeout=5.0):
    """Poll ``condition()`` until true (deflaked alternative to fixed
    sleeps: waits exactly as long as needed, fails loudly on hangs)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not condition():
        if loop.time() > deadline:
            raise AssertionError(
                f"condition {condition!r} not met within {timeout}s")
        await asyncio.sleep(0.005)


class TestMicroBatcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(echo_runner, window=-0.001)
        with pytest.raises(ValueError):
            MicroBatcher(echo_runner, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(echo_runner, queue_limit=0)

    def test_concurrent_requests_meet_in_one_batch(self):
        """Requests submitted within the window drain as one batch."""

        async def main():
            batcher = MicroBatcher(echo_runner, window=0.2, max_batch=10)
            batcher.start()
            responses = await asyncio.gather(*(
                batcher.submit(SearchRequest(query=f"q{i}"))
                for i in range(3)))
            await batcher.close()
            return batcher, responses

        batcher, responses = asyncio.run(main())
        assert [response.query for response in responses] \
            == ["q0", "q1", "q2"]
        assert batcher.batches == 1
        assert batcher.served == 3

    def test_size_threshold_closes_before_window(self):
        """A full batch runs immediately — the (long) window is the
        maximum added latency, never a mandatory wait."""

        async def main():
            batcher = MicroBatcher(echo_runner, window=30.0, max_batch=2)
            batcher.start()
            loop = asyncio.get_running_loop()
            started = loop.time()
            await asyncio.gather(
                batcher.submit(SearchRequest(query="a")),
                batcher.submit(SearchRequest(query="b")))
            elapsed = loop.time() - started
            await batcher.close()
            return batcher, elapsed

        batcher, elapsed = asyncio.run(main())
        assert batcher.batches == 1 and batcher.served == 2
        assert elapsed < 5.0  # nowhere near the 30s window

    def test_window_expiry_closes_partial_batch(self):
        """A lone request is served once the window elapses."""

        async def main():
            batcher = MicroBatcher(echo_runner, window=0.01, max_batch=50)
            batcher.start()
            response = await batcher.submit(SearchRequest(query="solo"))
            await batcher.close()
            return batcher, response

        batcher, response = asyncio.run(main())
        assert response.query == "solo"
        assert batcher.batches == 1 and batcher.served == 1

    def test_queue_overflow_fails_fast(self):
        """Requests beyond queue_limit get ServerOverloaded, and the
        queued ones still complete once the runner unblocks."""
        runner = _BlockingRunner()

        async def main():
            batcher = MicroBatcher(runner, window=0.0, max_batch=1,
                                   queue_limit=2)
            batcher.start()
            # Let the drainer pull the first request into the in-flight
            # (blocked) batch, then fill the queue behind it.
            pending = [asyncio.ensure_future(
                batcher.submit(SearchRequest(query="q0")))]
            await _wait_until(lambda: runner.entered.is_set()
                              and batcher._queue.qsize() == 0)
            pending += [asyncio.ensure_future(
                batcher.submit(SearchRequest(query=f"q{i}")))
                for i in (1, 2)]
            await _wait_until(lambda: batcher._queue.qsize() == 2)
            with pytest.raises(ServerOverloaded) as excinfo:
                await batcher.submit(SearchRequest(query="overflow"))
            assert excinfo.value.retry_after > 0
            runner.release.set()
            responses = await asyncio.gather(*pending)
            await batcher.close()
            return batcher, responses

        batcher, responses = asyncio.run(main())
        assert len(responses) == 3
        assert batcher.served == 3

    def test_close_drains_backlog_then_refuses(self):
        """close() serves every accepted request (the stop sentinel
        queues behind the backlog) and later submits get ServerClosed."""
        runner = _BlockingRunner()

        async def main():
            batcher = MicroBatcher(runner, window=0.0, max_batch=1,
                                   queue_limit=8)
            batcher.start()
            pending = [asyncio.ensure_future(
                batcher.submit(SearchRequest(query=f"q{i}")))
                for i in range(3)]
            await _wait_until(lambda: runner.entered.is_set()
                              and batcher._queue.qsize() == 2)
            closer = asyncio.ensure_future(batcher.close())
            runner.release.set()
            responses = await asyncio.gather(*pending)
            await closer
            with pytest.raises(ServerClosed):
                await batcher.submit(SearchRequest(query="late"))
            return batcher, responses

        batcher, responses = asyncio.run(main())
        assert [response.query for response in responses] \
            == ["q0", "q1", "q2"]
        assert batcher.served == 3

    def test_request_timeout_is_not_served_later(self):
        """A request whose timeout elapses while queued raises, and the
        drainer skips its cancelled future instead of answering it."""
        runner = _BlockingRunner()

        async def main():
            batcher = MicroBatcher(runner, window=0.0, max_batch=1,
                                   queue_limit=8)
            batcher.start()
            first = asyncio.ensure_future(
                batcher.submit(SearchRequest(query="inflight")))
            await _wait_until(lambda: runner.entered.is_set()
                              and batcher._queue.qsize() == 0)
            with pytest.raises(asyncio.TimeoutError):
                await batcher.submit(
                    SearchRequest(query="hasty", timeout=0.01))
            runner.release.set()
            await first
            await batcher.close()
            return batcher

        batcher = asyncio.run(main())
        # Only the in-flight request was served; the timed-out one's
        # batch found a cancelled future and ran nothing.
        assert batcher.served == 1
        assert ["inflight"] in runner.calls
        assert ["hasty"] not in runner.calls

    def test_runner_failure_propagates_to_every_waiter(self):
        def broken(requests):
            raise RuntimeError("engine exploded")

        async def main():
            batcher = MicroBatcher(broken, window=0.05, max_batch=4)
            batcher.start()
            results = await asyncio.gather(
                batcher.submit(SearchRequest(query="a")),
                batcher.submit(SearchRequest(query="b")),
                return_exceptions=True)
            await batcher.close()
            return results

        results = asyncio.run(main())
        assert all(isinstance(result, RuntimeError) for result in results)


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=5)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)

    def test_burst_then_deny_with_retry_after(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3, clock=lambda: now[0])
        assert [bucket.try_take() for _ in range(3)] == [0.0, 0.0, 0.0]
        # Empty: one token refills in 1/rate = 0.5s.
        assert bucket.try_take() == pytest.approx(0.5)

    def test_refill_is_capped_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: now[0])
        for _ in range(2):
            bucket.try_take()
        now[0] = 100.0  # a long idle refills to burst, not to 100
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == 0.0
        assert bucket.try_take() > 0.0


class TestClientQuotas:
    def test_clients_get_independent_buckets(self):
        now = [0.0]
        quotas = ClientQuotas(rate=1.0, burst=1, clock=lambda: now[0])
        assert quotas.try_admit("alice") == 0.0
        assert quotas.try_admit("alice") > 0.0  # alice is out
        assert quotas.try_admit("bob") == 0.0  # bob is unaffected
        assert quotas.rejections == 1

    def test_anonymous_requests_share_one_bucket(self):
        now = [0.0]
        quotas = ClientQuotas(rate=1.0, burst=1, clock=lambda: now[0])
        assert quotas.try_admit(None) == 0.0
        assert quotas.try_admit(None) > 0.0  # no dodging by omitting id

    def test_bucket_table_is_lru_bounded(self):
        now = [0.0]
        quotas = ClientQuotas(rate=1.0, burst=1, clock=lambda: now[0])
        quotas.MAX_CLIENTS = 2
        quotas.try_admit("a")
        quotas.try_admit("b")
        quotas.try_admit("c")  # evicts "a"
        assert len(quotas._buckets) == 2
        # "a" returns with a fresh (full) bucket: admitted again.
        assert quotas.try_admit("a") == 0.0

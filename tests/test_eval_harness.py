"""Tests for the Figure 3 experiment harness (small-scale)."""

import pytest

from repro.eval.harness import THEORETICAL_MAX, ResultQualityExperiment


@pytest.fixture(scope="module")
def experiment():
    exp = ResultQualityExperiment(scale=0.15, seed=7, n_raters=8,
                                  n_queries=12, max_instances=60)
    exp.setup()
    return exp


@pytest.fixture(scope="module")
def report(experiment):
    return experiment.run()


class TestSetup:
    def test_four_qunit_collections(self, experiment):
        assert set(experiment.collections) == {
            "expert", "schema_data", "query_log", "external", "forms",
        }

    def test_systems_under_test(self, experiment):
        systems = experiment.systems()
        assert {"banks", "discover", "objectrank", "xml-lca", "xml-mlca",
                "qunits-expert", "qunits-forms"} <= set(systems)

    def test_workload_size(self, experiment):
        assert len(experiment.workload) == 12

    def test_setup_idempotent(self, experiment):
        database = experiment.database
        experiment.setup()
        assert experiment.database is database


class TestReport:
    def test_all_systems_scored(self, experiment, report):
        scored = {score.system for score in report.scores}
        assert scored == set(experiment.systems()) | {THEORETICAL_MAX}

    def test_scores_in_range(self, report):
        for score in report.scores:
            assert 0.0 <= score.mean_score <= 1.0
            assert len(score.per_query) == len(report.queries)

    def test_theoretical_max_is_one(self, report):
        assert report.mean_of(THEORETICAL_MAX) == 1.0

    def test_figure3_ordering(self, report):
        """The paper's headline: qunits clearly outperform existing methods,
        expert ("Human") qunits best of all, below the theoretical max."""
        baselines = [report.mean_of(name)
                     for name in ("banks", "xml-lca", "xml-mlca")]
        derived = [report.mean_of(name)
                   for name in ("qunits-schema_data", "qunits-query_log",
                                "qunits-external")]
        expert = report.mean_of("qunits-expert")
        assert max(baselines) < min(derived)
        assert expert >= max(derived)
        assert expert < 1.0

    def test_agreement_statistic(self, report):
        assert 0.0 <= report.high_agreement_fraction <= 1.0
        assert len(report.agreement_per_query) == len(report.queries)

    def test_render(self, report):
        text = report.render()
        assert "Figure 3" in text
        assert "banks" in text and "theoretical-max" in text
        table = report.render_table()
        assert "qunits-expert" in table

    def test_unknown_system_raises(self, report):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            report.mean_of("nonexistent")

    def test_deterministic(self, experiment):
        again = experiment.run()
        first = {s.system: s.mean_score for s in experiment.run().scores}
        second = {s.system: s.mean_score for s in again.scores}
        assert first == second

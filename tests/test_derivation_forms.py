"""Tests for forms-based qunit derivation."""

import pytest

from repro.core.derivation.forms import FormBasedDeriver
from repro.errors import DerivationError


@pytest.fixture(scope="module")
def deriver(imdb_db):
    return FormBasedDeriver(imdb_db, k1=3, relations_per_entity=3)


class TestFormGeneration:
    def test_detail_form_per_anchor(self, deriver):
        forms = deriver.generate_forms()
        names = {form.name for form in forms}
        assert "person_detail_form" in names
        assert "movie_detail_form" in names

    def test_relation_forms(self, deriver):
        forms = deriver.generate_forms()
        relation_forms = [f for f in forms if f.result_tables]
        assert any(f.entity == "person" and "movie" in f.result_tables
                   for f in relation_forms)

    def test_input_is_searchable(self, deriver, imdb_db):
        for form in deriver.generate_forms():
            column = imdb_db.schema.table(form.entity).column(form.input_column)
            assert column.searchable

    def test_describe(self, deriver):
        form = deriver.generate_forms()[0]
        assert form.entity in form.describe()

    def test_validation(self, imdb_db):
        with pytest.raises(DerivationError):
            FormBasedDeriver(imdb_db, k1=0)
        with pytest.raises(DerivationError):
            FormBasedDeriver(imdb_db, relations_per_entity=-1)


class TestDerivedQunits:
    def test_one_qunit_per_form(self, deriver):
        forms = deriver.generate_forms()
        definitions = deriver.derive()
        assert len(definitions) == len(forms)

    def test_source_marked(self, deriver):
        assert all(d.source == "forms" for d in deriver.derive())

    def test_narrow_footprints(self, deriver):
        # The distinguishing property vs schema+data: one relation per
        # qunit, not a star join of all neighbors.
        for definition in deriver.derive():
            non_junction = [
                table for table in definition.tables()
                if not deriver._schema_data.queriability
                    .schema_graph.is_junction(table)
            ]
            assert len(non_junction) <= 2

    def test_definitions_materialize(self, deriver, imdb_db):
        for definition in deriver.derive()[:6]:
            bindings = definition.bindings(imdb_db, limit=1)
            assert bindings
            definition.materialize(imdb_db, bindings[0])

    def test_engine_integration(self, deriver, imdb_db):
        from repro.core import QunitCollection
        from repro.core.search import QunitSearchEngine

        engine = QunitSearchEngine(
            QunitCollection(imdb_db, deriver.derive(),
                            max_instances_per_definition=40),
            flavor="forms")
        answer = engine.best("tom hanks movies")
        assert not answer.is_empty
        assert ("movie", "title", "cast away") in answer.atoms

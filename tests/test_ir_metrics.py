"""Tests for retrieval and agreement metrics."""

import math

import pytest

from repro.ir.metrics import (
    average_precision,
    dcg,
    majority_agreement,
    mean,
    mean_reciprocal_rank,
    ndcg,
    precision_at_k,
    recall_at_k,
)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty(self):
        assert mean([]) == 0.0


class TestPrecisionRecall:
    def test_precision_at_k(self):
        ranked = ["a", "b", "c", "d"]
        assert precision_at_k(ranked, {"a", "c"}, 2) == 0.5
        assert precision_at_k(ranked, {"a", "c"}, 4) == 0.5
        assert precision_at_k(ranked, set(), 4) == 0.0

    def test_precision_short_ranking(self):
        assert precision_at_k(["a"], {"a"}, 3) == pytest.approx(1 / 3)

    def test_recall_at_k(self):
        ranked = ["a", "b", "c"]
        assert recall_at_k(ranked, {"a", "z"}, 3) == 0.5
        assert recall_at_k(ranked, set(), 3) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)
        with pytest.raises(ValueError):
            recall_at_k(["a"], {"a"}, 0)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0

    def test_partial(self):
        # relevant at positions 1 and 3: AP = (1/1 + 2/3)/2
        ap = average_precision(["a", "x", "b"], {"a", "b"})
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_no_relevant(self):
        assert average_precision(["a"], set()) == 0.0


class TestMrr:
    def test_mrr(self):
        value = mean_reciprocal_rank(
            [["x", "a"], ["b"]], [{"a"}, {"b"}]
        )
        assert value == pytest.approx((0.5 + 1.0) / 2)

    def test_miss_contributes_zero(self):
        assert mean_reciprocal_rank([["x"]], [{"a"}]) == 0.0

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank([["a"]], [])


class TestDcg:
    def test_dcg_discounts(self):
        assert dcg([1.0, 1.0]) == pytest.approx(1.0 + 1.0 / math.log2(3))

    def test_ndcg_perfect_is_one(self):
        assert ndcg([3.0, 2.0, 1.0]) == pytest.approx(1.0)

    def test_ndcg_worst_order_below_one(self):
        assert ndcg([1.0, 2.0, 3.0]) < 1.0

    def test_ndcg_all_zero(self):
        assert ndcg([0.0, 0.0]) == 0.0

    def test_ndcg_with_k(self):
        assert 0 < ndcg([0.0, 3.0, 2.0], k=2) < 1.0


class TestAgreement:
    def test_unanimous(self):
        assert majority_agreement([1, 1, 1]) == 1.0

    def test_split(self):
        assert majority_agreement([1, 0, 1, 0]) == 0.5

    def test_modal_fraction(self):
        assert majority_agreement([0.5, 0.5, 0.5, 1.0, 0.0]) == 0.6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_agreement([])

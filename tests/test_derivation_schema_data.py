"""Tests for schema+data derivation (Sec. 4.1)."""

import pytest

from repro.core.derivation.schema_data import SchemaDataDeriver
from repro.errors import DerivationError


@pytest.fixture(scope="module")
def deriver(imdb_db):
    return SchemaDataDeriver(imdb_db, k1=4, k2=3)


class TestParameters:
    def test_k_validation(self, imdb_db):
        with pytest.raises(DerivationError):
            SchemaDataDeriver(imdb_db, k1=0)
        with pytest.raises(DerivationError):
            SchemaDataDeriver(imdb_db, k2=-1)

    def test_k1_limits_definition_count(self, imdb_db):
        few = SchemaDataDeriver(imdb_db, k1=2, k2=2).derive()
        many = SchemaDataDeriver(imdb_db, k1=6, k2=2).derive()
        assert len(few) <= 2
        assert len(many) >= len(few)

    def test_k2_zero_gives_bare_entities(self, imdb_db):
        defs = SchemaDataDeriver(imdb_db, k1=3, k2=0).derive()
        for definition in defs:
            assert len(definition.tables()) == 1


class TestDerivedDefinitions:
    def test_anchors_are_top_entities(self, deriver):
        defs = deriver.derive()
        anchors = {d.binders[0].table for d in defs}
        assert "person" in anchors and "movie" in anchors

    def test_source_marked(self, deriver):
        assert all(d.source == "schema_data" for d in deriver.derive())

    def test_movie_expansion_includes_location(self, imdb_db):
        # The paper's diagnosed weakness: data density pulls in the
        # unimportant location table ("every movie has a genre and location").
        defs = SchemaDataDeriver(imdb_db, k1=2, k2=3).derive()
        movie_def = next(d for d in defs if d.binders[0].table == "movie")
        assert "location" in movie_def.tables()

    def test_definitions_materialize(self, imdb_db, deriver):
        for definition in deriver.derive():
            bindings = definition.bindings(imdb_db, limit=2)
            for binding in bindings:
                definition.materialize(imdb_db, binding)  # must not raise

    def test_binder_is_searchable_column(self, imdb_db, deriver):
        for definition in deriver.derive():
            binder = definition.binders[0]
            column = imdb_db.schema.table(binder.table).column(binder.column)
            assert column.searchable


class TestNeighborRanking:
    def test_participation_weights_neighbors(self, imdb_db, deriver):
        ranked = deriver.ranked_neighbors("person")
        names = [name for name, _score in ranked]
        # movie participates for nearly every person; award for few.
        assert names.index("movie") < names.index("award")

    def test_participation_range(self, imdb_db, deriver):
        for neighbor in ("movie", "award", "genre"):
            value = deriver.participation("movie", neighbor) \
                if neighbor != "movie" else 1.0
            assert 0.0 <= value <= 1.0

    def test_participation_full_for_dense_junction(self, deriver):
        # Every movie has at least one genre by construction.
        assert deriver.participation("movie", "genre") > 0.95

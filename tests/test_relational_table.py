"""Tests for row storage and integrity checking."""

import pytest

from repro.errors import IntegrityError, SchemaError, TypeMismatchError
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table


@pytest.fixture()
def table() -> Table:
    return Table(TableSchema("movie", [
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("title", ColumnType.TEXT, nullable=False, searchable=True),
        Column("rating", ColumnType.FLOAT),
    ], primary_key="id"))


class TestInsert:
    def test_insert_returns_row_id(self, table):
        assert table.insert({"id": 1, "title": "A"}) == 0
        assert table.insert({"id": 2, "title": "B"}) == 1

    def test_missing_nullable_defaults_to_none(self, table):
        table.insert({"id": 1, "title": "A"})
        assert table.row(0)["rating"] is None

    def test_missing_non_nullable_rejected(self, table):
        with pytest.raises(IntegrityError):
            table.insert({"id": 1})

    def test_unknown_column_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "title": "A", "bogus": 1})

    def test_type_mismatch_rejected(self, table):
        with pytest.raises(TypeMismatchError):
            table.insert({"id": "one", "title": "A"})

    def test_bool_is_not_integer(self, table):
        with pytest.raises(TypeMismatchError):
            table.insert({"id": True, "title": "A"})

    def test_duplicate_pk_rejected(self, table):
        table.insert({"id": 1, "title": "A"})
        with pytest.raises(IntegrityError):
            table.insert({"id": 1, "title": "B"})

    def test_null_pk_rejected(self, table):
        with pytest.raises(IntegrityError):
            table.insert({"id": None, "title": "A"})

    def test_int_promoted_in_float_column(self, table):
        table.insert({"id": 1, "title": "A", "rating": 8})
        assert table.row(0)["rating"] == 8.0
        assert isinstance(table.row(0)["rating"], float)


class TestAccess:
    def test_len_and_iter(self, table):
        table.insert({"id": 1, "title": "A"})
        table.insert({"id": 2, "title": "B"})
        assert len(table) == 2
        assert [row["title"] for row in table] == ["A", "B"]

    def test_by_primary_key(self, table):
        table.insert({"id": 5, "title": "E"})
        row = table.by_primary_key(5)
        assert row is not None and row["title"] == "E"
        assert table.by_primary_key(99) is None

    def test_by_primary_key_without_pk_raises(self):
        no_pk = Table(TableSchema("t", [Column("a", ColumnType.TEXT)]))
        with pytest.raises(IntegrityError):
            no_pk.by_primary_key(1)

    def test_column_values_in_row_order(self, table):
        table.insert({"id": 1, "title": "A"})
        table.insert({"id": 2, "title": "B"})
        assert table.column_values("title") == ["A", "B"]

    def test_column_values_unknown_column(self, table):
        from repro.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            table.column_values("nope")

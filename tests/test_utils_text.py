"""Tests for text normalization helpers."""

import pytest

from repro.utils.text import (
    fold_whitespace,
    ngrams,
    normalize,
    sliding_windows,
    to_identifier,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("Star WARS") == "star wars"

    def test_strips_accents(self):
        assert normalize("Amélie") == "amelie"

    def test_collapses_punctuation(self):
        assert normalize("ocean's eleven!") == "ocean's eleven"
        assert normalize("spider-man: far, far away") == "spider man far far away"

    def test_idempotent(self):
        text = "The Quick; Brown. Fox?"
        assert normalize(normalize(text)) == normalize(text)

    def test_empty(self):
        assert normalize("") == ""
        assert normalize("!!!") == ""

    def test_digits_preserved(self):
        assert normalize("Movie 2001") == "movie 2001"


class TestFoldWhitespace:
    def test_collapses_runs(self):
        assert fold_whitespace("a   b\t\nc") == "a b c"

    def test_trims(self):
        assert fold_whitespace("  x  ") == "x"


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_longer_than_tokens(self):
        assert list(ngrams(["a"], 2)) == []

    def test_unigrams(self):
        assert list(ngrams(["a", "b"], 1)) == [("a",), ("b",)]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))


class TestSlidingWindows:
    def test_longest_first_per_position(self):
        windows = list(sliding_windows(["a", "b", "c"], 2))
        # At position 0, the 2-gram comes before the 1-gram.
        assert windows[0] == (0, 2, ("a", "b"))
        assert windows[1] == (0, 1, ("a",))

    def test_covers_all_positions(self):
        windows = list(sliding_windows(["a", "b"], 3))
        starts = {start for start, _end, _gram in windows}
        assert starts == {0, 1}

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            list(sliding_windows(["a"], 0))


class TestToIdentifier:
    def test_snake_case(self):
        assert to_identifier("Star Wars") == "star_wars"

    def test_leading_digit_prefixed(self):
        assert to_identifier("2001 odyssey") == "n2001_odyssey"

    def test_empty_becomes_unnamed(self):
        assert to_identifier("!!!") == "unnamed"

    def test_apostrophes_dropped(self):
        assert to_identifier("Ocean's Eleven") == "oceans_eleven"

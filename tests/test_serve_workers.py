"""Tests for the prefork worker tier (``repro.serve.workers``): the
length-prefixed frame codec, the worker-side frame loop (including the
two malformed-input regimes), and the pool end to end — rank identity
with in-process serving, crash + respawn, and a generation swap
broadcast mid-serving."""

import asyncio
import http.client
import json
import os
import signal
import socket
import struct
import threading
import time

import pytest

from repro.core.store import CollectionStore
from repro.serve.api import SearchRequest
from repro.serve.workers import (
    MAX_FRAME_BYTES,
    FrameServer,
    ProtocolError,
    WorkerPool,
    WorkerSpec,
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
)

SCALE, SEED = 0.15, 7  # must match the session ``imdb_db`` fixture


@pytest.fixture(scope="module")
def workload_queries(imdb_db):
    from repro.datasets.querylog import SessionLogGenerator

    generator = SessionLogGenerator(imdb_db, seed=5)
    sessions = generator.generate(25)
    return sorted({query for session in sessions
                   for query in session.queries})[:15]


# -- frame codec -------------------------------------------------------------


class TestFrameCodec:
    def test_round_trip(self):
        payload = {"op": "batch", "id": 7, "requests": [{"query": "q"}]}
        assert decode_frame(encode_frame(payload)[4:]) == payload

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"op": "ready"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_frame(b"{not json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(b"[1, 2]")

    def test_socket_round_trip_and_eof(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"op": "ready", "pid": 1})
            assert recv_frame(right) == {"op": "ready", "pid": 1}
            left.close()
            assert recv_frame(right) is None  # clean EOF
        finally:
            right.close()

    def test_oversized_length_prefix_is_protocol_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_torn_frame_is_protocol_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 100) + b"only this much")
            left.shutdown(socket.SHUT_WR)
            with pytest.raises(ProtocolError, match="short|before"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


# -- the worker-side frame loop, in process against a stub engine ------------


@pytest.fixture()
def frame_server():
    """A FrameServer on a background thread over a socketpair; yields
    the test's end of the wire and the (joinable) thread."""
    worker_end, test_end = socket.socketpair()

    def execute(request_dicts):
        if request_dicts and request_dicts[0].get("query") == "explode":
            raise RuntimeError("engine failure")
        return [{"echo": entry} for entry in request_dicts]

    server = FrameServer(worker_end, execute, generation="gen-a")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield test_end, thread, server
    finally:
        test_end.close()
        thread.join(timeout=10)
        worker_end.close()


class TestFrameServer:
    def test_announces_ready_then_serves_batches(self, frame_server):
        sock, _thread, _server = frame_server
        ready = recv_frame(sock)
        assert ready["op"] == "ready"
        assert ready["pid"] == os.getpid()
        assert ready["generation"] == "gen-a"
        send_frame(sock, {"op": "batch", "id": 1,
                          "requests": [{"query": "a"}, {"query": "b"}]})
        result = recv_frame(sock)
        assert result == {"op": "result", "id": 1,
                          "responses": [{"echo": {"query": "a"}},
                                        {"echo": {"query": "b"}}]}

    def test_bad_json_in_intact_frame_answers_error_and_continues(
            self, frame_server):
        sock, _thread, _server = frame_server
        recv_frame(sock)  # ready
        junk = b"{definitely not json"
        sock.sendall(struct.pack(">I", len(junk)) + junk)
        error = recv_frame(sock)
        assert error["op"] == "error"
        assert error["id"] is None
        assert "malformed" in error["error"]
        # The frame boundary held: the worker still serves.
        send_frame(sock, {"op": "batch", "id": 2, "requests": []})
        assert recv_frame(sock)["op"] == "result"

    def test_unknown_op_answers_error_and_continues(self, frame_server):
        sock, _thread, _server = frame_server
        recv_frame(sock)  # ready
        send_frame(sock, {"op": "frobnicate", "id": 9})
        error = recv_frame(sock)
        assert error["op"] == "error"
        assert "frobnicate" in error["error"]
        send_frame(sock, {"op": "batch", "id": 3, "requests": []})
        assert recv_frame(sock)["op"] == "result"

    def test_bad_batch_shape_answers_error_and_continues(self, frame_server):
        sock, _thread, _server = frame_server
        recv_frame(sock)  # ready
        send_frame(sock, {"op": "batch", "id": "not-int", "requests": []})
        assert recv_frame(sock)["op"] == "error"
        send_frame(sock, {"op": "batch", "id": 4, "requests": "nope"})
        assert recv_frame(sock)["op"] == "error"
        send_frame(sock, {"op": "batch", "id": 5, "requests": []})
        assert recv_frame(sock)["op"] == "result"

    def test_engine_failure_answers_error_with_id(self, frame_server):
        sock, _thread, _server = frame_server
        recv_frame(sock)  # ready
        send_frame(sock, {"op": "batch", "id": 6,
                          "requests": [{"query": "explode"}]})
        error = recv_frame(sock)
        assert error["op"] == "error"
        assert error["id"] == 6
        assert "RuntimeError" in error["error"]

    def test_oversized_length_prefix_kills_the_loop(self, frame_server):
        sock, thread, _server = frame_server
        recv_frame(sock)  # ready
        sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        fatal = recv_frame(sock)
        assert fatal["op"] == "protocol_error"
        assert "exceeds" in fatal["error"]
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_torn_frame_kills_the_loop(self, frame_server):
        sock, thread, _server = frame_server
        recv_frame(sock)  # ready
        sock.sendall(struct.pack(">I", 64) + b"half a frame")
        sock.shutdown(socket.SHUT_WR)
        fatal = recv_frame(sock)
        assert fatal["op"] == "protocol_error"
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_generation_frame_reloads_and_reannounces(self):
        worker_end, test_end = socket.socketpair()
        reloads = []

        def reload():
            reloads.append(True)
            return "gen-b"

        server = FrameServer(worker_end, lambda requests: [],
                             reload=reload, generation="gen-a")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert recv_frame(test_end)["generation"] == "gen-a"
            send_frame(test_end, {"op": "generation"})
            ready = recv_frame(test_end)
            assert ready["op"] == "ready"
            assert ready["generation"] == "gen-b"
            assert reloads == [True]
            send_frame(test_end, {"op": "shutdown"})
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            test_end.close()
            thread.join(timeout=10)
            worker_end.close()


# -- the pool, end to end ----------------------------------------------------


def _requests(queries, limit=3):
    return [SearchRequest(query=query, limit=limit) for query in queries]


def _ranked(responses):
    return [[(answer.text, answer.score) for answer in response.answers]
            for response in responses]


async def _await_generation(pool, generation, timeout=60.0):
    """Poll until every live worker announces ``generation``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        per_worker = pool.stats()["per_worker"]
        if all(entry["generation"] == generation for entry in per_worker
               if entry["alive"]):
            return
        await asyncio.sleep(0.05)
    raise AssertionError(f"workers never reached generation {generation}")


class TestWorkerPool:
    def test_rejects_zero_workers(self, tmp_path):
        spec = WorkerSpec(directory=str(tmp_path), scale=SCALE, seed=SEED)
        with pytest.raises(ValueError, match=">= 1"):
            WorkerPool(spec, workers=0)

    def test_pool_serves_rank_identical_and_survives_a_kill(
            self, expert_collection, expert_engine, workload_queries,
            tmp_path):
        """One pool session: (1) batches answer rank-identically to the
        in-process engine, (2) SIGKILL on a worker is detected, the
        worker respawns, and answers stay identical."""
        CollectionStore(tmp_path / "gen").save(expert_collection)
        spec = WorkerSpec(directory=str(tmp_path / "gen"),
                          scale=SCALE, seed=SEED)
        requests = _requests(workload_queries[:4])
        local = _ranked(expert_engine.execute(requests))

        async def main():
            pool = WorkerPool(spec, workers=2)
            await pool.start()
            try:
                first = _ranked(await pool.execute(requests))
                second = _ranked(await pool.execute(requests))

                victim = pool.stats()["per_worker"][0]["pid"]
                os.kill(victim, signal.SIGKILL)
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    stats = pool.stats()
                    if stats["restarts"] >= 1 and \
                            all(entry["alive"]
                                for entry in stats["per_worker"]):
                        break
                    await asyncio.sleep(0.05)
                else:
                    raise AssertionError("killed worker never respawned")

                third = _ranked(await pool.execute(requests))
                return first, second, third, pool.stats()
            finally:
                await pool.close()

        first, second, third, stats = asyncio.run(main())
        assert first == local
        assert second == local
        assert third == local  # the respawned worker serves correctly
        assert stats["restarts"] == 1
        assert stats["dispatched"] >= 3
        assert {entry["pid"] for entry in stats["per_worker"]} != {None}

    def test_generation_swap_broadcast_keeps_answers_identical(
            self, imdb_db, workload_queries, tmp_path):
        """Commit an ingestion generation through the store, broadcast
        it, and require worker answers to track the front end exactly —
        including for an instance only the new generation contains."""
        from repro.core.collection import QunitCollection
        from repro.core.derivation import imdb_expert_qunits
        from repro.core.search import QunitSearchEngine

        directory = tmp_path / "gen"
        store = CollectionStore(directory)
        store.save(QunitCollection(imdb_db, imdb_expert_qunits(),
                                   max_instances_per_definition=30))
        engine = QunitSearchEngine.load(imdb_db, directory, flavor="expert")
        collection = engine.collection
        # An instance past the saved cap: present in neither the saved
        # generation nor any worker until the commit lands.
        wider = QunitCollection(imdb_db, imdb_expert_qunits(),
                                max_instances_per_definition=80)
        extra = next(
            instance
            for name in sorted(wider.definitions)
            for instance in wider.instances_of(name)[30:])
        probe = " ".join(str(value) for value in extra.params.values())
        spec = WorkerSpec(directory=str(directory), scale=SCALE, seed=SEED)
        queries = [*workload_queries[:2], probe]

        async def main():
            pool = WorkerPool(spec, workers=2)
            await pool.start()
            try:
                before = _ranked(await pool.execute(_requests(queries)))

                writer = store.writer(collection)
                writer.stage_instance(extra)
                await asyncio.to_thread(writer.commit)
                await pool.broadcast_generation()
                await _await_generation(pool, store.generation())

                after = _ranked(await pool.execute(_requests(queries)))
                return before, after
            finally:
                await pool.close()

        before, after = asyncio.run(main())
        local = _ranked(engine.execute(_requests(queries)))
        assert after == local  # tracks the committed generation exactly
        assert before[:2] == local[:2]  # old answers were already right
        wider.close()
        engine.collection.close()


class TestServerWithWorkers:
    def test_http_serving_over_workers_matches_in_process(
            self, expert_collection, expert_engine, workload_queries,
            imdb_db, tmp_path):
        """The full stack: HTTP front end dispatching micro-batches to
        prefork workers answers exactly like in-process serving, and
        ``/stats`` carries the per-worker counters."""
        import http.client

        from repro.core.search import QunitSearchEngine
        from repro.serve.server import SearchServer, ServerConfig

        directory = tmp_path / "gen"
        CollectionStore(directory).save(expert_collection)
        engine = QunitSearchEngine.load(imdb_db, directory, flavor="expert")
        spec = WorkerSpec(directory=str(directory), scale=SCALE, seed=SEED)
        local = {query: _ranked([response]) for query, response in zip(
            workload_queries[:3],
            expert_engine.execute(_requests(workload_queries[:3])))}

        async def main():
            pool = WorkerPool(spec, workers=2)
            server = SearchServer(
                engine, ServerConfig(window=0.002, max_batch=8),
                workers=pool)
            await server.start()
            try:
                host, port = server.address
                answers = {}
                for query in workload_queries[:3]:
                    status, data = await asyncio.to_thread(
                        _sync_post, host, port, "/search",
                        {"query": query, "limit": 3})
                    assert status == 200
                    answers[query] = [[(a["text"], a["score"])
                                       for a in data["answers"]]]
                status, stats = await asyncio.to_thread(
                    _sync_post, host, port, "/stats", None)
                assert status == 200
                return answers, stats
            finally:
                await server.close()

        answers, stats = asyncio.run(main())
        assert answers == local
        workers = stats["workers"]
        assert workers["count"] == 2
        assert workers["dispatched"] >= 1
        assert sum(entry["served"] for entry in workers["per_worker"]) >= 3
        engine.collection.close()


def _sync_post(host, port, path, payload):
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        if payload is None:
            connection.request("GET", path)
        else:
            connection.request(
                "POST", path, body=json.dumps(payload),
                headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()

"""Tests for the tree text index."""

import pytest

from repro.xmlview import build_xml_view
from repro.xmlview.index import TreeTextIndex


@pytest.fixture()
def index(mini_db):
    return TreeTextIndex(build_xml_view(mini_db))


class TestMatching:
    def test_single_token(self, index):
        nodes = index.matches("clooney")
        assert nodes and all("clooney" in node.text.lower() for node in nodes)

    def test_match_sets_per_keyword(self, index):
        sets = index.match_sets("star wars")
        assert len(sets) == 2
        assert all(sets)

    def test_unknown_token_empty(self, index):
        assert index.matches("xyzzy") == []
        assert index.match_sets("star xyzzy")[1] == []

    def test_stemmed_section_labels(self, index):
        # "awards" must reach the "award" section label via stemming --
        # mini_db has no awards, but role 'actress' stems visibly:
        assert index.matches("actress") != []

    def test_multi_token_input_rejected(self, index):
        with pytest.raises(ValueError):
            index.matches("star wars")

    def test_vocabulary_size(self, index):
        assert index.vocabulary_size() > 10

    def test_node_listed_once_per_token(self, mini_db):
        from repro.xmlview.tree import XmlNode

        root = XmlNode("r", ())
        root.add_child("t", "wars wars wars")
        index = TreeTextIndex(root)
        assert len(index.matches("wars")) == 1

"""Tests for the expression layer."""

import pytest

from repro.errors import BindError, PlanError
from repro.relational.expr import (
    And,
    ColumnRef,
    Comparison,
    Contains,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
)

ROW = {"movie.title": "Star Wars", "movie.year": 1977, "movie.rating": None}


class TestColumnRef:
    def test_reads_qualified(self):
        assert ColumnRef("movie", "title").evaluate(ROW) == "Star Wars"

    def test_missing_column_raises_plan_error(self):
        with pytest.raises(PlanError):
            ColumnRef("movie", "nope").evaluate(ROW)

    def test_references(self):
        assert ColumnRef("a", "b").references() == {"a.b"}


class TestParam:
    def test_bound(self):
        assert Param("x").evaluate(ROW, {"x": 5}) == 5

    def test_unbound_raises(self):
        with pytest.raises(BindError):
            Param("x").evaluate(ROW, {})
        with pytest.raises(BindError):
            Param("x").evaluate(ROW, None)

    def test_param_names_propagate(self):
        expr = And(Comparison("=", ColumnRef("movie", "title"), Param("x")),
                   Comparison(">", ColumnRef("movie", "year"), Param("y")))
        assert expr.param_names() == {"x", "y"}


class TestComparison:
    def test_numeric_operators(self):
        year = ColumnRef("movie", "year")
        assert Comparison("=", year, Literal(1977)).evaluate(ROW)
        assert Comparison("<", year, Literal(2000)).evaluate(ROW)
        assert Comparison(">=", year, Literal(1977)).evaluate(ROW)
        assert not Comparison("!=", year, Literal(1977)).evaluate(ROW)

    def test_text_comparison_is_normalized(self):
        title = ColumnRef("movie", "title")
        assert Comparison("=", title, Literal("STAR WARS")).evaluate(ROW)
        assert Comparison("=", title, Literal("star  wars ")).evaluate(ROW)

    def test_null_rejecting(self):
        rating = ColumnRef("movie", "rating")
        assert not Comparison("=", rating, Literal(5.0)).evaluate(ROW)
        assert not Comparison("!=", rating, Literal(5.0)).evaluate(ROW)

    def test_mixed_type_comparison_is_false_not_error(self):
        year = ColumnRef("movie", "year")
        assert not Comparison("<", year, Literal("abc")).evaluate(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Comparison("~", Literal(1), Literal(2))


class TestBooleans:
    def test_and_or_not(self):
        true = Comparison("=", Literal(1), Literal(1))
        false = Comparison("=", Literal(1), Literal(2))
        assert And(true, true).evaluate(ROW)
        assert not And(true, false).evaluate(ROW)
        assert Or(false, true).evaluate(ROW)
        assert not Or(false, false).evaluate(ROW)
        assert Not(false).evaluate(ROW)

    def test_references_union(self):
        expr = Or(Comparison("=", ColumnRef("a", "x"), Literal(1)),
                  Comparison("=", ColumnRef("b", "y"), Literal(2)))
        assert expr.references() == {"a.x", "b.y"}


class TestInList:
    def test_membership_normalized_text(self):
        title = ColumnRef("movie", "title")
        assert InList(title, ("STAR WARS", "other")).evaluate(ROW)
        assert not InList(title, ("casablanca",)).evaluate(ROW)

    def test_numeric_membership(self):
        year = ColumnRef("movie", "year")
        assert InList(year, (1977, 1980)).evaluate(ROW)

    def test_null_not_in_anything(self):
        rating = ColumnRef("movie", "rating")
        assert not InList(rating, (None, 5.0)).evaluate(ROW)


class TestIsNull:
    def test_is_null(self):
        assert IsNull(ColumnRef("movie", "rating")).evaluate(ROW)
        assert not IsNull(ColumnRef("movie", "title")).evaluate(ROW)

    def test_negated(self):
        assert IsNull(ColumnRef("movie", "title"), negated=True).evaluate(ROW)


class TestContains:
    def test_substring_normalized(self):
        title = ColumnRef("movie", "title")
        assert Contains(title, Literal("wars")).evaluate(ROW)
        assert Contains(title, Literal("STAR")).evaluate(ROW)
        assert not Contains(title, Literal("trek")).evaluate(ROW)

    def test_non_text_is_false(self):
        year = ColumnRef("movie", "year")
        assert not Contains(year, Literal("19")).evaluate(ROW)


class TestStr:
    def test_readable_rendering(self):
        expr = And(Comparison("=", ColumnRef("movie", "title"), Param("x")),
                   Not(IsNull(ColumnRef("movie", "year"))))
        text = str(expr)
        assert "movie.title = $x" in text
        assert "IS NULL" in text

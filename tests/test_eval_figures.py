"""Tests for the figure/table renderers."""

from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator
from repro.eval.figures import (
    PAPER_SEC52_TARGETS,
    render_sec52_statistics,
    render_table1,
    render_table2,
)
from repro.eval.userstudy import UserStudySimulator


class TestTable2:
    def test_lists_all_five_options(self):
        rendered = render_table2()
        assert rendered.count("provides") == 5
        assert "0.5" in rendered and "1.0" in rendered


class TestTable1:
    def test_renders_matrix_and_summary(self):
        result = UserStudySimulator(seed=31).run()
        rendered = render_table1(result)
        assert "Information Needs vs Keyword Queries" in rendered
        assert "paper" in rendered and "simulated" in rendered
        assert str(25) in rendered


class TestSec52:
    def test_side_by_side(self, imdb_db):
        generator = QueryLogGenerator(imdb_db, seed=11)
        log = generator.generate(300)
        stats = QueryLogAnalyzer(imdb_db).statistics(log)
        rendered = render_sec52_statistics(stats)
        assert "98549" in rendered or "98_549" in rendered.replace(",", "") \
            or str(PAPER_SEC52_TARGETS["total_queries"]) in rendered
        assert "single entity" in rendered
        assert "synthetic log" in rendered

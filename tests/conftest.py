"""Shared fixtures.

``mini_db`` is a hand-built six-row database over the paper's Figure 2-ish
schema — fast, fully known content for exact assertions.  ``imdb_db`` is
the synthetic generator at small scale, session-scoped because most
integration tests only read it.
"""

from __future__ import annotations

import pytest

from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine
from repro.datasets.imdb import generate_imdb
from repro.relational.database import Database
from repro.relational.schema import Column, ColumnType, ForeignKey, Schema, TableSchema


def build_mini_schema() -> Schema:
    """person -- cast -- movie, plus a genre dimension."""
    return Schema([
        TableSchema("person", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False, searchable=True),
            Column("birth_year", ColumnType.INTEGER),
        ], primary_key="id"),
        TableSchema("movie", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("title", ColumnType.TEXT, nullable=False, searchable=True),
            Column("year", ColumnType.INTEGER),
            Column("rating", ColumnType.FLOAT),
        ], primary_key="id"),
        TableSchema("genre", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False, searchable=True),
        ], primary_key="id"),
        TableSchema("movie_genre", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("movie_id", ColumnType.INTEGER, nullable=False),
            Column("genre_id", ColumnType.INTEGER, nullable=False),
        ], primary_key="id", foreign_keys=[
            ForeignKey("movie_id", "movie", "id"),
            ForeignKey("genre_id", "genre", "id"),
        ]),
        TableSchema("cast", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("person_id", ColumnType.INTEGER, nullable=False),
            Column("movie_id", ColumnType.INTEGER, nullable=False),
            Column("role", ColumnType.TEXT, searchable=True),
        ], primary_key="id", foreign_keys=[
            ForeignKey("person_id", "person", "id"),
            ForeignKey("movie_id", "movie", "id"),
        ]),
    ])


def build_mini_db() -> Database:
    db = Database(build_mini_schema(), name="mini")
    for person in [
        {"id": 1, "name": "George Clooney", "birth_year": 1961},
        {"id": 2, "name": "Tom Hanks", "birth_year": 1956},
        {"id": 3, "name": "Carrie Fisher", "birth_year": 1956},
    ]:
        db.insert("person", person)
    for movie in [
        {"id": 1, "title": "Star Wars", "year": 1977, "rating": 8.6},
        {"id": 2, "title": "Cast Away", "year": 2000, "rating": 7.8},
        {"id": 3, "title": "Ocean's Eleven", "year": 2001, "rating": 7.7},
    ]:
        db.insert("movie", movie)
    for genre in [
        {"id": 1, "name": "science fiction"},
        {"id": 2, "name": "drama"},
        {"id": 3, "name": "crime"},
    ]:
        db.insert("genre", genre)
    for movie_genre in [
        {"id": 1, "movie_id": 1, "genre_id": 1},
        {"id": 2, "movie_id": 2, "genre_id": 2},
        {"id": 3, "movie_id": 3, "genre_id": 3},
    ]:
        db.insert("movie_genre", movie_genre)
    for cast in [
        {"id": 1, "person_id": 3, "movie_id": 1, "role": "actress"},
        {"id": 2, "person_id": 2, "movie_id": 2, "role": "actor"},
        {"id": 3, "person_id": 1, "movie_id": 3, "role": "actor"},
        {"id": 4, "person_id": 2, "movie_id": 3, "role": "actor"},
    ]:
        db.insert("cast", cast)
    return db


@pytest.fixture()
def mini_db() -> Database:
    return build_mini_db()


@pytest.fixture(scope="session")
def imdb_db() -> Database:
    return generate_imdb(scale=0.15, seed=7)


@pytest.fixture(scope="session")
def expert_collection(imdb_db) -> QunitCollection:
    return QunitCollection(imdb_db, imdb_expert_qunits(),
                           max_instances_per_definition=60)


@pytest.fixture(scope="session")
def expert_engine(expert_collection) -> QunitSearchEngine:
    return QunitSearchEngine(expert_collection, flavor="expert")

"""Tests for the tuple-level data graph."""

import pytest

from repro.graph.data_graph import DataGraph, TupleNode


@pytest.fixture()
def graph(mini_db):
    return DataGraph(mini_db)


class TestConstruction:
    def test_one_node_per_tuple(self, graph, mini_db):
        assert graph.node_count == mini_db.total_rows()

    def test_edges_follow_fks(self, graph):
        # cast row 0 references person 3 (row 2) and movie 1 (row 0).
        cast_node = TupleNode("cast", 0)
        neighbors = graph.neighbors(cast_node)
        assert TupleNode("person", 2) in neighbors
        assert TupleNode("movie", 0) in neighbors

    def test_edge_count(self, graph):
        # 4 cast rows x 2 FKs + 3 movie_genre rows x 2 FKs = 14 edges.
        assert graph.edge_count == 14

    def test_edge_weights_penalize_hubs(self, graph):
        # Every edge weight is >= 1 and grows with degree.
        for left, right in graph.graph.edges:
            assert graph.edge_weight(left, right) >= 1.0

    def test_prestige_degree_based(self, graph):
        movie3 = TupleNode("movie", 2)   # Ocean's Eleven: 2 cast + 1 genre
        movie1 = TupleNode("movie", 0)   # Star Wars: 1 cast + 1 genre
        assert graph.prestige(movie3) > graph.prestige(movie1)


class TestQueries:
    def test_keyword_matching(self, graph):
        nodes = graph.nodes_matching_keyword("clooney")
        assert nodes == {TupleNode("person", 0)}

    def test_keyword_multiple_matches(self, graph):
        nodes = graph.nodes_matching_keyword("actor")
        assert len(nodes) == 3  # three cast rows with role=actor

    def test_unknown_keyword(self, graph):
        assert graph.nodes_matching_keyword("xyzzy") == set()

    def test_shortest_path(self, graph):
        # George Clooney -> cast -> Ocean's Eleven
        path = graph.shortest_path(TupleNode("person", 0), TupleNode("movie", 2))
        assert len(path) == 3
        assert path[0] == TupleNode("person", 0)
        assert path[-1] == TupleNode("movie", 2)

    def test_row_access(self, graph):
        row = graph.row(TupleNode("movie", 0))
        assert row["title"] == "Star Wars"

"""End-to-end integration tests: the paper's narrative on one database."""

import pytest

from repro.baselines import BanksSearch, XmlLcaSearch, XmlMlcaSearch
from repro.core import QunitCollection, UtilityModel
from repro.core.derivation import (
    ExternalEvidenceDeriver,
    QueryLogDeriver,
    SchemaDataDeriver,
    imdb_expert_qunits,
)
from repro.core.search import QunitSearchEngine
from repro.datasets.evidence import generate_wiki_corpus
from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator
from repro.graph.data_graph import DataGraph
from repro.xmlview import build_xml_view
from repro.xmlview.index import TreeTextIndex


class TestPaperNarrative:
    """Sec. 1's george clooney movies walkthrough + Sec. 3's star wars cast."""

    def test_george_clooney_movies_resolves_ids(self, expert_engine):
        answer = expert_engine.best("george clooney movies")
        # The natural join person-cast-movie, with titles resolved --
        # no internal ids anywhere in the presented content.
        assert ("movie", "title", "ocean's eleven") in answer.atoms
        assert all(not c.endswith("_id") and c != "id"
                   for _t, c, _v in answer.atoms)

    def test_star_wars_cast_full_pipeline(self, expert_engine):
        explanation = expert_engine.explain("star wars cast")
        assert explanation.template == "[movie.title] cast"
        answer = expert_engine.best("star wars cast")
        for name in ("mark hamill", "harrison ford", "carrie fisher"):
            assert ("person", "name", name) in answer.atoms

    def test_qunits_are_independent_documents(self, expert_collection):
        # Sec. 2: overlapping qunits coexist with no links between them.
        credits = expert_collection.instance("movie_full_credits::star_wars")
        main = expert_collection.instance("movie_main_page::star_wars")
        assert credits.atoms() & main.atoms()  # overlap allowed
        assert credits.instance_id != main.instance_id


class TestAllDerivationsProduceWorkingEngines:
    @pytest.fixture(scope="class")
    def engines(self, imdb_db):
        log_generator = QueryLogGenerator(imdb_db, seed=8)
        log = log_generator.generate(log_generator.recommended_unique())
        pages = generate_wiki_corpus(imdb_db, seed=9)
        utility = UtilityModel(imdb_db)
        frequencies = QueryLogAnalyzer(imdb_db).template_frequencies(log)

        flavors = {
            "expert": imdb_expert_qunits(),
            "schema_data": utility.assign(
                SchemaDataDeriver(imdb_db).derive(), frequencies),
            "query_log": QueryLogDeriver(imdb_db).derive(log.as_list()),
            "external": ExternalEvidenceDeriver(imdb_db).derive(pages),
        }
        return {
            flavor: QunitSearchEngine(
                QunitCollection(imdb_db, defs, max_instances_per_definition=40),
                flavor=flavor)
            for flavor, defs in flavors.items()
        }

    def test_every_engine_answers_canonical_queries(self, engines):
        for flavor, engine in engines.items():
            for query in ("star wars", "george clooney", "tom hanks movies"):
                answer = engine.best(query)
                assert not answer.is_empty, (flavor, query)
                assert answer.system == f"qunits-{flavor}"

    def test_expert_beats_automated_on_specific_need(self, engines):
        # "star wars cast": expert has a dedicated credits qunit; the
        # automated profiles answer with more noise (lower precision).
        gold_names = {"mark hamill", "harrison ford", "carrie fisher"}

        def precision(answer):
            if not answer.atoms:
                return 0.0
            hits = sum(1 for t, c, v in answer.atoms
                       if t == "person" and v in gold_names)
            return hits / len(answer.atoms)

        expert = precision(engines["expert"].best("star wars cast"))
        schema = precision(engines["schema_data"].best("star wars cast"))
        assert expert >= schema


class TestBaselinesOnSameData:
    def test_all_three_baselines_run(self, imdb_db):
        data_graph = DataGraph(imdb_db)
        banks = BanksSearch(data_graph)
        root = build_xml_view(imdb_db)
        index = TreeTextIndex(root)
        lca = XmlLcaSearch(root, index)
        mlca = XmlMlcaSearch(root, index)
        for system in (banks, lca, mlca):
            answer = system.best("star wars cast")
            assert answer.system in ("banks", "xml-lca", "xml-mlca")

    def test_banks_returns_join_plumbing(self, imdb_db):
        # The failure the qunit model fixes: BANKS' answer trees include
        # junction tuples (position numbers etc.) a user never asked for.
        banks = BanksSearch(DataGraph(imdb_db))
        answer = banks.best("hamill wars")
        assert not answer.is_empty
        assert "cast" in answer.tables()

"""Cross-check property tests: the SQL executor vs a brute-force reference.

The compiler builds hash-join trees with predicate pushdown; the reference
implementation evaluates the same SELECT by materializing the full cross
product of the FROM tables and filtering with the raw WHERE expression.
On randomized small databases both must agree exactly — this catches join
ordering, pushdown and null-handling bugs that unit tests on hand-picked
data would miss.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.database import Database
from repro.relational.schema import Column, ColumnType, Schema, TableSchema
from repro.relational.sql import compile_select, parse_select
from repro.relational.algebra import execute

# -- random database construction ------------------------------------------------

NAMES = ["ada", "bo", "cy", "dee", "ed"]
TITLES = ["alpha", "beta", "gamma", "delta"]


def build_db(person_rows, movie_rows, cast_rows) -> Database:
    schema = Schema([
        TableSchema("person", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT, searchable=True),
            Column("age", ColumnType.INTEGER),
        ], primary_key="id"),
        TableSchema("movie", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("title", ColumnType.TEXT, searchable=True),
            Column("year", ColumnType.INTEGER),
        ], primary_key="id"),
        TableSchema("cast", [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("person_id", ColumnType.INTEGER),
            Column("movie_id", ColumnType.INTEGER),
        ], primary_key="id"),
    ])
    db = Database(schema)
    for i, (name, age) in enumerate(person_rows):
        db.insert("person", {"id": i + 1, "name": name, "age": age})
    for i, (title, year) in enumerate(movie_rows):
        db.insert("movie", {"id": i + 1, "title": title, "year": year})
    for i, (person_id, movie_id) in enumerate(cast_rows):
        db.insert("cast", {
            "id": i + 1,
            "person_id": min(person_id, len(person_rows)) if person_rows else None,
            "movie_id": min(movie_id, len(movie_rows)) if movie_rows else None,
        })
    return db


person_rows = st.lists(
    st.tuples(st.sampled_from(NAMES),
              st.one_of(st.none(), st.integers(18, 80))),
    min_size=0, max_size=4)
movie_rows = st.lists(
    st.tuples(st.sampled_from(TITLES),
              st.one_of(st.none(), st.integers(1950, 2010))),
    min_size=0, max_size=4)
cast_rows = st.lists(
    st.tuples(st.integers(1, 4), st.integers(1, 4)),
    min_size=0, max_size=6)


# -- reference evaluator ----------------------------------------------------------

def reference_eval(db: Database, sql: str) -> list[dict]:
    """Brute force: cross product of FROM, filter with WHERE, project."""
    statement = parse_select(sql)
    table_rows = []
    for ref in statement.from_tables:
        prefix = ref.binding
        rows = []
        for row in db.table(ref.table):
            rows.append({f"{prefix}.{k}": v for k, v in row.items()})
        table_rows.append(rows)
    merged = []
    for combo in itertools.product(*table_rows):
        row: dict = {}
        for part in combo:
            row.update(part)
        if statement.where is None or statement.where.evaluate(row, {}):
            merged.append(row)
    from repro.relational.sql.ast import ColumnItem, StarItem

    if any(isinstance(i, StarItem) for i in statement.select_items):
        return merged
    projected = []
    for row in merged:
        out = {}
        for item in statement.select_items:
            assert isinstance(item, ColumnItem)
            key = item.output_name or item.qualified
            out[key] = row[item.qualified]
        projected.append(out)
    return projected


def canonical(rows: list[dict]) -> list[tuple]:
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )


QUERIES = [
    "SELECT * FROM person",
    "SELECT * FROM person WHERE person.age > 30",
    "SELECT * FROM person WHERE person.age IS NULL",
    "SELECT person.name FROM person WHERE person.name = 'ada'",
    ("SELECT * FROM person, cast "
     "WHERE cast.person_id = person.id"),
    ("SELECT person.name, movie.title FROM person, cast, movie "
     "WHERE cast.person_id = person.id AND cast.movie_id = movie.id"),
    ("SELECT person.name, movie.title FROM person, cast, movie "
     "WHERE cast.person_id = person.id AND cast.movie_id = movie.id "
     "AND movie.year > 1980"),
    ("SELECT * FROM person, cast, movie "
     "WHERE cast.person_id = person.id AND cast.movie_id = movie.id "
     "AND (person.age > 40 OR movie.year < 1990)"),
    ("SELECT person.name FROM person "
     "WHERE person.name IN ('ada', 'bo') AND person.age IS NOT NULL"),
    "SELECT * FROM person, movie",
]


@settings(max_examples=25, deadline=None)
@given(person_rows, movie_rows, cast_rows)
def test_executor_matches_reference(persons, movies, casts):
    db = build_db(persons, movies, casts)
    for sql in QUERIES:
        statement = parse_select(sql)
        plan = compile_select(statement, db)
        optimized = list(execute(plan, db))
        reference = reference_eval(db, sql)
        assert canonical(optimized) == canonical(reference), sql

"""Tests for the unified serving API (``repro.serve.api``): typed
request/response wire round trips, validation at the boundary, and the
deprecated engine entry points delegating to the one core path."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.answer import Answer
from repro.serve.api import (
    SearchRequest,
    SearchResponse,
    answer_from_dict,
    answer_to_dict,
)
from repro.serve.explain import StageTiming


class TestSearchRequest:
    def test_round_trip_defaults_elided(self):
        request = SearchRequest(query="hello")
        data = request.to_dict()
        assert data == {"query": "hello", "limit": 5}
        assert SearchRequest.from_dict(data) == request

    def test_round_trip_full(self):
        request = SearchRequest(query="q", limit=3, explain=True,
                                client_id="c1", timeout=2.5)
        rebuilt = SearchRequest.from_dict(
            json.loads(json.dumps(request.to_dict())))
        assert rebuilt == request

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchRequest(query=123)
        with pytest.raises(ValueError):
            SearchRequest(query="q", limit=-1)
        with pytest.raises(ValueError):
            SearchRequest(query="q", limit=True)
        with pytest.raises(ValueError):
            SearchRequest(query="q", timeout=0)
        with pytest.raises(ValueError):
            SearchRequest(query="q", client_id=7)

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            SearchRequest.from_dict({"query": "q", "surprise": 1})
        with pytest.raises(ValueError, match="query"):
            SearchRequest.from_dict({"limit": 3})
        with pytest.raises(ValueError):
            SearchRequest.from_dict(["not", "a", "dict"])
        with pytest.raises(ValueError):
            SearchRequest.from_dict({"query": "q", "timeout": "soon"})

    @given(query=st.text(max_size=40),
           limit=st.integers(min_value=0, max_value=50),
           explain=st.booleans(),
           client_id=st.none() | st.text(min_size=1, max_size=10))
    def test_round_trip_property(self, query, limit, explain, client_id):
        request = SearchRequest(query=query, limit=limit, explain=explain,
                                client_id=client_id)
        assert SearchRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))) == request


def _answer():
    return Answer(
        system="qunits-expert",
        atoms=frozenset({("movie", "title", "heat"),
                         ("person", "name", "al pacino")}),
        text="heat (1995)",
        score=0.75,
        provenance=(("definition", "movie_main_page"),
                    ("params", (("x", "Heat"),)),
                    ("rows", 12)),
    )


class TestSearchResponse:
    def test_answer_round_trip_is_lossless(self):
        answer = _answer()
        rebuilt = answer_from_dict(json.loads(json.dumps(
            answer_to_dict(answer))))
        assert rebuilt == answer
        assert rebuilt.provenance == answer.provenance  # tuples restored

    def test_answer_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError):
            answer_from_dict({"system": "x"})

    def test_response_round_trip(self):
        response = SearchResponse(
            query="q", answers=(_answer(),),
            timings=(StageTiming("segment", 0.001),
                     StageTiming("execute", 0.02)),
            cached=True, admitted=True, client_id="c9")
        rebuilt = SearchResponse.from_dict(
            json.loads(json.dumps(response.to_dict())))
        assert rebuilt == response

    def test_response_from_dict_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            SearchResponse.from_dict({"answers": []})
        with pytest.raises(ValueError):
            SearchResponse.from_dict("nope")


class TestDeprecatedEngineWrappers:
    """The four historical entry points still work — as thin warned
    wrappers whose results match the core execute() path."""

    def test_search_matches_execute(self, expert_engine):
        query = "movies"
        with pytest.warns(DeprecationWarning):
            old = expert_engine.search(query, limit=4)
        [response] = expert_engine.execute(
            [SearchRequest(query=query, limit=4)])
        assert tuple(old) == response.answers

    def test_search_many_matches_execute(self, expert_engine):
        queries = ["movies", "actors"]
        with pytest.warns(DeprecationWarning):
            old = expert_engine.search_many(queries, limit=3)
        responses = expert_engine.execute(
            [SearchRequest(query=query, limit=3) for query in queries])
        assert [tuple(answers) for answers in old] \
            == [response.answers for response in responses]

    def test_search_with_explanation_matches_execute(self, expert_engine):
        query = "movies"
        with pytest.warns(DeprecationWarning):
            old_answers, old_explanation = \
                expert_engine.search_with_explanation(query, limit=3)
        [response] = expert_engine.execute(
            [SearchRequest(query=query, limit=3, explain=True)])
        assert tuple(old_answers) == response.answers
        assert old_explanation.candidates == response.explanation.candidates

    def test_search_many_with_explanations_matches_execute(
            self, expert_engine):
        queries = ["movies", "actors"]
        with pytest.warns(DeprecationWarning):
            old = expert_engine.search_many_with_explanations(
                queries, limit=2)
        responses = expert_engine.execute(
            [SearchRequest(query=query, limit=2, explain=True)
             for query in queries])
        for (old_answers, old_explanation), response in zip(old, responses):
            assert tuple(old_answers) == response.answers
            assert old_explanation.query == response.explanation.query

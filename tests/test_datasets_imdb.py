"""Tests for the synthetic IMDb generator."""

import pytest

from repro.datasets.imdb import generate_imdb, imdb_schema, simplified_schema
from repro.datasets.imdb.generator import ImdbGenerator
from repro.errors import DatasetError


class TestSchemas:
    def test_fifteen_tables(self):
        # The paper: IMDbPy conversion yields 15 tables.
        assert len(imdb_schema().table_names) == 15

    def test_simplified_matches_figure2(self):
        schema = simplified_schema()
        assert set(schema.table_names) == {
            "person", "cast", "movie", "genre", "locations", "info",
        }
        movie = schema.table("movie")
        # Fig. 2: movie holds id references to genre, locations and info.
        refs = {fk.ref_table for fk in movie.foreign_keys}
        assert refs == {"genre", "locations", "info"}

    def test_searchable_columns_marked(self):
        schema = imdb_schema()
        assert schema.table("person").column("name").searchable
        assert schema.table("movie").column("title").searchable
        assert not schema.table("movie").column("votes").searchable


class TestGeneration:
    def test_deterministic(self):
        a = generate_imdb(scale=0.1, seed=5)
        b = generate_imdb(scale=0.1, seed=5)
        assert a.total_rows() == b.total_rows()
        assert a.table("movie").row(10) == b.table("movie").row(10)

    def test_seed_changes_filler_not_canon(self):
        a = generate_imdb(scale=0.1, seed=5)
        b = generate_imdb(scale=0.1, seed=6)
        assert a.lookup("movie", "title", "Star Wars") == \
               b.lookup("movie", "title", "Star Wars")
        assert a.total_rows() != b.total_rows() or \
               a.table("movie").row(30) != b.table("movie").row(30)

    def test_scale_grows_rows(self):
        small = generate_imdb(scale=0.1)
        large = generate_imdb(scale=0.3)
        assert large.row_count("movie") > small.row_count("movie")
        assert large.row_count("cast") > small.row_count("cast")

    def test_scale_validation(self):
        with pytest.raises(DatasetError):
            generate_imdb(scale=0)

    def test_generator_single_use(self):
        generator = ImdbGenerator(scale=0.1)
        generator.generate()
        with pytest.raises(DatasetError):
            generator.generate()

    def test_referential_integrity(self, imdb_db):
        assert imdb_db.check_foreign_keys() == []


class TestCanon:
    def test_paper_entities_present(self, imdb_db):
        for title in ("Star Wars", "Cast Away", "The Terminator",
                      "Tomb Raider", "Batman"):
            assert imdb_db.lookup("movie", "title", title), title
        for name in ("George Clooney", "Tom Hanks", "Julio Iglesias",
                     "Angelina Jolie"):
            assert imdb_db.lookup("person", "name", name), name

    def test_star_wars_cast(self, imdb_db):
        movie = imdb_db.lookup("movie", "title", "Star Wars")[0]
        cast_rows = imdb_db.lookup("cast", "movie_id", movie["id"])
        names = set()
        for row in cast_rows:
            person = imdb_db.table("person").by_primary_key(row["person_id"])
            names.add(person["name"])
        assert {"Mark Hamill", "Harrison Ford", "Carrie Fisher"} <= names

    def test_canon_persons_have_awards(self, imdb_db):
        tom = imdb_db.lookup("person", "name", "Tom Hanks")[0]
        assert imdb_db.lookup("award", "person_id", tom["id"])


class TestStructuralProperties:
    def test_every_movie_has_genre_and_location(self, imdb_db):
        # The Sec. 4.1 property that misleads data-driven derivation.
        movies_with_genre = {row["movie_id"]
                             for row in imdb_db.table("movie_genre")}
        movies_with_location = {row["movie_id"]
                                for row in imdb_db.table("movie_location")}
        all_movies = {row["id"] for row in imdb_db.table("movie")}
        assert movies_with_genre == all_movies
        assert movies_with_location == all_movies

    def test_every_movie_has_plot(self, imdb_db):
        plot_type = imdb_db.lookup("info_type", "name", "plot")[0]["id"]
        movies_with_plot = {
            row["movie_id"] for row in imdb_db.table("movie_info")
            if row["info_type_id"] == plot_type
        }
        assert movies_with_plot == {row["id"] for row in imdb_db.table("movie")}

    def test_plots_are_long_text(self, imdb_db):
        stats = imdb_db.statistics.column("movie_info", "info")
        assert stats.avg_text_length > 40

    def test_votes_skewed(self, imdb_db):
        votes = sorted((row["votes"] for row in imdb_db.table("movie")),
                       reverse=True)
        # Zipf-ish: the head dominates the median.
        assert votes[0] > 5 * votes[len(votes) // 2]

    def test_titles_unique(self, imdb_db):
        titles = [row["title"].lower() for row in imdb_db.table("movie")]
        assert len(titles) == len(set(titles))

    def test_names_unique(self, imdb_db):
        names = [row["name"].lower() for row in imdb_db.table("person")]
        assert len(names) == len(set(names))

"""EXP-QL — the Sec. 5.2 query-log statistics and benchmark workload."""

from repro.eval.figures import render_sec52_statistics
from repro.utils.tables import ascii_table


def test_log_analysis(benchmark, bench_analyzer, bench_log, write_artifact):
    stats = benchmark(bench_analyzer.statistics, bench_log)

    # The paper's in-text numbers (over distinct queries).
    assert stats.fraction("single_entity") >= 0.30          # ">= 36%"
    assert 0.12 <= stats.fraction("entity_attribute") <= 0.28  # "20%"
    assert stats.fraction("multi_entity") <= 0.08           # "~2%"
    assert stats.fraction("complex") <= 0.04                # "<2%"
    assert stats.movie_related_fraction >= 0.85             # "~93%"

    write_artifact("sec52_querylog.txt", render_sec52_statistics(stats))


def test_benchmark_workload_construction(benchmark, bench_analyzer, bench_log,
                                         write_artifact):
    workload = benchmark(bench_analyzer.benchmark_workload, bench_log)
    assert len(workload) == 28                # 14 templates x 2 queries
    assert len({q.template for q in workload}) == 14

    rows = [(q.template, q.query, q.query_class) for q in workload]
    write_artifact(
        "sec52_workload.txt",
        ascii_table(("template", "query", "class"), rows,
                    title="The 28-query movie querylog benchmark (EXP-QL)"),
    )


def test_template_extraction_throughput(benchmark, bench_analyzer, bench_log):
    frequencies = benchmark(bench_analyzer.template_frequencies, bench_log)
    assert sum(frequencies.values()) == bench_log.total_queries

"""EXP-T1 — Table 1: the information-needs vs keyword-queries user study."""

from repro.eval.figures import render_table1
from repro.eval.userstudy import PAPER_SUMMARY, UserStudySimulator


def test_userstudy_simulation(benchmark, write_artifact):
    simulator = UserStudySimulator(seed=31)
    result = benchmark(simulator.run)

    # The paper's aggregate observations must hold.
    assert result.total_queries == PAPER_SUMMARY["total_queries"]
    assert result.is_many_to_many()
    singles = result.single_entity_queries()
    assert 5 <= len(singles) <= 15  # paper: 10 of 25
    under = result.underspecified_single_entity()
    assert len(under) >= len(singles) * 0.4  # paper: 8 of 10

    write_artifact("table1_userstudy.txt", render_table1(result))

"""ABL-E — qunit evolution: churn vs smoothing (Sec. 7 future work).

As user interests drift across log epochs, how aggressively should the
qunit set track demand?  Sweeps the exponential smoothing factor and
reports total churn (definitions added+dropped) and how many definitions
survive to the end.  Low smoothing = stable but stale; high smoothing =
responsive but thrashing.
"""

from repro.core.evolution import QunitEvolutionTracker
from repro.utils.rng import DeterministicRng
from repro.utils.tables import ascii_table

SMOOTHINGS = (0.2, 0.5, 0.8)
N_EPOCHS = 6


def epochs_for(experiment):
    """Six epochs of drifting demand sampled from the synthetic log."""
    rng = DeterministicRng(77)
    entries = sorted(experiment.log.as_list())
    epochs = []
    for epoch_index in range(N_EPOCHS):
        # Drift: each epoch emphasizes a moving window of the log.
        window = len(entries) // 3
        start = (epoch_index * window // 2) % max(1, len(entries) - window)
        chunk = entries[start:start + window]
        epochs.append([(q, f) for q, f in chunk if rng.coin(0.8)])
    return epochs


def test_smoothing_sweep(benchmark, experiment, write_artifact):
    epochs = epochs_for(experiment)

    def sweep():
        rows = []
        for smoothing in SMOOTHINGS:
            tracker = QunitEvolutionTracker(experiment.database,
                                            smoothing=smoothing,
                                            drop_below=0.08)
            for entries in epochs:
                if entries:
                    tracker.observe_epoch(entries)
            rows.append((smoothing, tracker.total_churn(),
                         len(tracker.definitions)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(
        "ablation_evolution.txt",
        ascii_table(("smoothing", "total churn", "surviving definitions"),
                    rows, title="ABL-E: qunit evolution vs smoothing"),
    )
    # Faster smoothing can only churn as much or more.
    churns = [churn for _s, churn, _n in rows]
    assert churns[-1] >= churns[0]

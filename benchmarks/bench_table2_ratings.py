"""EXP-T2 — Table 2: the relevance scale, exercised by the rater panel."""

from collections import Counter

from repro.eval.figures import render_table2
from repro.eval.needs import NEEDS
from repro.eval.relevance import SCALE, SimulatedRaterPool
from repro.utils.tables import ascii_table


def test_rating_throughput(benchmark, experiment, write_artifact):
    """Benchmark the rater panel on a realistic answer; record the observed
    distribution of survey options over the Fig. 3 experiment's answers."""
    pool = SimulatedRaterPool(20, seed=99)
    engine = experiment.engines["expert"]
    segmented = engine.segment("star wars cast")
    gold = experiment.need_model.gold_atoms(NEEDS["cast"], segmented)
    answer = engine.best("star wars cast")
    ratings = benchmark(pool.rate, answer, gold)
    assert len(ratings) == len(pool)

    # Observed option distribution over every system x query of EXP-F3.
    observed: Counter = Counter()
    systems = experiment.systems()
    for benchmark_query in experiment.workload:
        seg = engine.segment(benchmark_query.query)
        golds = experiment._rater_golds(0, seg, pool)
        for system in systems.values():
            system_answer = system.best(benchmark_query.query)
            for rater, rater_gold in zip(pool.raters, golds):
                observed[rater.rate(system_answer, rater_gold).label] += 1
    total = sum(observed.values())
    rows = [(label, f"{score:.1f}", f"{observed.get(label, 0) / total:.1%}")
            for score, label in SCALE]
    distribution = ascii_table(("survey option", "score", "observed share"),
                               rows, title="Observed option usage (EXP-T2)")
    write_artifact("table2_ratings.txt",
                   render_table2() + "\n\n" + distribution)

"""ABL-F — relevance feedback on the flat qunit collection.

Sec. 3: the qunit separation makes the system "easier to extend and
enhance with additional IR methods for ranking, such as relevance
feedback."  This ablation measures that: on *degraded* queries (misspelled
entity names, which bypass structural matching and land on the IR
fallback), does Rocchio pseudo-relevance feedback recover the right
instance more often than plain BM25?
"""

from repro.ir.feedback import RocchioFeedback
from repro.utils.rng import DeterministicRng
from repro.utils.tables import ascii_table

# (clean entity, the instance that should be found)
TARGETS = [
    ("star wars", "movie_main_page::star_wars"),
    ("cast away", "movie_main_page::cast_away"),
    ("the terminator", "movie_main_page::the_terminator"),
    ("george clooney", "person_main_page::george_clooney"),
    ("tom hanks", "person_main_page::tom_hanks"),
    ("angelina jolie", "person_main_page::angelina_jolie"),
]


def misspell(text: str, rng: DeterministicRng) -> str:
    letters = list(text)
    positions = [i for i, ch in enumerate(letters) if ch.isalpha()]
    index = rng.choice(positions)
    if rng.coin(0.5):
        del letters[index]
    else:
        letters.insert(index, letters[index])
    return "".join(letters)


def hit_at_k(ranked_ids, target, k=3):
    prefix = target.split("::")[1]
    return any(prefix in doc_id for doc_id in ranked_ids[:k])


def test_feedback_on_degraded_queries(benchmark, experiment, write_artifact):
    searcher = experiment.collections["expert"].searcher()
    feedback = RocchioFeedback(beta=0.8, expansion_terms=6)
    rng = DeterministicRng(41)

    def run():
        plain_hits = 0
        feedback_hits = 0
        total = 0
        for clean, target in TARGETS:
            for _variant in range(3):
                query = misspell(clean, rng)
                total += 1
                plain = [h.doc_id for h in searcher.search(query, limit=5)]
                expanded = [h.doc_id for h in feedback.pseudo_feedback_search(
                    searcher, query, assume_top=3, limit=5)]
                plain_hits += hit_at_k(plain, target)
                feedback_hits += hit_at_k(expanded, target)
        return plain_hits, feedback_hits, total

    plain_hits, feedback_hits, total = benchmark.pedantic(run, rounds=1,
                                                          iterations=1)
    write_artifact(
        "ablation_feedback.txt",
        ascii_table(
            ("retrieval", "hit@3 on misspelled queries"),
            [("plain BM25", f"{plain_hits}/{total}"),
             ("pseudo-relevance feedback", f"{feedback_hits}/{total}")],
            title="ABL-F: Rocchio feedback on the qunit instance collection",
        ),
    )
    # Feedback must not catastrophically hurt; typically it helps or ties.
    assert feedback_hits >= plain_hits - 2

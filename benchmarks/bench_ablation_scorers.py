"""ABL-S — IR scorer choice inside the qunit paradigm.

The paper's Sec. 3 argument is that separating ranking from the database
lets any IR machinery slot in unchanged.  This ablation swaps the ranking
function under the same expert qunit collection — TF-IDF, BM25, and BM25
with a popularity prior (the ObjectRank idea as a document feature) — and
measures workload relevance.  Expectation: the structural pipeline does
most of the work (fully-bound queries never reach the scorer), so scorer
choice moves the needle only on the IR-ranked minority — which is itself
a finding supporting the architecture.
"""

from repro.core.search import QunitSearchEngine
from repro.eval.relevance import SimulatedRaterPool
from repro.ir.scoring import Bm25Scorer, PriorWeightedScorer, TfIdfScorer
from repro.utils.tables import ascii_table


def test_scorer_sweep(benchmark, experiment, write_artifact):
    collection = experiment.collections["expert"]
    priors = collection.popularity_priors()
    scorers = (
        ("tf-idf", TfIdfScorer()),
        ("bm25", Bm25Scorer()),
        ("bm25+popularity", PriorWeightedScorer(Bm25Scorer(), priors)),
    )

    def sweep():
        rows = []
        for label, scorer in scorers:
            engine = QunitSearchEngine(collection, flavor="expert",
                                       scorer=scorer)
            score = experiment.evaluate_system(
                engine, name=f"expert/{label}",
                pool=SimulatedRaterPool(8, seed=experiment.seed + 3))
            rows.append((label, round(score.mean_score, 3)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(
        "ablation_scorers.txt",
        ascii_table(("scorer", "mean relevance"), rows,
                    title="ABL-S: IR scorer choice under the expert qunit set"),
    )
    values = [value for _label, value in rows]
    # The structural pipeline dominates: scorer choice shifts results by
    # at most a modest margin.
    assert max(values) - min(values) < 0.2

"""ABL-L — how much query log does rollup derivation need?

Sweeps the number of distinct log queries fed to the Sec. 4.2 deriver and
tracks (a) how many definitions emerge, (b) how much of the benchmark
workload's template demand the derived set covers.  Expectation: coverage
rises quickly and saturates — rollup needs surprisingly little log, since
it aggregates by schema element, not by query string.
"""

from repro.core.derivation import QueryLogDeriver
from repro.core.utility import UtilityModel
from repro.datasets.querylog import QueryLogGenerator
from repro.utils.tables import ascii_table

LOG_SIZES = (60, 120, 240, 480)


def test_log_size_sweep(benchmark, experiment, bench_analyzer, write_artifact):
    utility = UtilityModel(experiment.database)
    template_frequencies = bench_analyzer.template_frequencies(experiment.log)

    def sweep():
        rows = []
        coverages = []
        for size in LOG_SIZES:
            generator = QueryLogGenerator(experiment.database,
                                          seed=experiment.seed + 1)
            log = generator.generate(min(size, generator.recommended_unique()))
            definitions = QueryLogDeriver(experiment.database).derive(
                log.as_list())
            coverage = max(
                utility.demand_utility(definition, template_frequencies)
                for definition in definitions
            )
            coverages.append(coverage)
            rows.append((log.unique_queries, len(definitions),
                         round(coverage, 3)))
        return rows, coverages

    rows, coverages = benchmark.pedantic(sweep, rounds=1, iterations=1)

    write_artifact(
        "ablation_logsize.txt",
        ascii_table(("distinct queries", "definitions", "best demand coverage"),
                    rows, title="ABL-L: rollup derivation vs log size"),
    )
    # Coverage is (weakly) non-decreasing and saturates.
    assert coverages[-1] >= coverages[0]


def test_rollup_derivation_latency(benchmark, experiment):
    deriver = QueryLogDeriver(experiment.database)
    definitions = benchmark(deriver.derive, experiment.log.as_list())
    assert definitions

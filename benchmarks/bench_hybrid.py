"""HYBRID — the retrieval-quality delta of rank fusion, and its price.

Every prior benchmark defends *speed* under a rank-identity constraint;
this one measures the first intentional rank change: the ``"hybrid"``
strategy (lexical top-k fused with char-n-gram cosine neighbours by
reciprocal-rank fusion, :mod:`repro.ir.vector`).  The paper's central
scenario is the query whose phrasing misses the decorated instance text,
so the eval set is built exactly from that failure mode:

1. **Gold** — for each clean entity query, the lexical top-k over the
   flat instance collection (the ranking everyone agrees on when the
   words match).
2. **Paraphrase** — each query is lexically broken by one seeded
   character edit per token (:mod:`repro.eval.paraphrase`): the
   inverted index loses the token match, the n-gram embedder mostly
   does not.
3. **Measure** — nDCG@k and recall@k of the lexical and hybrid
   strategies *on the paraphrased queries* against the clean-query gold,
   plus cold/warm wall-clock for both.

``BENCH_hybrid.json`` carries the headline numbers the nightly gate
tracks: ``ndcg_hybrid`` / ``ndcg_delta`` (higher is better — the
quality claim) and ``hybrid_warm_s`` / ``latency_ratio`` (lower is
better — fusion must not price itself out of serving; warm includes the
searcher result caches, matching every other benchmark's steady-state
definition).  The quality assertion is hard in both modes: hybrid nDCG
must be *strictly* above lexical on the paraphrased set.
"""

import json
import time

from conftest import SEED

from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.eval.paraphrase import paraphrase_query
from repro.ir.metrics import mean, ndcg, recall_at_k
from repro.ir.retrieval import Searcher

LIMIT = 10


def _entity_queries(db, per_table: int) -> list[str]:
    """Entity-heavy clean queries sampled deterministically from the
    database — the phrasing-sensitive workload hybrid exists for."""
    queries = ["star wars cast", "science fiction movies",
               "ocean adventure film"]
    for table, column, suffix in (("movie", "title", " cast"),
                                  ("person", "name", " movies")):
        rows = list(db.table(table))
        step = max(1, len(rows) // per_table)
        for row in rows[::step][:per_table]:
            queries.append(f"{row[column]}{suffix}")
    return queries


def _gains(ranked_ids: list[str], gold: list[str]) -> list[float]:
    """Graded gains of a ranking against the gold list (gold rank ``i``
    carries gain ``k - i``; unknown documents carry zero)."""
    grade = {doc_id: float(len(gold) - i) for i, doc_id in enumerate(gold)}
    return [grade.get(doc_id, 0.0) for doc_id in ranked_ids]


def test_hybrid_quality_and_latency(bench_full, bench_db, bench_scale,
                                    write_artifact):
    per_table = 60 if bench_full else 15
    instances = 300 if bench_full else 100
    collection = QunitCollection(bench_db, imdb_expert_qunits(),
                                 max_instances_per_definition=instances)
    snapshot = collection.global_index().snapshot()
    clean = _entity_queries(bench_db, per_table)
    perturbed = [paraphrase_query(query, seed=SEED) for query in clean]

    lexical = Searcher(snapshot, strategy="auto")
    hybrid = Searcher(snapshot, strategy="hybrid")

    # Gold: the lexical ranking of the *clean* phrasing.  Queries whose
    # clean form already matches nothing carry no signal — drop them.
    gold_lists = [[hit.doc_id for hit in hits]
                  for hits in lexical.search_many(clean, LIMIT)]
    kept = [i for i, gold in enumerate(gold_lists) if gold]
    eval_queries = [perturbed[i] for i in kept]

    def timed_pass(searcher):
        start = time.perf_counter()
        hit_lists = searcher.search_many(eval_queries, LIMIT)
        return time.perf_counter() - start, \
            [[hit.doc_id for hit in hits] for hits in hit_lists]

    lexical_cold_s, lexical_ids = timed_pass(lexical)
    lexical_warm_s, _ = timed_pass(lexical)
    hybrid_cold_s, hybrid_ids = timed_pass(hybrid)
    hybrid_warm_s, _ = timed_pass(hybrid)

    def scores(id_lists):
        ndcgs, recalls = [], []
        for i, ranked in zip(kept, id_lists):
            gold = gold_lists[i]
            ndcgs.append(ndcg(_gains(ranked, gold), LIMIT))
            recalls.append(recall_at_k(ranked, set(gold), LIMIT))
        return mean(ndcgs), mean(recalls)

    ndcg_lexical, recall_lexical = scores(lexical_ids)
    ndcg_hybrid, recall_hybrid = scores(hybrid_ids)
    latency_ratio = hybrid_warm_s / lexical_warm_s if lexical_warm_s \
        else 0.0

    report = {
        "scale": bench_scale,
        "documents": snapshot.document_count,
        "queries": len(eval_queries),
        "limit": LIMIT,
        "ndcg_lexical": round(ndcg_lexical, 4),
        "ndcg_hybrid": round(ndcg_hybrid, 4),
        "ndcg_delta": round(ndcg_hybrid - ndcg_lexical, 4),
        "recall_lexical": round(recall_lexical, 4),
        "recall_hybrid": round(recall_hybrid, 4),
        "lexical_cold_s": round(lexical_cold_s, 6),
        "lexical_warm_s": round(lexical_warm_s, 6),
        "hybrid_cold_s": round(hybrid_cold_s, 6),
        "hybrid_warm_s": round(hybrid_warm_s, 6),
        "latency_ratio": round(latency_ratio, 3),
    }
    write_artifact("BENCH_hybrid.json", json.dumps(report, indent=2))

    # The quality claim — the reason the hybrid strategy exists: on
    # lexically-broken phrasings it must strictly beat pure lexical
    # retrieval against the clean-query gold.  Hard in both modes.
    assert ndcg_hybrid > ndcg_lexical, (
        f"hybrid nDCG@{LIMIT} must exceed lexical on paraphrased "
        f"queries, got {ndcg_hybrid:.4f} vs {ndcg_lexical:.4f}")
    assert recall_hybrid >= recall_lexical
    if bench_full:
        # Steady-state price cap: fused serving at most 2x lexical.
        assert hybrid_warm_s <= 2 * lexical_warm_s, (
            f"hybrid warm pass must stay within 2x lexical, got "
            f"{hybrid_warm_s:.4f}s vs {lexical_warm_s:.4f}s")

"""EXP-REF — session refinement statistics (supporting evidence).

The paper asserts "a majority of users' queries are underspecified" and
builds Sec. 4.2's rollup on the idea that an underspecified query's qunit
aggregates its specializations.  The session log makes both measurable:
how often do users refine, do refiners start underspecified, and which
attributes do they add?  The per-anchor specialization weights are exactly
the link weights rollup derives from the aggregate log.
"""

from repro.datasets.querylog.sessions import SessionAnalyzer, SessionLogGenerator
from repro.utils.tables import ascii_table


def test_refinement_statistics(benchmark, bench_db, write_artifact):
    generator = SessionLogGenerator(bench_db, seed=17)
    sessions = generator.generate(500)
    analyzer = SessionAnalyzer(bench_db)

    stats = benchmark(analyzer.statistics, sessions)

    assert stats.refinement_fraction > 0.4
    assert stats.started_underspecified_fraction > 0.7

    weights = analyzer.rollup_weights(sessions)
    rows = [
        ("sessions", stats.n_sessions),
        ("multi-query sessions", f"{stats.multi_query_fraction:.1%}"),
        ("refining (of multi-query)", f"{stats.refinement_fraction:.1%}"),
        ("refiners starting underspecified",
         f"{stats.started_underspecified_fraction:.1%}"),
    ]
    header = ascii_table(("statistic", "value"), rows,
                         title="EXP-REF: session refinement behaviour")
    spec_rows = [(anchor, ", ".join(
        f"{name} ({count})" for name, count in counter.most_common(4)))
        for anchor, counter in sorted(weights.items())]
    detail = ascii_table(("anchor entity", "top specializations"),
                         spec_rows,
                         title="Per-anchor specializations (rollup's evidence)")
    write_artifact("sessions_refinement.txt", header + "\n\n" + detail)

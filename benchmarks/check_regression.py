#!/usr/bin/env python3
"""CI entry point for the benchmark perf-regression check.

Runs after a full-scale benchmark pass (``pytest benchmarks -q
--bench-full --benchmark-enable``) and compares the fresh
``benchmarks/results/BENCH_*.json`` reports against the committed
baselines in ``benchmarks/baselines/``, failing (exit 1) when any
tracked metric regressed by more than the threshold.  All the logic
lives in :mod:`repro.bench.regression` (shared with the ``repro
bench-diff`` CLI subcommand); this wrapper only supplies the repo-layout
default directories so the nightly workflow can invoke it with no
arguments::

    python benchmarks/check_regression.py
    python benchmarks/check_regression.py <baseline_dir> <current_dir>
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.bench.regression import main
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.regression import main

def _has_positional(argv: list[str]) -> bool:
    """Whether ``argv`` names any directory, skipping option values
    (``--threshold 0.5`` is two option tokens, not a positional)."""
    expect_value = False
    for arg in argv:
        if expect_value:
            expect_value = False
            continue
        if arg == "--threshold":
            expect_value = True
            continue
        if arg.startswith("-"):
            continue
        return True
    return False


if __name__ == "__main__":
    argv = sys.argv[1:]
    if not _has_positional(argv):
        argv = [str(REPO_ROOT / "benchmarks" / "baselines"),
                str(REPO_ROOT / "benchmarks" / "results"), *argv]
    sys.exit(main(argv))

"""PERF — live collections: delta saves, lazy cold starts, online ingest.

Guards the three numbers that justify the collection-level delta
journal and lazy loading (``repro.core.store``; see
``docs/PERSISTENCE.md`` for the byte-level spec):

- **Delta-save speedup** — appending K new documents as one journal
  transaction (``CollectionWriter.commit``) versus rewriting the whole
  generation (``SaveOptions(mode="full")``) from the same in-memory
  state.  The journal's reason to exist: the append is O(new
  documents), the rewrite is O(corpus).
- **Lazy cold-start pin count** — snapshot bodies materialized by
  ``LoadOptions(lazy=True)`` at load time (must be 0; the eager count
  is reported next to it) and after the first query (demand loads only
  what the query touched).
- **Read p99 during concurrent ingest** — query latency over a live
  collection while a background writer stages documents and swaps
  generations under it, next to the same workload with no writer.
  Reads keep serving the old generation until each swap lands
  (rank-correctness is asserted in ``tests/test_core_store.py``; this
  file measures what the swaps cost the readers).

Writes ``BENCH_ingest.json``; ``delta_save_speedup`` and
``lazy_cold_pins`` are guarded by the nightly regression gate
(``repro.bench.regression``).  The p99s are reported but not gated —
cross-thread scheduling jitter on shared CI runners swamps the 25%
regression threshold.
"""

import json
import threading
import time

import pytest

from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine, SearchRequest
from repro.core.store import CollectionStore, LoadOptions, SaveOptions
from repro.ir.documents import Document

PROBES = ("star wars cast", "george clooney", "tom hanks movies")


def _ingest_documents(count: int, start: int = 0) -> list[Document]:
    return [
        Document.create(
            f"ingest:doc:{start + i}",
            {"body": f"live ingest document {start + i} "
                     f"freshly staged content batch"})
        for i in range(count)
    ]


def _p99_ms(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))] * 1e3


@pytest.fixture(scope="module")
def ingest_collection(bench_db, bench_full):
    max_instances = 150 if bench_full else 60
    return QunitCollection(bench_db, imdb_expert_qunits(),
                           max_instances_per_definition=max_instances)


def test_ingest_delta_vs_full(benchmark, write_artifact, bench_full,
                              bench_db, bench_scale, ingest_collection,
                              tmp_path_factory):
    """The three live-collection numbers, measured end to end."""
    out_dir = tmp_path_factory.mktemp("ingest") / "collection"
    store = CollectionStore(out_dir)
    collection = ingest_collection
    definition = next(iter(collection.definitions))
    batch = 40 if bench_full else 10
    ingest_commits = 6 if bench_full else 2
    read_rounds = 30 if bench_full else 5

    def measure():
        # Baseline generation on disk (vectors off: embedding cost is
        # a constant on both sides and would only blur the journal's
        # O(new docs) vs O(corpus) comparison).
        store.save(collection, SaveOptions(vectors=False, mode="full"))

        # Delta path: K staged documents -> one journal transaction.
        writer = store.writer(collection)
        for document in _ingest_documents(batch):
            writer.stage(definition, document)
        start = time.perf_counter()
        report = writer.commit()
        delta_save_s = time.perf_counter() - start
        assert report.mode == "delta"
        assert report.appended_documents == batch

        # Full path: rewriting the same grown collection from scratch.
        start = time.perf_counter()
        full = store.save(collection,
                          SaveOptions(vectors=False, mode="full"))
        full_save_s = time.perf_counter() - start
        assert full.mode == "full"

        # Lazy vs eager cold start: what does load() actually pin?
        start = time.perf_counter()
        lazy = store.load(bench_db, LoadOptions(lazy=True))
        lazy_load_s = time.perf_counter() - start
        lazy_cold_pins = len(lazy._loaded_snapshots)
        lazy_engine = QunitSearchEngine(lazy, flavor="expert")
        lazy_engine.execute([SearchRequest(query=PROBES[0], limit=3)])
        lazy_first_query_loads = lazy.lazy_loads
        lazy.close()

        start = time.perf_counter()
        eager = store.load(bench_db, LoadOptions(lazy=False))
        eager_load_s = time.perf_counter() - start
        eager_cold_pins = len(eager._loaded_snapshots)
        eager.close()

        return (delta_save_s, full_save_s, lazy_load_s, lazy_cold_pins,
                lazy_first_query_loads, eager_load_s, eager_cold_pins)

    (delta_save_s, full_save_s, lazy_load_s, lazy_cold_pins,
     lazy_first_query_loads, eager_load_s, eager_cold_pins) = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    # Read latency with and without a writer swapping generations.
    def read_p99(with_ingest: bool) -> float:
        served = store.load(bench_db, LoadOptions(lazy=True))
        engine = QunitSearchEngine(served, flavor="expert")
        requests = [SearchRequest(query=query, limit=3) for query in PROBES]
        engine.execute(requests)  # warm the lazy loads out of the timing
        stop = threading.Event()
        errors: list[BaseException] = []

        def ingest_loop():
            writer = CollectionStore(store.path).writer(served)
            try:
                for commit in range(ingest_commits):
                    for document in _ingest_documents(
                            batch, start=10_000 + commit * batch):
                        writer.stage(definition, document)
                    writer.commit()
            except BaseException as exc:  # surfaced after the joins
                errors.append(exc)
            finally:
                stop.set()

        worker = None
        if with_ingest:
            worker = threading.Thread(target=ingest_loop, daemon=True)
            worker.start()
        latencies = []
        for _ in range(read_rounds):
            for request in requests:
                start = time.perf_counter()
                responses = engine.execute([request])
                latencies.append(time.perf_counter() - start)
                assert responses[0].answers
        if worker is not None:
            stop.wait()
            worker.join()
            assert not errors, errors
        served.close()
        return _p99_ms(latencies)

    quiet_p99_ms = read_p99(with_ingest=False)
    ingest_p99_ms = read_p99(with_ingest=True)

    report = {
        "scale": bench_scale,
        "ingest_batch": batch,
        "ingest_commits": ingest_commits,
        "delta_save_s": round(delta_save_s, 6),
        "full_save_s": round(full_save_s, 6),
        "delta_save_speedup": round(full_save_s / delta_save_s, 3),
        "lazy_load_s": round(lazy_load_s, 6),
        "eager_load_s": round(eager_load_s, 6),
        "lazy_cold_pins": lazy_cold_pins,
        "eager_cold_pins": eager_cold_pins,
        "lazy_first_query_loads": lazy_first_query_loads,
        "read_p99_quiet_ms": round(quiet_p99_ms, 3),
        "read_p99_during_ingest_ms": round(ingest_p99_ms, 3),
    }
    write_artifact("BENCH_ingest.json", json.dumps(report, indent=2))

    # Laziness is absolute, not statistical — assert it at every scale.
    assert lazy_cold_pins == 0
    assert eager_cold_pins >= 1 + len(ingest_collection.definitions)
    assert 0 < lazy_first_query_loads <= eager_cold_pins
    if bench_full:
        # The journal's acceptance bar: appending a small batch must
        # beat rewriting the generation.  Full scale only — at smoke
        # sizes both sides are milliseconds of filesystem noise.
        assert delta_save_s < full_save_s

"""Shared benchmark fixtures.

Expensive artifacts (database, query log, the Figure 3 experiment) are
session-scoped so every bench file reuses them.  Each benchmark writes its
reproduced table/figure to ``benchmarks/results/`` so the artifacts survive
the run (stdout is captured by pytest-benchmark).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.datasets.imdb import generate_imdb
from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator
from repro.eval.harness import ResultQualityExperiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# The canonical benchmark configuration (kept in one place so every bench
# file reports against the same data).
SCALE = 0.3
SEED = 7


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_artifact(results_dir):
    """Write (and echo) a reproduced table/figure."""

    def _write(name: str, content: str) -> None:
        path = results_dir / name
        path.write_text(content + "\n")
        print(f"\n[artifact -> {path}]\n{content}")

    return _write


@pytest.fixture(scope="session")
def bench_db():
    return generate_imdb(scale=SCALE, seed=SEED)


@pytest.fixture(scope="session")
def bench_log(bench_db):
    generator = QueryLogGenerator(bench_db, seed=SEED + 1)
    return generator.generate(generator.recommended_unique())


@pytest.fixture(scope="session")
def bench_analyzer(bench_db):
    return QueryLogAnalyzer(bench_db)


@pytest.fixture(scope="session")
def experiment():
    """The fully built Figure 3 experiment (shared by several benches)."""
    exp = ResultQualityExperiment(scale=SCALE, seed=SEED, n_raters=20,
                                  n_queries=25)
    exp.setup()
    return exp

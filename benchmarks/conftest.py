"""Shared benchmark fixtures.

Expensive artifacts (database, query log, the Figure 3 experiment) are
session-scoped so every bench file reuses them.  Each benchmark writes its
reproduced table/figure to ``benchmarks/results/`` so the artifacts survive
the run (stdout is captured by pytest-benchmark).

Smoke mode
----------

Every test collected here is marked ``bench``.  Without ``--bench-full``
(the tier-1 default) the fixtures shrink to smoke sizes and pytest-benchmark
is disabled via ``addopts = --benchmark-disable``, so the whole directory
runs in seconds while still exercising all the perf code.  Full-scale runs:

    PYTHONPATH=src python -m pytest benchmarks --bench-full --benchmark-enable
"""

from __future__ import annotations

import pathlib

import pytest

from repro.datasets.imdb import generate_imdb
from repro.datasets.querylog import QueryLogAnalyzer, QueryLogGenerator
from repro.eval.harness import ResultQualityExperiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# The canonical benchmark configuration (kept in one place so every bench
# file reports against the same data).  Smoke mode shrinks sizes but keeps
# the same seed so results stay deterministic.
SCALE = 0.3
SEED = 7
SMOKE_SCALE = 0.15


def pytest_collection_modifyitems(config, items):
    bench_dir = pathlib.Path(__file__).parent
    for item in items:
        if bench_dir in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_full(request) -> bool:
    """True when --bench-full was given (full-scale data sizes)."""
    return request.config.getoption("--bench-full")


@pytest.fixture(scope="session")
def bench_scale(bench_full) -> float:
    return SCALE if bench_full else SMOKE_SCALE


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_artifact(results_dir, bench_full):
    """Write (and echo) a reproduced table/figure.

    Smoke runs write to ``*.smoke.txt`` so they never clobber full-scale
    artifacts.
    """

    def _write(name: str, content: str) -> None:
        if not bench_full:
            stem, dot, suffix = name.rpartition(".")
            name = f"{stem}.smoke.{suffix}" if dot else f"{name}.smoke"
        path = results_dir / name
        path.write_text(content + "\n")
        print(f"\n[artifact -> {path}]\n{content}")

    return _write


@pytest.fixture(scope="session")
def bench_db(bench_scale):
    return generate_imdb(scale=bench_scale, seed=SEED)


@pytest.fixture(scope="session")
def bench_log(bench_db):
    generator = QueryLogGenerator(bench_db, seed=SEED + 1)
    return generator.generate(generator.recommended_unique())


@pytest.fixture(scope="session")
def bench_analyzer(bench_db):
    return QueryLogAnalyzer(bench_db)


@pytest.fixture(scope="session")
def experiment(bench_full, bench_scale):
    """The fully built Figure 3 experiment (shared by several benches)."""
    if bench_full:
        exp = ResultQualityExperiment(scale=bench_scale, seed=SEED,
                                      n_raters=20, n_queries=25)
    else:
        exp = ResultQualityExperiment(scale=bench_scale, seed=SEED,
                                      n_raters=6, n_queries=8,
                                      max_instances=60)
    exp.setup()
    return exp

"""SERVING — the asyncio HTTP front end's micro-batching economics.

The staged pipeline (``repro.serve``) is batch-native: one segmentation
call, one matcher call, retrieval grouped per target index.  The HTTP
front end (``repro.serve.server``) only collects that win if concurrent
requests from independent connections actually meet in one pipeline
run — which is exactly what its :class:`~repro.serve.batcher.
MicroBatcher` arranges.  This benchmark measures the end-to-end effect
under the serving conditions the front end was built for: a closed-loop
fleet of clients replaying session-structured Zipf traffic
(:mod:`repro.datasets.querylog.sessions`) against a live server socket.

Two arms, identical except for batching:

- **batched** — the production configuration (2 ms window, batches up
  to 32), requests coalesce into micro-batches;
- **unbatched** — window 0 / batch size 1, the same server answering
  one request per engine call (the classical thread-per-request shape).

Both arms share one warmed :class:`~repro.core.QunitCollection`
(searcher pool, indexes) and get a fresh engine — hence a fresh result
cache seeded with the same Zipf-head admission policy — so the only
difference between them is whether concurrent requests meet in a batch.

``BENCH_serving.json`` records sustained QPS, p50/p99 latency, the
cache hit rate next to the workload's repetition-rate ceiling, and the
headline ``speedup_batched_qps`` ratio guarded by the nightly
perf-regression job (``repro.bench.regression``); full-scale runs also
assert the serving claim outright: batched throughput at least 1.2x
unbatched.  Reproduce interactively with ``python -m repro loadtest
--compare-unbatched``.

A second sweep measures the **prefork worker tier**
(``repro.serve.workers``): the same closed-loop workload against the
same front end, with whole micro-batches dispatched to N pipeline
worker processes over shared mmap snapshots.  ``qps_workers_N`` and
the headline ``worker_scaling_4x`` ratio land in the same artifact;
full-scale runs on a >= 4-core machine assert workers=4 sustains at
least 2.0x the single-worker QPS.  Reproduce with ``python -m repro
loadtest --workers 4``.
"""

import asyncio
import json

from conftest import SEED

from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine
from repro.datasets.querylog import SessionLogGenerator, zipf_head
from repro.serve.api import SearchRequest
from repro.serve.client import build_session_workload, run_load_in_process
from repro.serve.pipeline import EngineConfig
from repro.serve.server import SearchServer, ServerConfig

WINDOW = 0.002
MAX_BATCH = 32
LIMIT = 5


async def _serve_arm(engine, config, workload):
    # The fleet runs in a child process: in-process clients share the
    # server's event loop and GIL, so client-side JSON/socket work would
    # contaminate the very serving numbers under measurement.
    async with SearchServer(engine, config) as server:
        host, port = server.address
        return await run_load_in_process(host, port, workload, limit=LIMIT)


def test_serving_micro_batching(bench_full, bench_db, bench_scale,
                                write_artifact):
    sessions_n, clients, instances = (400, 32, 150) if bench_full \
        else (120, 16, 60)
    generator = SessionLogGenerator(bench_db, seed=SEED + 3)
    sessions = generator.generate(sessions_n)
    log = generator.as_query_log(sessions)
    workload = build_session_workload(sessions, clients)
    total = sum(len(stream) for stream in workload)

    collection = QunitCollection(bench_db, imdb_expert_qunits(),
                                 max_instances_per_definition=instances)
    engine_config = EngineConfig(
        result_cache_size=512,
        cache_admission=zipf_head(log, 0.5).__contains__)

    # Warm the shared substrate (searcher pool, indexes, lazy
    # materializations) through a throwaway engine so neither arm pays
    # one-time build costs; each arm still starts cache-cold.
    probe = QunitSearchEngine(collection, flavor="expert")
    warm = [SearchRequest(query=query, limit=LIMIT) for query in
            sorted({q for session in sessions for q in session.queries})]
    for _ in range(2):
        probe.execute(warm)

    def run_arm(window, max_batch):
        # Best of two runs: one closed-loop pass is short enough that a
        # single scheduler hiccup moves QPS by more than the effect
        # under test.  Every run gets a fresh engine (fresh cache).
        best = None
        for _ in range(2):
            engine = QunitSearchEngine(collection, flavor="expert",
                                       config=engine_config)
            config = ServerConfig(window=window, max_batch=max_batch)
            report = asyncio.run(_serve_arm(engine, config, workload))
            if best is None or report.qps > best.qps:
                best = report
        return best

    batched = run_arm(WINDOW, MAX_BATCH)
    unbatched = run_arm(0.0, 1)

    for report in (batched, unbatched):
        assert report.completed == total
        assert report.errors == 0
        assert report.qps > 0

    speedup = batched.qps / unbatched.qps
    artifact = {
        "scale": bench_scale,
        "sessions": sessions_n,
        "clients": clients,
        "requests": total,
        "limit": LIMIT,
        "window_ms": WINDOW * 1000,
        "max_batch": MAX_BATCH,
        "repetition_rate": round(batched.repetition_rate, 4),
        "batched": batched.to_dict(),
        "unbatched": unbatched.to_dict(),
        "speedup_batched_qps": round(speedup, 3),
    }
    write_artifact("BENCH_serving.json", json.dumps(artifact, indent=2))

    # The serving claim: micro-batching must beat per-request serving
    # by a clear margin under concurrent load.  Smoke runs are too
    # small/noisy to gate on the ratio; they still exercise both arms.
    if bench_full:
        assert speedup >= 1.2, (
            f"batched serving must sustain >= 1.2x unbatched QPS, "
            f"got {speedup:.2f}x ({batched.qps:.0f} vs "
            f"{unbatched.qps:.0f} qps)")


async def _serve_worker_arm(engine, config, pool, workload):
    async with SearchServer(engine, config, workers=pool) as server:
        host, port = server.address
        return await run_load_in_process(host, port, workload, limit=LIMIT)


def test_serving_worker_scaling(bench_full, bench_db, bench_scale,
                                results_dir, write_artifact,
                                tmp_path_factory):
    """QPS as the worker count grows over one shared saved generation.

    Each arm starts a fresh pool of N spawn-context workers, all
    ``mmap``-loading the same on-disk generation (one page-cache copy
    of the bytes), and replays the session workload closed-loop.  The
    result-cache is off in every arm so the sweep measures pipeline
    scaling, not cache hits.  Keys merge into ``BENCH_serving.json``
    next to the micro-batching arms.
    """
    import os

    from repro.core.store import CollectionStore
    from repro.serve.workers import WorkerPool, WorkerSpec

    sweep = (1, 2, 4) if bench_full else (1, 2)
    sessions_n, clients, instances = (400, 32, 150) if bench_full \
        else (120, 16, 60)
    generator = SessionLogGenerator(bench_db, seed=SEED + 3)
    sessions = generator.generate(sessions_n)
    workload = build_session_workload(sessions, clients)
    total = sum(len(stream) for stream in workload)

    collection = QunitCollection(bench_db, imdb_expert_qunits(),
                                 max_instances_per_definition=instances)
    directory = tmp_path_factory.mktemp("serving-workers") / "generation"
    CollectionStore(directory).save(collection)
    spec = WorkerSpec(directory=str(directory), scale=bench_scale,
                      seed=SEED, flavor="expert")

    def run_arm(workers_n):
        # One pool per arm; two closed-loop passes against it, best
        # kept — the first pass doubles as the workers' warmup (lazy
        # mmap loads, materializations), mirroring the warm probe the
        # micro-batching arms get.
        async def run():
            pool = WorkerPool(spec, workers=workers_n)
            engine = QunitSearchEngine(collection, flavor="expert")
            best = None
            async with SearchServer(engine,
                                    ServerConfig(window=WINDOW,
                                                 max_batch=MAX_BATCH),
                                    workers=pool) as server:
                host, port = server.address
                for _ in range(2):
                    report = await run_load_in_process(
                        host, port, workload, limit=LIMIT)
                    if best is None or report.qps > best.qps:
                        best = report
            return best

        return asyncio.run(run())

    reports = {workers_n: run_arm(workers_n) for workers_n in sweep}
    for report in reports.values():
        assert report.completed == total
        assert report.errors == 0
        assert report.qps > 0

    # Merge into the artifact the micro-batching sweep wrote (the two
    # tests share BENCH_serving.json; either may run alone).
    artifact_name = "BENCH_serving.json" if bench_full \
        else "BENCH_serving.smoke.json"
    artifact_path = results_dir / artifact_name
    artifact = json.loads(artifact_path.read_text()) \
        if artifact_path.exists() else {"scale": bench_scale}
    for workers_n, report in reports.items():
        artifact[f"qps_workers_{workers_n}"] = round(report.qps, 2)
        artifact[f"workers_{workers_n}"] = report.to_dict()
    scaling = None
    if 4 in reports:
        scaling = reports[4].qps / reports[1].qps
        artifact["worker_scaling_4x"] = round(scaling, 3)
    artifact["worker_cores"] = os.cpu_count()
    write_artifact("BENCH_serving.json", json.dumps(artifact, indent=2))

    # The prefork claim needs real parallelism to show: gate only at
    # full scale on a machine with enough cores for 4 workers plus the
    # front end.  Fewer cores still publish honest (flat) numbers.
    if bench_full and scaling is not None and os.cpu_count() >= 4:
        assert scaling >= 2.0, (
            f"4 workers must sustain >= 2.0x single-worker QPS on a "
            f">= 4-core machine, got {scaling:.2f}x "
            f"({reports[4].qps:.0f} vs {reports[1].qps:.0f} qps)")

"""EXP-F1 — the Figure 1 search pipeline as a latency benchmark.

Measures the interactive hot path (segmentation → matching → instance
materialization) for each query shape the paper discusses.  The point of
the qunits architecture is that this path involves *no* graph search or
LCA computation — compare with bench_perf_scaling.
"""

import pytest

from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine


@pytest.fixture(scope="module")
def engine(bench_db):
    collection = QunitCollection(bench_db, imdb_expert_qunits(),
                                 max_instances_per_definition=150)
    engine = QunitSearchEngine(collection, flavor="expert")
    engine.best("star wars cast")  # warm caches (text index, instances)
    return engine


QUERIES = {
    "entity_attribute": "star wars cast",
    "single_entity": "george clooney",
    "multi_entity": "angelina jolie tomb raider",
    "aggregate": "top rated movies",
}


@pytest.mark.parametrize("shape", sorted(QUERIES))
def test_search_latency(benchmark, engine, shape):
    query = QUERIES[shape]
    answer = benchmark(engine.best, query)
    assert not answer.is_empty


def test_segmentation_latency(benchmark, engine):
    segmented = benchmark(engine.segment, "star wars cast")
    assert segmented.template() == "[movie.title] cast"


def test_pipeline_answers_recorded(benchmark, engine, write_artifact):
    def walkthrough():
        lines = ["Figure 1 pipeline walkthrough (EXP-F1)"]
        for shape, query in sorted(QUERIES.items()):
            explanation = engine.explain(query)
            answer = explanation.answers[0] if explanation.answers else "(none)"
            lines.append(f"  {query!r:36s} -> {explanation.template:28s} "
                         f"-> {answer}")
        return "\n".join(lines)

    artifact = benchmark.pedantic(walkthrough, rounds=1, iterations=1)
    write_artifact("fig1_pipeline.txt", artifact)

"""ABL-K — sensitivity of schema+data derivation to k1 and k2.

The paper calls k1 (how many top entities become qunit anchors) and k2
(how many neighbors each anchor absorbs) "tunable parameters" without
exploring them; this ablation does.  Expectation: result quality saturates
in k1 once the entity tables queries actually mention are covered, and is
non-monotone in k2 — too few neighbors starve answers, too many bloat them
(the precision penalty raters call "excessive").
"""

import pytest

from repro.core import QunitCollection
from repro.core.derivation import SchemaDataDeriver
from repro.core.search import QunitSearchEngine
from repro.eval.relevance import SimulatedRaterPool
from repro.utils.tables import ascii_table

K1_VALUES = (2, 4, 6)
K2_VALUES = (0, 2, 4)


def build_engine(experiment, k1: int, k2: int) -> QunitSearchEngine:
    definitions = SchemaDataDeriver(experiment.database, k1=k1, k2=k2).derive()
    collection = QunitCollection(experiment.database, definitions,
                                 max_instances_per_definition=100)
    return QunitSearchEngine(collection, flavor=f"schema-k1{k1}-k2{k2}")


def test_k1_k2_sweep(benchmark, experiment, write_artifact):
    pool_seed = experiment.seed + 3

    def sweep():
        rows = []
        scores = {}
        for k1 in K1_VALUES:
            for k2 in K2_VALUES:
                engine = build_engine(experiment, k1, k2)
                score = experiment.evaluate_system(
                    engine, name=engine.system_name,
                    pool=SimulatedRaterPool(8, seed=pool_seed))
                scores[(k1, k2)] = score.mean_score
                rows.append((k1, k2, len(engine.collection),
                             round(score.mean_score, 3)))
        return rows, scores

    rows, scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(
        "ablation_k1k2.txt",
        ascii_table(("k1", "k2", "definitions", "mean relevance"), rows,
                    title="ABL-K: schema+data derivation k1/k2 sweep"),
    )
    # Joining neighbors must help over bare-entity qunits somewhere.
    assert max(scores[(k1, k2)] for k1 in K1_VALUES for k2 in (2, 4)) > \
        min(scores[(k1, 0)] for k1 in K1_VALUES)


@pytest.mark.parametrize("k1,k2", [(2, 2), (4, 3), (6, 4)])
def test_derivation_latency(benchmark, experiment, k1, k2):
    deriver = SchemaDataDeriver(experiment.database, k1=k1, k2=k2)
    definitions = benchmark(deriver.derive)
    assert definitions

"""PERF — query latency and build cost: qunits vs BANKS vs MLCA, plus the
top-k fast path against exhaustive scoring, cold start from persisted
snapshots, and sharded parallel scoring against the serial path.

Supports the paper's architectural claim (Sec. 3): once ranking is
separated from the database, query-time work is index lookups and one view
materialization — no per-query graph expansion (BANKS) or LCA computation
over the whole tree (MLCA).  Reports build + per-query costs at three
database scales, and — for the retrieval hot path itself — the speedup of
the bounded-heap/max-score fast path (``Searcher.search``) over the
exhaustive score-everything-and-sort reference
(``Searcher.search_exhaustive``) on the largest collection size.

Two persistence/scale reports ride along (``BENCH_*.json`` artifacts, the
files CI uploads):

- ``BENCH_cold_start.json`` — deriving + indexing a collection from the
  database versus restoring it from ``CollectionStore.save`` output (the
  derive-once/serve-forever split persistent snapshots exist for);
- ``BENCH_sharded_scaling.json`` — serial single-snapshot batch retrieval
  versus hash-sharded parallel retrieval on the largest collection;
- ``BENCH_snapshot_v2.json`` — the version-2 deduplicated snapshot layout
  (documents stored once) versus the legacy inline-everything layout, and
  Bloom-routed sharded batch retrieval versus broadcasting every query to
  every shard;
- ``BENCH_wand.json`` — term-at-a-time max-score versus document-at-a-time
  WAND and block-max WAND across query lengths (the ``--strategy`` flag /
  ``Searcher(strategy=...)`` choice; see ``repro.ir.wand``);
- ``BENCH_pipeline.json`` — the staged query pipeline's batched serving
  path (``QunitSearchEngine.search_many``) versus the sequential
  per-query loop on a sharded process-mode collection (see
  ``repro.serve``): batching groups the whole batch's retrieval into one
  dispatch per shard per round instead of paying IPC per query.

The ``BENCH_*.json`` metrics named in ``repro.bench.regression`` are
guarded by the nightly perf-regression job
(``.github/workflows/nightly-bench.yml`` +
``benchmarks/check_regression.py``) against the committed baselines in
``benchmarks/baselines/``.
"""

import json
import os
import time

import pytest

from repro.baselines import BanksSearch, XmlMlcaSearch
from repro.core import QunitCollection
from repro.core.store import CollectionStore, LoadOptions, SaveOptions
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine
from repro.datasets.imdb import generate_imdb
from repro.graph.data_graph import DataGraph
from repro.ir.retrieval import Searcher
from repro.utils.tables import ascii_table
from repro.xmlview import build_xml_view
from repro.xmlview.index import TreeTextIndex

QUERIES = ("star wars cast", "george clooney", "tom hanks movies",
           "the terminator box office")
SCALES_FULL = (0.15, 0.3, 0.6)
SCALES_SMOKE = (0.1,)


@pytest.fixture(scope="module")
def perf_scales(bench_full):
    return SCALES_FULL if bench_full else SCALES_SMOKE


def build_systems(scale: float):
    db = generate_imdb(scale=scale, seed=7)
    timings = {}
    start = time.perf_counter()
    collection = QunitCollection(db, imdb_expert_qunits(),
                                 max_instances_per_definition=100)
    engine = QunitSearchEngine(collection, flavor="expert")
    engine.best(QUERIES[0])  # build lazy indexes
    timings["qunits build"] = time.perf_counter() - start

    start = time.perf_counter()
    banks = BanksSearch(DataGraph(db))
    timings["banks build"] = time.perf_counter() - start

    start = time.perf_counter()
    root = build_xml_view(db)
    mlca = XmlMlcaSearch(root, TreeTextIndex(root))
    timings["mlca build"] = time.perf_counter() - start
    return db, {"qunits": engine, "banks": banks, "mlca": mlca}, timings


def mean_query_seconds(system) -> float:
    start = time.perf_counter()
    for query in QUERIES:
        system.best(query)
    return (time.perf_counter() - start) / len(QUERIES)


def test_scaling_table(benchmark, write_artifact, perf_scales):
    def sweep():
        rows = []
        for scale in perf_scales:
            db, systems, timings = build_systems(scale)
            row = [f"x{scale}", db.total_rows()]
            for name in ("qunits", "banks", "mlca"):
                row.append(f"{timings[f'{name} build']:.2f}s")
                row.append(f"{mean_query_seconds(systems[name]) * 1000:.1f}ms")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    artifact = ascii_table(
        ("scale", "rows",
         "qunits build", "qunits query",
         "banks build", "banks query",
         "mlca build", "mlca query"),
        rows, title="PERF: build cost and mean query latency by scale",
    )
    write_artifact("perf_scaling.txt", artifact)


@pytest.mark.parametrize("system_name", ["qunits", "banks", "mlca"])
def test_query_latency(benchmark, system_name, perf_scales):
    _db, systems, _timings = build_systems(max(perf_scales))
    system = systems[system_name]
    system.best("star wars cast")  # warm
    benchmark(system.best, "star wars cast")


# -- exhaustive vs top-k fast path -----------------------------------------


def _retrieval_workload(db, per_table: int) -> list[str]:
    """Entity-heavy queries sampled deterministically from the database."""
    queries = list(QUERIES)
    for table, column, suffix in (("movie", "title", " cast"),
                                  ("person", "name", " movies")):
        rows = list(db.table(table))
        step = max(1, len(rows) // per_table)
        for row in rows[::step][:per_table]:
            queries.append(f"{row[column]}{suffix}")
    return queries


def test_topk_fastpath_speedup(benchmark, write_artifact, bench_full,
                               perf_scales):
    """Exhaustive vs fast-path retrieval on the largest collection size.

    The fast path must be rank-identical (asserted here over the whole
    workload) and faster: cold measures snapshot + bound building plus
    scoring, warm measures the steady state with contribution arrays and
    the LRU result cache populated.
    """
    scale = max(perf_scales)
    db = generate_imdb(scale=scale, seed=7)
    collection = QunitCollection(
        db, imdb_expert_qunits(),
        max_instances_per_definition=300 if bench_full else 100,
    )
    collection.global_index()  # build the index outside all timings
    searcher = collection.searcher()
    queries = _retrieval_workload(db, per_table=60 if bench_full else 15)
    limit = 10

    def measure():
        # Cold: a fresh snapshot — pays for sorting postings and building
        # the per-term contribution/bound arrays, amortized over the batch.
        start = time.perf_counter()
        searcher.search_many(queries, limit)
        fast_cold_s = time.perf_counter() - start

        # Warm: steady state, contribution arrays and LRU cache populated.
        start = time.perf_counter()
        searcher.search_many(queries, limit)
        fast_warm_s = time.perf_counter() - start

        start = time.perf_counter()
        for query in queries:
            searcher.search_exhaustive(query, limit)
        exhaustive_s = time.perf_counter() - start
        return exhaustive_s, fast_cold_s, fast_warm_s

    exhaustive_s, fast_cold_s, fast_warm_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    for query in queries:  # rank identity on the real workload
        fast = [(h.doc_id, h.score) for h in searcher.search(query, limit)]
        slow = [(h.doc_id, h.score)
                for h in searcher.search_exhaustive(query, limit)]
        assert fast == slow
    report = {
        "scale": scale,
        "documents": searcher.index.document_count,
        "queries": len(queries),
        "limit": limit,
        "exhaustive_s": round(exhaustive_s, 6),
        "fastpath_cold_s": round(fast_cold_s, 6),
        "fastpath_warm_s": round(fast_warm_s, 6),
        "speedup_cold": round(exhaustive_s / fast_cold_s, 3),
        "speedup_warm": round(exhaustive_s / fast_warm_s, 3),
    }
    write_artifact("perf_topk_fastpath.json", json.dumps(report, indent=2))
    assert report["speedup_warm"] > 1.0


# -- retrieval strategies: max-score vs WAND vs block-max -------------------


def _strategy_workload(db, analyzer, per_bucket: int,
                       lengths=(2, 4, 6)) -> dict[int, list[str]]:
    """Entity-anchored queries bucketed by *exact* analyzed token count.

    Each query pairs an entity value (movie title / person name — the
    selective terms that drive the WAND threshold up) with attribute
    suffixes (``cast``, ``awards``, ... — the common terms whose postings
    document-at-a-time skipping avoids).  Queries land in the bucket of
    their actual post-analysis token count, so the report's "query
    length" axis is exact, not approximate.
    """
    suffixes = ("cast", "cast crew", "cast crew awards",
                "cast crew awards genre", "cast box office opening year",
                "movies", "movies filmography awards",
                "movies filmography awards genre year")
    buckets: dict[int, list[str]] = {length: [] for length in lengths}
    values: list[str] = []
    for table, column in (("movie", "title"), ("person", "name")):
        rows = list(db.table(table))
        step = max(1, len(rows) // 150)
        values.extend(row[column] for row in rows[::step][:150])
    for value in values:
        for suffix in suffixes:
            query = f"{value} {suffix}"
            bucket = buckets.get(len(analyzer.tokens(query)))
            if bucket is not None and len(bucket) < per_bucket:
                bucket.append(query)
        if all(len(bucket) >= per_bucket for bucket in buckets.values()):
            break
    return buckets


def test_wand_strategies(benchmark, write_artifact, bench_full, perf_scales):
    """Term-at-a-time max-score vs document-at-a-time WAND vs block-max.

    All three strategies answer from the same snapshot and the same
    per-term contribution caches, so the comparison is pure algorithm:
    what each one *skips*.  Rank-and-score identity across strategies is
    asserted over the whole workload (the float-exactness contract of
    ``repro.ir.wand``).  On full-scale runs, WAND must deliver at least
    max-score throughput on the 4+-term buckets — the queries the
    ``auto`` strategy routes to it.
    """
    from repro.ir.scoring import Bm25Scorer
    from repro.ir.wand import retrieve

    scale = max(perf_scales)
    db = generate_imdb(scale=scale, seed=7)
    collection = QunitCollection(
        db, imdb_expert_qunits(),
        max_instances_per_definition=300 if bench_full else 100,
    )
    snapshot = collection.global_index().snapshot()
    analyzer = snapshot.analyzer
    scorer = Bm25Scorer()
    limit = 10
    strategies = ("maxscore", "wand", "blockmax")
    buckets = _strategy_workload(db, analyzer,
                                 per_bucket=60 if bench_full else 10)
    term_buckets = {
        length: [analyzer.tokens(query) for query in queries]
        for length, queries in buckets.items() if queries
    }
    repeats = 3 if bench_full else 1

    def measure():
        # One untimed pass builds the shared contribution arrays, so the
        # timed passes compare steady-state scoring only.
        for term_lists in term_buckets.values():
            for terms in term_lists:
                retrieve(snapshot, scorer, terms, limit, "maxscore")
        timings: dict[int, dict[str, float]] = {}
        for length, term_lists in term_buckets.items():
            timings[length] = {}
            for strategy in strategies:
                best = None
                for _ in range(repeats):
                    start = time.perf_counter()
                    for terms in term_lists:
                        retrieve(snapshot, scorer, terms, limit, strategy)
                    elapsed = time.perf_counter() - start
                    best = elapsed if best is None else min(best, elapsed)
                timings[length][strategy] = best
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Rank-and-score identity across every strategy, the whole workload.
    for term_lists in term_buckets.values():
        for terms in term_lists:
            expected = retrieve(snapshot, scorer, terms, limit, "maxscore")
            for strategy in ("wand", "blockmax", "auto"):
                assert retrieve(snapshot, scorer, terms, limit,
                                strategy) == expected

    bucket_rows = []
    long_totals = {strategy: 0.0 for strategy in strategies}
    long_queries = 0
    for length in sorted(term_buckets):
        entry = {
            "terms": length,
            "queries": len(term_buckets[length]),
            **{f"{strategy}_s": round(timings[length][strategy], 6)
               for strategy in strategies},
            "wand_speedup": round(
                timings[length]["maxscore"] / timings[length]["wand"], 3),
            "blockmax_speedup": round(
                timings[length]["maxscore"] / timings[length]["blockmax"], 3),
        }
        bucket_rows.append(entry)
        if length >= 4:
            long_queries += len(term_buckets[length])
            for strategy in strategies:
                long_totals[strategy] += timings[length][strategy]
    report = {
        "scale": scale,
        "documents": snapshot.document_count,
        "limit": limit,
        "scorer": "bm25",
        "repeats": repeats,
        "buckets": bucket_rows,
        # The headline numbers the nightly regression job tracks: the
        # 4+-term buckets, where `auto` routes queries to WAND.
        "long": {
            "terms_min": 4,
            "queries": long_queries,
            **{f"{strategy}_s": round(long_totals[strategy], 6)
               for strategy in strategies},
            "wand_speedup": round(
                long_totals["maxscore"] / long_totals["wand"], 3),
            "blockmax_speedup": round(
                long_totals["maxscore"] / long_totals["blockmax"], 3),
        },
    }
    write_artifact("BENCH_wand.json", json.dumps(report, indent=2))
    if bench_full:
        # The acceptance bar for document-at-a-time pruning: on long
        # queries WAND throughput must at least match term-at-a-time
        # max-score (it skips whole posting ranges the latter walks).
        assert report["long"]["wand_speedup"] >= 1.0


# -- cold start from persisted snapshots -----------------------------------


def _rss_kib() -> int:
    """Resident set size of this process in KiB (0 where unsupported)."""
    try:
        with open("/proc/self/status", encoding="utf-8") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def test_cold_start_from_disk(benchmark, write_artifact, bench_full,
                              perf_scales, tmp_path_factory):
    """Derive-and-index versus restore-from-disk, same queries either way.

    Persistence splits the expensive derivation phase from query serving:
    the derive path pays for instance materialization and index building,
    the cold-start path only reads snapshot files.  Both ends answer the
    probe queries rank-identically (asserted).
    """
    from repro.ir.persist import (load_snapshot, open_scoring_snapshot,
                                  save_snapshot, save_snapshot_v2)

    scale = max(perf_scales)
    max_instances = 300 if bench_full else 100
    db = generate_imdb(scale=scale, seed=7)
    out_dir = tmp_path_factory.mktemp("snapshots") / "collection"
    format_dir = tmp_path_factory.mktemp("snapshot-formats")
    probes = QUERIES[:2]

    def build_engine():
        collection = QunitCollection(
            db, imdb_expert_qunits(),
            max_instances_per_definition=max_instances)
        return QunitSearchEngine(collection, flavor="expert")

    def measure():
        # Derive path: definitions -> instances -> indexes -> first answers.
        # The flat index is forced up front — a server must be ready for
        # arbitrary queries, and that build is exactly what the persisted
        # snapshot replaces (fully-bound probes could otherwise dodge it).
        start = time.perf_counter()
        engine = build_engine()
        engine.collection.global_index()
        derived_answers = [engine.best(query) for query in probes]
        derive_s = time.perf_counter() - start

        start = time.perf_counter()
        engine.save(out_dir)
        save_s = time.perf_counter() - start

        # Cold start: a fresh process would do exactly this — load the
        # manifest + snapshots and serve (no derivation, no indexing).
        start = time.perf_counter()
        loaded = QunitSearchEngine.load(db, out_dir, flavor="expert")
        loaded_answers = [loaded.best(query) for query in probes]
        cold_s = time.perf_counter() - start

        # Format-for-format worker cold start on the flat snapshot: parse
        # the whole JSON-lines v2 file vs mmap the v3 container (header +
        # term directory only — columns fault in on demand).
        snapshot = engine.collection.global_snapshot()
        v2_path = format_dir / "global-v2.snap"
        v3_path = format_dir / "global-v3.snap"
        save_snapshot_v2(snapshot, v2_path)
        save_snapshot(snapshot, v3_path)
        start = time.perf_counter()
        load_snapshot(v2_path)
        load_v2_s = time.perf_counter() - start
        rss_before = _rss_kib()
        start = time.perf_counter()
        view = open_scoring_snapshot(v3_path)
        load_v3_s = time.perf_counter() - start
        worker_rss_delta_kib = max(_rss_kib() - rss_before, 0)
        assert len(view) == 0 or view.vocabulary_size >= 0  # touched lazily
        return (derive_s, save_s, cold_s, load_v2_s, load_v3_s,
                worker_rss_delta_kib, derived_answers, loaded_answers)

    (derive_s, save_s, cold_s, load_v2_s, load_v3_s, worker_rss_delta_kib,
     derived_answers, loaded_answers) = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    for derived, loaded in zip(derived_answers, loaded_answers):
        assert derived.text == loaded.text
        assert derived.score == loaded.score
    snapshot_bytes = sum(
        entry.stat().st_size for entry in out_dir.iterdir())
    report = {
        "scale": scale,
        "max_instances_per_definition": max_instances,
        "probe_queries": len(probes),
        "derive_s": round(derive_s, 6),
        "save_s": round(save_s, 6),
        "cold_start_s": round(cold_s, 6),
        "cold_start_speedup": round(derive_s / cold_s, 3),
        "snapshot_bytes": snapshot_bytes,
        "load_v2_s": round(load_v2_s, 6),
        "load_v3_s": round(load_v3_s, 6),
        "mmap_speedup": round(load_v2_s / load_v3_s, 3) if load_v3_s else None,
        "worker_rss_delta_kib": worker_rss_delta_kib,
    }
    write_artifact("BENCH_cold_start.json", json.dumps(report, indent=2))
    if bench_full:
        # Restoring from disk must beat re-deriving — the reason to
        # persist.  Full scale only: at smoke sizes the derive cost is
        # milliseconds and the comparison is timing noise on a busy CI box.
        assert cold_s < derive_s
        # The v3 acceptance bar: mmap'ing the columnar container must be
        # at least 5x faster than parsing the JSON-lines v2 snapshot.
        assert load_v2_s / load_v3_s >= 5.0


# -- sharded parallel retrieval vs the serial path -------------------------


def test_sharded_vs_serial(benchmark, write_artifact, bench_full,
                           perf_scales):
    """Hash-sharded parallel batch retrieval against the serial snapshot.

    Both paths run the same entity-heavy workload with result caches off,
    so the comparison is pure scoring; rank identity is asserted over the
    whole workload.  ``cold`` includes building contribution arrays (and,
    sharded, the partition + worker pool); ``warm`` is the steady state.
    The speedup assertion only applies on full-scale runs with real
    parallelism available (>= 2 CPUs) — shards cannot beat serial on one
    core.
    """
    scale = max(perf_scales)
    db = generate_imdb(scale=scale, seed=7)
    collection = QunitCollection(
        db, imdb_expert_qunits(),
        max_instances_per_definition=300 if bench_full else 100,
    )
    snapshot = collection.global_index().snapshot()
    queries = _retrieval_workload(db, per_table=60 if bench_full else 15)
    limit = 10
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    shards = max(2, min(4, cpus))
    parallelism = "process" if cpus >= 2 else "serial"

    serial = Searcher(snapshot, cache_size=0)
    sharded = Searcher(snapshot, cache_size=0, shards=shards,
                       parallelism=parallelism)

    def measure():
        start = time.perf_counter()
        serial.search_many(queries, limit)
        serial_cold_s = time.perf_counter() - start
        start = time.perf_counter()
        serial.search_many(queries, limit)
        serial_warm_s = time.perf_counter() - start

        start = time.perf_counter()
        sharded.search_many(queries, limit)
        sharded_cold_s = time.perf_counter() - start
        start = time.perf_counter()
        sharded.search_many(queries, limit)
        sharded_warm_s = time.perf_counter() - start
        return (serial_cold_s, serial_warm_s, sharded_cold_s,
                sharded_warm_s)

    (serial_cold_s, serial_warm_s, sharded_cold_s, sharded_warm_s,
     ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Rank identity over the real workload, tie-breaks included.
    serial_hits = serial.search_many(queries, limit)
    sharded_hits = sharded.search_many(queries, limit)
    assert [[(h.doc_id, h.score) for h in hits] for hits in sharded_hits] == \
           [[(h.doc_id, h.score) for h in hits] for hits in serial_hits]
    sharded.close()

    report = {
        "scale": scale,
        "documents": snapshot.document_count,
        "queries": len(queries),
        "limit": limit,
        "shards": shards,
        "parallelism": parallelism,
        "cpus": cpus,
        "serial_cold_s": round(serial_cold_s, 6),
        "serial_warm_s": round(serial_warm_s, 6),
        "sharded_cold_s": round(sharded_cold_s, 6),
        "sharded_warm_s": round(sharded_warm_s, 6),
        "speedup_cold": round(serial_cold_s / sharded_cold_s, 3),
        "speedup_warm": round(serial_warm_s / sharded_warm_s, 3),
    }
    write_artifact("BENCH_sharded_scaling.json", json.dumps(report, indent=2))
    if bench_full and cpus >= 2:
        assert sharded_warm_s < serial_warm_s


# -- staged pipeline: batched vs sequential engine serving ------------------


def _pipeline_workload(db, snapshot, per_table: int,
                       freetext: int) -> list[str]:
    """Entity-heavy queries mixed with exploratory free-text pairs.

    The entity half exercises the structural path (segmentation,
    matching, materialization); the free-text half — pairs of
    mid-frequency vocabulary terms with no structural match — always
    falls through to flat IR backfill, the sharded dispatch whose
    batching the pipeline exists to exploit.  Real traffic is exactly
    this mix: head entity lookups plus a long tail of exploratory text.
    """
    queries = _retrieval_workload(db, per_table)
    terms = sorted(term for term in snapshot.terms()
                   if 2 <= snapshot.document_frequency(term) <= 50)
    step = max(1, len(terms) // max(1, 2 * freetext))
    picked = terms[::step]
    queries.extend(f"{picked[i]} {picked[i + 1]}"
                   for i in range(0, min(2 * freetext, len(picked) - 1), 2))
    return queries


def test_pipeline_batched_vs_sequential(benchmark, write_artifact,
                                        bench_full, perf_scales):
    """Batched engine serving against the sequential per-query path.

    Both engines are identical — sharded process-mode flat retrieval over
    separate but equal collections, so snapshots, searcher pools, and
    executors are independent.  The flat searchers' result caches are
    disabled, making the comparison pure pipeline + dispatch + scoring:
    the sequential path pays a shard dispatch (process IPC round trip)
    per query, while ``search_many`` runs the whole batch through the
    staged pipeline and groups flat retrieval into one dispatch per
    shard per round.  Answers are asserted identical over the entire
    workload (the property the pipeline is built on); on full-scale
    runs the batched path must deliver at least 1.2x the sequential
    throughput.
    """
    scale = max(perf_scales)
    db = generate_imdb(scale=scale, seed=7)
    max_instances = 300 if bench_full else 100
    shards = 4
    parallelism = "process"
    limit = 5

    def build_engine():
        collection = QunitCollection(
            db, imdb_expert_qunits(),
            max_instances_per_definition=max_instances,
            shards=shards, parallelism=parallelism)
        engine = QunitSearchEngine(collection, flavor="expert")
        collection.global_index()  # index build outside all timings
        # The workload's queries are all distinct, so the LRU could only
        # flatter whichever path runs second; disabling it keeps every
        # pass an honest dispatch + scoring measurement.
        engine.pipeline.searcher_for(None).cache_size = 0
        return engine

    # A throwaway probe supplies the workload's vocabulary and warms the
    # database's lazy caches (text index, statistics), so neither
    # engine's cold pass is skewed by one-time substrate costs that
    # would otherwise land entirely on whichever path runs first.
    probe = build_engine()
    queries = _pipeline_workload(
        db, probe.collection.global_snapshot(),
        per_table=60 if bench_full else 15,
        freetext=120 if bench_full else 20)
    probe.collection.close()
    sequential_engine = build_engine()
    batched_engine = build_engine()

    repeats = 3 if bench_full else 1

    def measure():
        # Cold: first pass pays the shard partition, worker pool spawn,
        # contribution-array builds, and first-binding materializations
        # (equal on both sides).  Warm passes measure the steady state;
        # best-of-``repeats`` guards the comparison against scheduler
        # jitter on a shared box (same policy as the WAND bench).
        start = time.perf_counter()
        for query in queries:
            sequential_engine.search(query, limit)
        sequential_cold_s = time.perf_counter() - start
        sequential_warm_s = None
        for _ in range(repeats):
            start = time.perf_counter()
            for query in queries:
                sequential_engine.search(query, limit)
            elapsed = time.perf_counter() - start
            sequential_warm_s = elapsed if sequential_warm_s is None \
                else min(sequential_warm_s, elapsed)

        start = time.perf_counter()
        batched_engine.search_many(queries, limit)
        batched_cold_s = time.perf_counter() - start
        batched_warm_s = None
        for _ in range(repeats):
            start = time.perf_counter()
            batched_engine.search_many(queries, limit)
            elapsed = time.perf_counter() - start
            batched_warm_s = elapsed if batched_warm_s is None \
                else min(batched_warm_s, elapsed)
        return (sequential_cold_s, sequential_warm_s,
                batched_cold_s, batched_warm_s)

    sequential_cold_s, sequential_warm_s, batched_cold_s, batched_warm_s = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    # Answer identity over the real workload — scores included.
    sequential_answers = [sequential_engine.search(query, limit)
                          for query in queries]
    batched_answers = batched_engine.search_many(queries, limit)
    assert [[(a.meta("instance_id"), a.score) for a in answers]
            for answers in batched_answers] == \
           [[(a.meta("instance_id"), a.score) for a in answers]
            for answers in sequential_answers]
    sequential_engine.collection.close()
    batched_engine.collection.close()

    report = {
        "scale": scale,
        "documents": batched_engine.collection.global_snapshot()
                     .document_count,
        "queries": len(queries),
        "limit": limit,
        "shards": shards,
        "parallelism": parallelism,
        "sequential_cold_s": round(sequential_cold_s, 6),
        "sequential_warm_s": round(sequential_warm_s, 6),
        "batched_cold_s": round(batched_cold_s, 6),
        "batched_warm_s": round(batched_warm_s, 6),
        "speedup_cold": round(sequential_cold_s / batched_cold_s, 3),
        "speedup_warm": round(sequential_warm_s / batched_warm_s, 3),
    }
    write_artifact("BENCH_pipeline.json", json.dumps(report, indent=2))
    if bench_full:
        # The acceptance bar for the staged pipeline: batched serving
        # must beat the sequential per-query loop by >= 1.2x.
        assert report["speedup_warm"] >= 1.2


# -- snapshot v2: deduplicated storage + Bloom-routed sharding --------------


def _longtail_workload(snapshot, count: int,
                       max_df: int = 3) -> list[list[str]]:
    """Long-tail term-pair queries — where Bloom routing can prove
    non-matches.

    Terms with document frequency <= ``max_df`` (genres, years, award
    names, alternate-title vocabulary) live in at most ``max_df`` shards,
    so most shards provably cannot match them.  Head terms (entity names
    decorate many qunit instances each) appear in every shard and route
    everywhere — routing is a long-tail optimization, which this workload
    measures honestly by *being* the long tail."""
    rare = sorted(term for term in snapshot.terms()
                  if snapshot.document_frequency(term) <= max_df)
    pairs = [[rare[i], rare[(i + 1) % len(rare)]]
             for i in range(0, len(rare), 2)]
    return pairs[:count]


def test_snapshot_v2_dedup_and_bloom_routing(benchmark, write_artifact,
                                             bench_full, perf_scales,
                                             tmp_path_factory):
    """The two claims behind snapshot storage v2, measured together.

    Dedup: a saved generation stores every decorated instance document
    once (shared document store + doc_id refs) instead of once per
    snapshot file.  The historical acceptance bar — <= 60% of the legacy
    inline-everything v1 layout — is checked against the JSON-lines v2
    layout it was defined for; the current v3 columnar generation is
    measured against the same snapshots saved standalone (inline
    documents, same format), where dedup must still win outright.
    Routing: per-shard term Bloom filters let ``ShardedTopK`` skip
    shards that provably cannot match a query, with results
    rank-identical to broadcasting (asserted over the workload).
    """
    from repro.ir.persist import (DocumentStore, save_document_store,
                                  save_snapshot, save_snapshot_v1,
                                  save_snapshot_v2)
    from repro.ir.shard import ShardedTopK
    from repro.ir.scoring import Bm25Scorer

    scale = max(perf_scales)
    db = generate_imdb(scale=scale, seed=7)
    collection = QunitCollection(
        db, imdb_expert_qunits(),
        max_instances_per_definition=300 if bench_full else 100,
        shards=4, parallelism="serial",
    )
    snapshot = collection.global_snapshot()
    definition_snapshots = {
        name: collection._index_for(name).snapshot()
        for name in sorted(collection.definitions)}

    # -- on-disk dedup: the current (v3) generation vs standalone saves -----
    v3_dir = tmp_path_factory.mktemp("snapshot-v3") / "generation"
    start = time.perf_counter()
    # vectors=False: this benchmark scores the document-dedup layout;
    # the standalone saves below carry no vector extents, so a
    # like-for-like byte comparison must not either.
    CollectionStore(v3_dir).save(collection, SaveOptions(vectors=False))
    save_v3_s = time.perf_counter() - start
    # Like-for-like: exclude the manifest (identical either way) and the
    # per-shard files (the standalone layout has none to compare).
    v3_bytes = sum(
        entry.stat().st_size for entry in v3_dir.iterdir()
        if entry.name != "collection.json"
        and not entry.name.startswith("shard-"))

    standalone_dir = tmp_path_factory.mktemp("snapshot-v3-standalone")
    save_snapshot(snapshot, standalone_dir / "global.snap")
    for name, definition_snapshot in definition_snapshots.items():
        save_snapshot(definition_snapshot,
                      standalone_dir / f"def-{name}.snap")
    standalone_bytes = sum(entry.stat().st_size
                           for entry in standalone_dir.iterdir())
    v3_dedup_ratio = v3_bytes / standalone_bytes

    # -- historical bar: JSON-lines v2 layout vs the legacy v1 layout -------
    v2_dir = tmp_path_factory.mktemp("snapshot-v2")
    store = DocumentStore.from_snapshot(snapshot)
    save_document_store(store, v2_dir / "docs.store")
    save_snapshot_v2(snapshot, v2_dir / "global.snap", docstore="docs.store")
    for name, definition_snapshot in definition_snapshots.items():
        save_snapshot_v2(definition_snapshot, v2_dir / f"def-{name}.snap",
                         docstore="docs.store")
    v2_bytes = sum(entry.stat().st_size for entry in v2_dir.iterdir())

    v1_dir = tmp_path_factory.mktemp("snapshot-v1")
    save_snapshot_v1(snapshot, v1_dir / "global.snap")
    for name, definition_snapshot in definition_snapshots.items():
        save_snapshot_v1(definition_snapshot, v1_dir / f"def-{name}.snap")
    v1_bytes = sum(entry.stat().st_size for entry in v1_dir.iterdir())
    dedup_ratio = v2_bytes / v1_bytes

    # -- Bloom routing vs broadcast on long-tail batches --------------------
    term_lists = _longtail_workload(snapshot,
                                    count=120 if bench_full else 40)
    limit = 10
    shards = 4
    scorer = Bm25Scorer()
    # Routing saves per-shard *task dispatch* plus scoring; the saving is
    # visible where a task has real cost — process-mode IPC — while in
    # serial mode skipping a near-empty topk_scores call is a wash
    # against the Bloom probes.  Unlike the sharded-vs-serial comparison,
    # this one does not need multiple cores: fewer dispatched tasks win
    # even on one CPU.
    parallelism = "process"
    routed = ShardedTopK(snapshot, shards, parallelism)
    broadcast = ShardedTopK(snapshot, shards, parallelism, route=False)

    def measure():
        # One dispatch per query — the serving mode where routing pays
        # (each query ships only to shards that might match it).  A
        # throwaway pass warms contribution caches and the worker pools,
        # so the timed passes compare pure scoring + dispatch.
        broadcast.topk_many(scorer, term_lists, limit)
        start = time.perf_counter()
        broadcast_results = [broadcast.topk_many(scorer, [terms], limit)[0]
                             for terms in term_lists]
        broadcast_s = time.perf_counter() - start

        routed.topk_many(scorer, term_lists, limit)
        start = time.perf_counter()
        routed_results = [routed.topk_many(scorer, [terms], limit)[0]
                          for terms in term_lists]
        routed_s = time.perf_counter() - start
        return broadcast_s, routed_s, broadcast_results, routed_results

    broadcast_s, routed_s, broadcast_results, routed_results = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    assert routed_results == broadcast_results  # rank-identical, float-exact
    stats = routed.routing_stats
    routed.close()
    broadcast.close()

    # Round-trip sanity: the deduplicated generation loads and serves.
    loaded = CollectionStore(v3_dir).load(
        db, LoadOptions(shards=shards, parallelism="serial", lazy=False))
    probe = QUERIES[0]
    assert [(h.doc_id, h.score)
            for h in loaded.searcher().search(probe, limit)] == \
           [(h.doc_id, h.score)
            for h in collection.searcher().search(probe, limit)]
    loaded.close()

    report = {
        "scale": scale,
        "documents": snapshot.document_count,
        "definitions": len(collection.definitions),
        "v1_layout_bytes": v1_bytes,
        "v2_layout_bytes": v2_bytes,
        "dedup_ratio": round(dedup_ratio, 4),
        "v3_layout_bytes": v3_bytes,
        "v3_standalone_bytes": standalone_bytes,
        "v3_dedup_ratio": round(v3_dedup_ratio, 4),
        "save_v3_s": round(save_v3_s, 6),
        "routing": {
            "queries": len(term_lists),
            "limit": limit,
            "shards": shards,
            "parallelism": parallelism,
            "broadcast_s": round(broadcast_s, 6),
            "routed_s": round(routed_s, 6),
            "speedup": round(broadcast_s / routed_s, 3) if routed_s else None,
            "query_pairs": stats["query_pairs"],
            "query_pairs_skipped": stats["query_pairs_skipped"],
            "shard_tasks": stats["shard_tasks"],
            "shard_tasks_skipped": stats["shard_tasks_skipped"],
        },
    }
    write_artifact("BENCH_snapshot_v2.json", json.dumps(report, indent=2))
    # Documents stored once: the acceptance bar for the v2 layout, and
    # a strict win for the v3 generation over inlining per file.
    assert dedup_ratio <= 0.60
    assert v3_dedup_ratio < 1.0
    # Routing must prove whole shards irrelevant for some dispatches.
    assert stats["shard_tasks_skipped"] >= 1
    if bench_full:
        # With real per-task dispatch cost, skipped tasks are time saved.
        assert routed_s < broadcast_s

"""PERF — query latency and build cost: qunits vs BANKS vs MLCA.

Supports the paper's architectural claim (Sec. 3): once ranking is
separated from the database, query-time work is index lookups and one view
materialization — no per-query graph expansion (BANKS) or LCA computation
over the whole tree (MLCA).  Reports build + per-query costs at three
database scales.
"""

import time

import pytest

from repro.baselines import BanksSearch, XmlMlcaSearch
from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine
from repro.datasets.imdb import generate_imdb
from repro.graph.data_graph import DataGraph
from repro.utils.tables import ascii_table
from repro.xmlview import build_xml_view
from repro.xmlview.index import TreeTextIndex

QUERIES = ("star wars cast", "george clooney", "tom hanks movies",
           "the terminator box office")
SCALES = (0.15, 0.3, 0.6)


def build_systems(scale: float):
    db = generate_imdb(scale=scale, seed=7)
    timings = {}
    start = time.perf_counter()
    collection = QunitCollection(db, imdb_expert_qunits(),
                                 max_instances_per_definition=100)
    engine = QunitSearchEngine(collection, flavor="expert")
    engine.best(QUERIES[0])  # build lazy indexes
    timings["qunits build"] = time.perf_counter() - start

    start = time.perf_counter()
    banks = BanksSearch(DataGraph(db))
    timings["banks build"] = time.perf_counter() - start

    start = time.perf_counter()
    root = build_xml_view(db)
    mlca = XmlMlcaSearch(root, TreeTextIndex(root))
    timings["mlca build"] = time.perf_counter() - start
    return db, {"qunits": engine, "banks": banks, "mlca": mlca}, timings


def mean_query_seconds(system) -> float:
    start = time.perf_counter()
    for query in QUERIES:
        system.best(query)
    return (time.perf_counter() - start) / len(QUERIES)


def test_scaling_table(benchmark, write_artifact):
    def sweep():
        rows = []
        for scale in SCALES:
            db, systems, timings = build_systems(scale)
            row = [f"x{scale}", db.total_rows()]
            for name in ("qunits", "banks", "mlca"):
                row.append(f"{timings[f'{name} build']:.2f}s")
                row.append(f"{mean_query_seconds(systems[name]) * 1000:.1f}ms")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    artifact = ascii_table(
        ("scale", "rows",
         "qunits build", "qunits query",
         "banks build", "banks query",
         "mlca build", "mlca query"),
        rows, title="PERF: build cost and mean query latency by scale",
    )
    write_artifact("perf_scaling.txt", artifact)


@pytest.mark.parametrize("system_name", ["qunits", "banks", "mlca"])
def test_query_latency(benchmark, system_name):
    _db, systems, _timings = build_systems(0.3)
    system = systems[system_name]
    system.best("star wars cast")  # warm
    benchmark(system.best, "star wars cast")

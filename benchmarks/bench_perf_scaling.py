"""PERF — query latency and build cost: qunits vs BANKS vs MLCA, plus the
top-k fast path against exhaustive scoring.

Supports the paper's architectural claim (Sec. 3): once ranking is
separated from the database, query-time work is index lookups and one view
materialization — no per-query graph expansion (BANKS) or LCA computation
over the whole tree (MLCA).  Reports build + per-query costs at three
database scales, and — for the retrieval hot path itself — the speedup of
the bounded-heap/max-score fast path (``Searcher.search``) over the
exhaustive score-everything-and-sort reference
(``Searcher.search_exhaustive``) on the largest collection size.
"""

import json
import time

import pytest

from repro.baselines import BanksSearch, XmlMlcaSearch
from repro.core import QunitCollection
from repro.core.derivation import imdb_expert_qunits
from repro.core.search import QunitSearchEngine
from repro.datasets.imdb import generate_imdb
from repro.graph.data_graph import DataGraph
from repro.utils.tables import ascii_table
from repro.xmlview import build_xml_view
from repro.xmlview.index import TreeTextIndex

QUERIES = ("star wars cast", "george clooney", "tom hanks movies",
           "the terminator box office")
SCALES_FULL = (0.15, 0.3, 0.6)
SCALES_SMOKE = (0.1,)


@pytest.fixture(scope="module")
def perf_scales(bench_full):
    return SCALES_FULL if bench_full else SCALES_SMOKE


def build_systems(scale: float):
    db = generate_imdb(scale=scale, seed=7)
    timings = {}
    start = time.perf_counter()
    collection = QunitCollection(db, imdb_expert_qunits(),
                                 max_instances_per_definition=100)
    engine = QunitSearchEngine(collection, flavor="expert")
    engine.best(QUERIES[0])  # build lazy indexes
    timings["qunits build"] = time.perf_counter() - start

    start = time.perf_counter()
    banks = BanksSearch(DataGraph(db))
    timings["banks build"] = time.perf_counter() - start

    start = time.perf_counter()
    root = build_xml_view(db)
    mlca = XmlMlcaSearch(root, TreeTextIndex(root))
    timings["mlca build"] = time.perf_counter() - start
    return db, {"qunits": engine, "banks": banks, "mlca": mlca}, timings


def mean_query_seconds(system) -> float:
    start = time.perf_counter()
    for query in QUERIES:
        system.best(query)
    return (time.perf_counter() - start) / len(QUERIES)


def test_scaling_table(benchmark, write_artifact, perf_scales):
    def sweep():
        rows = []
        for scale in perf_scales:
            db, systems, timings = build_systems(scale)
            row = [f"x{scale}", db.total_rows()]
            for name in ("qunits", "banks", "mlca"):
                row.append(f"{timings[f'{name} build']:.2f}s")
                row.append(f"{mean_query_seconds(systems[name]) * 1000:.1f}ms")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    artifact = ascii_table(
        ("scale", "rows",
         "qunits build", "qunits query",
         "banks build", "banks query",
         "mlca build", "mlca query"),
        rows, title="PERF: build cost and mean query latency by scale",
    )
    write_artifact("perf_scaling.txt", artifact)


@pytest.mark.parametrize("system_name", ["qunits", "banks", "mlca"])
def test_query_latency(benchmark, system_name, perf_scales):
    _db, systems, _timings = build_systems(max(perf_scales))
    system = systems[system_name]
    system.best("star wars cast")  # warm
    benchmark(system.best, "star wars cast")


# -- exhaustive vs top-k fast path -----------------------------------------


def _retrieval_workload(db, per_table: int) -> list[str]:
    """Entity-heavy queries sampled deterministically from the database."""
    queries = list(QUERIES)
    for table, column, suffix in (("movie", "title", " cast"),
                                  ("person", "name", " movies")):
        rows = list(db.table(table))
        step = max(1, len(rows) // per_table)
        for row in rows[::step][:per_table]:
            queries.append(f"{row[column]}{suffix}")
    return queries


def test_topk_fastpath_speedup(benchmark, write_artifact, bench_full,
                               perf_scales):
    """Exhaustive vs fast-path retrieval on the largest collection size.

    The fast path must be rank-identical (asserted here over the whole
    workload) and faster: cold measures snapshot + bound building plus
    scoring, warm measures the steady state with contribution arrays and
    the LRU result cache populated.
    """
    scale = max(perf_scales)
    db = generate_imdb(scale=scale, seed=7)
    collection = QunitCollection(
        db, imdb_expert_qunits(),
        max_instances_per_definition=300 if bench_full else 100,
    )
    collection.global_index()  # build the index outside all timings
    searcher = collection.searcher()
    queries = _retrieval_workload(db, per_table=60 if bench_full else 15)
    limit = 10

    def measure():
        # Cold: a fresh snapshot — pays for sorting postings and building
        # the per-term contribution/bound arrays, amortized over the batch.
        start = time.perf_counter()
        searcher.search_many(queries, limit)
        fast_cold_s = time.perf_counter() - start

        # Warm: steady state, contribution arrays and LRU cache populated.
        start = time.perf_counter()
        searcher.search_many(queries, limit)
        fast_warm_s = time.perf_counter() - start

        start = time.perf_counter()
        for query in queries:
            searcher.search_exhaustive(query, limit)
        exhaustive_s = time.perf_counter() - start
        return exhaustive_s, fast_cold_s, fast_warm_s

    exhaustive_s, fast_cold_s, fast_warm_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    for query in queries:  # rank identity on the real workload
        fast = [(h.doc_id, h.score) for h in searcher.search(query, limit)]
        slow = [(h.doc_id, h.score)
                for h in searcher.search_exhaustive(query, limit)]
        assert fast == slow
    report = {
        "scale": scale,
        "documents": searcher.index.document_count,
        "queries": len(queries),
        "limit": limit,
        "exhaustive_s": round(exhaustive_s, 6),
        "fastpath_cold_s": round(fast_cold_s, 6),
        "fastpath_warm_s": round(fast_warm_s, 6),
        "speedup_cold": round(exhaustive_s / fast_cold_s, 3),
        "speedup_warm": round(exhaustive_s / fast_warm_s, 3),
    }
    write_artifact("perf_topk_fastpath.json", json.dumps(report, indent=2))
    assert report["speedup_warm"] > 1.0

"""EXP-F3 — Figure 3: result quality across all seven systems.

The headline reproduction: BANKS and the XML LCA/MLCA baselines versus the
four qunit engines (schema+data, query-log, external-evidence, expert) and
the theoretical maximum, judged by the 20-rater panel on the 25-query
movie workload.
"""

from repro.eval.harness import THEORETICAL_MAX


def test_result_quality(benchmark, experiment, write_artifact):
    report = benchmark.pedantic(experiment.run, rounds=1, iterations=1)

    baselines = [report.mean_of(name)
                 for name in ("banks", "discover", "objectrank",
                              "xml-lca", "xml-mlca")]
    derived = [report.mean_of(name)
               for name in ("qunits-schema_data", "qunits-query_log",
                            "qunits-external", "qunits-forms")]
    expert = report.mean_of("qunits-expert")

    # The paper's claims, as shape assertions:
    # 1. "qunit-based querying clearly outperforms existing methods".
    assert min(derived) > max(baselines) + 0.15
    # 2. Hand-identified ("Human") qunits are the best real system...
    assert expert >= max(derived)
    # 3. ...yet "we are still quite far away from the theoretical maximum".
    assert expert <= 0.95
    assert report.mean_of(THEORETICAL_MAX) == 1.0

    write_artifact("fig3_result_quality.txt",
                   report.render() + "\n\n" + report.render_table())


def test_single_system_evaluation(benchmark, experiment):
    """Per-system scoring latency (the unit the ablations sweep)."""
    score = benchmark.pedantic(
        experiment.evaluate_system, args=(experiment.engines["expert"],),
        rounds=1, iterations=1,
    )
    assert 0.0 < score.mean_score <= 1.0

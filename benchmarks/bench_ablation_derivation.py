"""ABL-D — derivation-source comparison broken down by query class.

Which derivation strategy wins on which query shape?  Expectation from the
paper's analysis: the log-derived rollups shine on underspecified
single-entity queries (that is what rollup is *for*); expert definitions
dominate specific entity-attribute queries; evidence profiles sit between.
"""

from collections import defaultdict

from repro.eval.relevance import SimulatedRaterPool
from repro.ir.metrics import mean
from repro.utils.tables import ascii_table

FLAVORS = ("expert", "schema_data", "query_log", "external", "forms")


def test_per_class_breakdown(benchmark, experiment, write_artifact):
    # Mean relevance per (flavor, query class) over the shared workload.
    def breakdown():
        per_cell: dict[tuple[str, str], list[float]] = defaultdict(list)
        for flavor in FLAVORS:
            score = experiment.evaluate_system(
                experiment.engines[flavor],
                pool=SimulatedRaterPool(8, seed=experiment.seed + 3))
            for benchmark_query, value in zip(experiment.workload,
                                              score.per_query):
                per_cell[(flavor, benchmark_query.query_class)].append(value)
        return per_cell

    per_cell = benchmark.pedantic(breakdown, rounds=1, iterations=1)
    classes = sorted({q.query_class for q in experiment.workload})
    rows = []
    for flavor in FLAVORS:
        row = [flavor]
        for query_class in classes:
            values = per_cell.get((flavor, query_class), [])
            row.append(round(mean(values), 3) if values else "-")
        rows.append(row)
    artifact = ascii_table(
        ["derivation"] + classes, rows,
        title="ABL-D: mean relevance by derivation source and query class",
    )
    write_artifact("ablation_derivation.txt", artifact)

    overall = {
        flavor: mean([v for (f, _c), values in per_cell.items()
                      for v in values if f == flavor])
        for flavor in FLAVORS
    }
    # Expert stays the best overall source, as in Fig. 3.
    assert overall["expert"] == max(overall.values())


def test_underspecified_queries_rollup_strength(benchmark, experiment):
    """Benchmark the rollup engine's hot path on an underspecified query."""
    engine = experiment.engines["query_log"]
    answer = benchmark(engine.best, "george clooney")
    assert not answer.is_empty

"""Root pytest configuration.

Defines the ``--bench-full`` flag (it must live at the rootdir so pytest
sees it during startup).  Benchmarks under ``benchmarks/`` are collected
alongside the tests and run in *smoke mode* by default: tiny data sizes
and ``--benchmark-disable`` (one un-timed call per benchmark), so the perf
code stays exercised by tier-1 in seconds.  Real benchmark runs use::

    PYTHONPATH=src python -m pytest benchmarks --bench-full --benchmark-enable
"""


def pytest_addoption(parser):
    parser.addoption(
        "--bench-full", action="store_true", default=False,
        help="run benchmarks at full scale (default: smoke-sized data)",
    )
